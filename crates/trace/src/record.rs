//! Trace records and the source abstraction.

use nomad_types::{AccessKind, VirtAddr};

/// One unit of a workload trace: `gap` non-memory instructions followed
/// by a memory operation at `vaddr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Non-memory instructions executed before this access.
    pub gap: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Virtual byte address accessed.
    pub vaddr: VirtAddr,
}

impl TraceRecord {
    /// Instructions represented by this record (the gap plus the memory
    /// operation itself).
    pub fn instructions(&self) -> u64 {
        self.gap as u64 + 1
    }
}

/// An endless instruction/memory-reference stream feeding one core.
///
/// Sources are infinite: simulations run for a configured instruction
/// budget, never to end-of-trace.
pub trait TraceSource {
    /// Produce the next record.
    fn next_record(&mut self) -> TraceRecord;

    /// Name of the workload (for reporting).
    fn name(&self) -> &str;

    /// Virtual pages that a long-running instance of this workload
    /// would already have resident when the region of interest starts.
    /// The system pre-warms the DRAM-cache scheme with them, mirroring
    /// the paper's fast-forward-to-ROI protocol. Defaults to none.
    fn resident_pages(&self) -> Vec<nomad_types::Vpn> {
        Vec::new()
    }

    /// Up to `n` *aged* pages — history a long-running instance would
    /// have left in the DRAM cache's FIFO behind the live resident
    /// set, each with its dirty state. The system uses them to start
    /// the cache full, so eviction and writeback behaviour is in
    /// steady state from the first measured cycle. Defaults to none.
    fn aged_pages(&self, n: usize) -> Vec<(nomad_types::Vpn, bool)> {
        let _ = n;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_instruction_count() {
        let r = TraceRecord {
            gap: 4,
            kind: AccessKind::Read,
            vaddr: VirtAddr(0x1000),
        };
        assert_eq!(r.instructions(), 5);
    }
}
