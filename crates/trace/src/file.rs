//! Trace capture and replay.
//!
//! The paper's methodology records benchmark regions of interest and
//! replays them deterministically; this module gives the library the
//! same capability. Traces serialize to a compact little-endian binary
//! format (13 bytes per record plus a 16-byte header), so captured
//! workloads can be stored, shared and replayed bit-identically.
//!
//! ```
//! use nomad_trace::{FileTrace, SyntheticTrace, TraceSource, WorkloadProfile};
//!
//! # fn main() -> std::io::Result<()> {
//! let dir = std::env::temp_dir().join("nomad_trace_doc");
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("mcf.trace");
//!
//! // Capture 10k records of a synthetic workload...
//! let mut gen = SyntheticTrace::new(&WorkloadProfile::mcf(), 1);
//! nomad_trace::capture(&path, "mcf", &mut gen, 10_000)?;
//!
//! // ...and replay them (looping at end-of-file).
//! let mut replay = FileTrace::open(&path)?;
//! let first = replay.next_record();
//! assert_eq!(replay.name(), "mcf");
//! # let _ = first;
//! # std::fs::remove_file(&path)?;
//! # Ok(())
//! # }
//! ```

use crate::record::{TraceRecord, TraceSource};
use nomad_types::{AccessKind, VirtAddr};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"NOMADTR1";
const RECORD_BYTES: usize = 13;

/// Capture `count` records from `source` into the file at `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn capture(
    path: &Path,
    name: &str,
    source: &mut dyn TraceSource,
    count: u64,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&count.to_le_bytes())?;
    let name_bytes = name.as_bytes();
    w.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
    w.write_all(name_bytes)?;
    for _ in 0..count {
        let r = source.next_record();
        w.write_all(&r.gap.to_le_bytes())?;
        w.write_all(&[r.kind.is_write() as u8])?;
        w.write_all(&r.vaddr.raw().to_le_bytes())?;
    }
    w.flush()
}

/// A trace replayed from a file, looping at end-of-data (sources are
/// infinite).
#[derive(Debug)]
pub struct FileTrace {
    name: String,
    records: Vec<TraceRecord>,
    cursor: usize,
}

impl FileTrace {
    /// Open and fully load a captured trace.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for filesystem failures, or
    /// `InvalidData` for a malformed or truncated file.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());

        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a NOMAD trace file"));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)?;
        let count = u64::from_le_bytes(buf8);
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)?;
        let name_len = u32::from_le_bytes(buf4) as usize;
        if name_len > 4096 {
            return Err(bad("unreasonable workload-name length"));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes).map_err(|_| bad("name not UTF-8"))?;

        let mut records = Vec::with_capacity(count as usize);
        let mut rec = [0u8; RECORD_BYTES];
        for _ in 0..count {
            r.read_exact(&mut rec)?;
            let gap = u32::from_le_bytes(rec[0..4].try_into().expect("slice sized"));
            let kind = if rec[4] != 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let vaddr = VirtAddr(u64::from_le_bytes(
                rec[5..13].try_into().expect("slice sized"),
            ));
            records.push(TraceRecord { gap, kind, vaddr });
        }
        if records.is_empty() {
            return Err(bad("trace holds no records"));
        }
        Ok(FileTrace {
            name,
            records,
            cursor: 0,
        })
    }

    /// Number of distinct records before the trace loops.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always `false`: empty traces fail to open.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl TraceSource for FileTrace {
    fn next_record(&mut self) -> TraceRecord {
        let r = self.records[self.cursor];
        self.cursor = (self.cursor + 1) % self.records.len();
        r
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn resident_pages(&self) -> Vec<nomad_types::Vpn> {
        // A replayed trace's "resident set" is every page it touches:
        // the capture is assumed to come from a post-warm-up region of
        // interest.
        let mut pages: Vec<u64> = self
            .records
            .iter()
            .map(|r| r.vaddr.raw() >> nomad_types::PAGE_SHIFT)
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages.into_iter().map(nomad_types::Vpn).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyntheticTrace, WorkloadProfile};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nomad_trace_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn capture_replay_round_trip() {
        let path = tmp("roundtrip.trace");
        let profile = WorkloadProfile::mcf();
        let mut original = SyntheticTrace::new(&profile, 7);
        let expected: Vec<TraceRecord> = (0..5000).map(|_| original.next_record()).collect();

        let mut regen = SyntheticTrace::new(&profile, 7);
        capture(&path, "mcf", &mut regen, 5000).expect("capture");

        let mut replay = FileTrace::open(&path).expect("open");
        assert_eq!(replay.name(), "mcf");
        assert_eq!(replay.len(), 5000);
        let got: Vec<TraceRecord> = (0..5000).map(|_| replay.next_record()).collect();
        assert_eq!(got, expected, "bit-identical replay");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_loops_at_end() {
        let path = tmp("loops.trace");
        let mut gen = SyntheticTrace::new(&WorkloadProfile::tc(), 3);
        capture(&path, "tc", &mut gen, 10).expect("capture");
        let mut replay = FileTrace::open(&path).expect("open");
        let first: Vec<TraceRecord> = (0..10).map(|_| replay.next_record()).collect();
        let second: Vec<TraceRecord> = (0..10).map(|_| replay.next_record()).collect();
        assert_eq!(first, second);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resident_pages_cover_all_touched_pages() {
        let path = tmp("resident.trace");
        let mut gen = SyntheticTrace::new(&WorkloadProfile::bc(), 5);
        capture(&path, "bc", &mut gen, 2000).expect("capture");
        let replay = FileTrace::open(&path).expect("open");
        let pages = replay.resident_pages();
        assert!(!pages.is_empty());
        // Sorted and deduplicated.
        for w in pages.windows(2) {
            assert!(w[0].raw() < w[1].raw());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage.trace");
        std::fs::write(&path, b"definitely not a trace").expect("write");
        let err = FileTrace::open(&path).expect_err("must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_files() {
        let path = tmp("truncated.trace");
        let mut gen = SyntheticTrace::new(&WorkloadProfile::tc(), 3);
        capture(&path, "tc", &mut gen, 100).expect("capture");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
        assert!(FileTrace::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic_on_otherwise_valid_file() {
        let path = tmp("badmagic.trace");
        let mut gen = SyntheticTrace::new(&WorkloadProfile::tc(), 3);
        capture(&path, "tc", &mut gen, 10).expect("capture");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[..8].copy_from_slice(b"NOMADTR9"); // future/unknown version
        std::fs::write(&path, &bytes).expect("write");
        let err = FileTrace::open(&path).expect_err("must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_record_tail_truncated_mid_record() {
        let path = tmp("midrecord.trace");
        let mut gen = SyntheticTrace::new(&WorkloadProfile::tc(), 3);
        capture(&path, "tc", &mut gen, 10).expect("capture");
        let bytes = std::fs::read(&path).expect("read");
        // Cut into the middle of the final 13-byte record: the header
        // promises 10 records but only 9.x are present.
        std::fs::write(&path, &bytes[..bytes.len() - RECORD_BYTES / 2]).expect("truncate");
        let err = FileTrace::open(&path).expect_err("must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_record_capture_fails_to_open_not_panic() {
        let path = tmp("empty.trace");
        let mut gen = SyntheticTrace::new(&WorkloadProfile::tc(), 3);
        capture(&path, "tc", &mut gen, 0).expect("capture writes a header");
        let err = FileTrace::open(&path).expect_err("empty trace must not open");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
