//! Offline trace analysis used by tests and the Table I harness.

use crate::record::TraceSource;
use nomad_types::PAGE_SHIFT;
use std::collections::HashSet;

/// Aggregate statistics over a finite trace prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Records consumed.
    pub records: u64,
    /// Total instructions (gaps + memory ops).
    pub instructions: u64,
    /// Sum of gaps.
    pub total_gap: u64,
    /// Write operations.
    pub writes: u64,
    /// Distinct pages touched.
    pub unique_pages: u64,
    /// Distinct 64-byte blocks touched.
    pub unique_blocks: u64,
}

impl TraceSummary {
    /// Consume `records` records from `source` and summarize them.
    pub fn measure(source: &mut dyn TraceSource, records: u64) -> Self {
        let mut pages = HashSet::new();
        let mut blocks = HashSet::new();
        let mut total_gap = 0u64;
        let mut writes = 0u64;
        for _ in 0..records {
            let r = source.next_record();
            total_gap += r.gap as u64;
            if r.kind.is_write() {
                writes += 1;
            }
            pages.insert(r.vaddr.raw() >> PAGE_SHIFT);
            blocks.insert(r.vaddr.raw() >> 6);
        }
        TraceSummary {
            records,
            instructions: total_gap + records,
            total_gap,
            writes,
            unique_pages: pages.len() as u64,
            unique_blocks: blocks.len() as u64,
        }
    }

    /// Footprint in bytes implied by the touched pages.
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_pages * nomad_types::PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use nomad_types::{AccessKind, VirtAddr};

    struct FixedTrace(Vec<TraceRecord>, usize);

    impl TraceSource for FixedTrace {
        fn next_record(&mut self) -> TraceRecord {
            let r = self.0[self.1 % self.0.len()];
            self.1 += 1;
            r
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    #[test]
    fn summary_counts() {
        let recs = vec![
            TraceRecord {
                gap: 2,
                kind: AccessKind::Read,
                vaddr: VirtAddr(0x1000),
            },
            TraceRecord {
                gap: 3,
                kind: AccessKind::Write,
                vaddr: VirtAddr(0x1040),
            },
            TraceRecord {
                gap: 0,
                kind: AccessKind::Read,
                vaddr: VirtAddr(0x2000),
            },
        ];
        let mut t = FixedTrace(recs, 0);
        let s = TraceSummary::measure(&mut t, 3);
        assert_eq!(s.records, 3);
        assert_eq!(s.instructions, 8);
        assert_eq!(s.writes, 1);
        assert_eq!(s.unique_pages, 2);
        assert_eq!(s.unique_blocks, 3);
        assert_eq!(s.footprint_bytes(), 8192);
    }
}
