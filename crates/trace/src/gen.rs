//! The synthetic trace generator.

use crate::profile::{DerivedParams, WorkloadProfile};
use crate::record::{TraceRecord, TraceSource};
use nomad_types::{AccessKind, VirtAddr, PAGE_SHIFT, SUB_BLOCKS_PER_PAGE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Base virtual page of the synthetic heap (arbitrary, non-zero).
const HEAP_BASE_VPN: u64 = 0x10_0000;
/// Pages in the SRAM-resident hot set.
const HOT_PAGES: u64 = 8;

/// Deterministic, endless synthetic memory trace for one
/// [`WorkloadProfile`].
///
/// The generator interleaves three access populations:
///
/// 1. **hot** accesses to a tiny page set (SRAM hits — they model the
///    cache-friendly majority of the instruction stream);
/// 2. **streaming** visits to brand-new pages (DRAM-cache tag misses →
///    the workload's RMHB);
/// 3. **revisits** to a window of recently-streamed pages that have
///    left the SRAM caches but remain DC-resident (the remainder of
///    LLC MPMS).
///
/// Each non-hot visit touches a contiguous run of
/// [`spatial_run`](WorkloadProfile::spatial_run) blocks, reproducing
/// the benchmark's spatial locality. Gaps between memory operations
/// are exponentially distributed around the derived mean, optionally
/// modulated by bursty phasing.
#[derive(Debug)]
pub struct SyntheticTrace {
    name: String,
    params: DerivedParams,
    spatial_run: usize,
    hot_frac: f64,
    write_frac: f64,
    burst: Option<crate::profile::Burst>,
    rng: SmallRng,
    /// Next streaming page index (wraps over the footprint).
    stream_cursor: u64,
    /// Recently streamed pages available for revisits.
    window: VecDeque<u64>,
    /// Current visit: (page index, next block, blocks remaining).
    visit: Option<(u64, u64, usize)>,
    /// Memory operations generated (drives burst phasing).
    ops: u64,
}

impl SyntheticTrace {
    /// Build a generator for `profile` with default scaling (4096
    /// pages per paper GB, 512-page LLC reach).
    pub fn new(profile: &WorkloadProfile, seed: u64) -> Self {
        Self::with_scale(profile, seed, 4096, 512)
    }

    /// Build a generator with explicit footprint scaling.
    pub fn with_scale(
        profile: &WorkloadProfile,
        seed: u64,
        pages_per_gb: u64,
        l3_reach_pages: u64,
    ) -> Self {
        let params = profile.derive(pages_per_gb, l3_reach_pages);
        // Pre-populate the revisit window: a long-running benchmark's
        // resident set exists from the start; without this, low-RMHB
        // workloads would take millions of visits to build it and the
        // transient would look nothing like steady state. The pages
        // still fault into the DRAM cache on first touch, which is
        // what the warm-up phase covers.
        let prefill = params.revisit_window.min(params.footprint_pages);
        SyntheticTrace {
            name: profile.name.clone(),
            params,
            spatial_run: profile.spatial_run,
            hot_frac: profile.hot_frac,
            write_frac: profile.write_frac,
            burst: profile.burst,
            rng: SmallRng::seed_from_u64(seed ^ 0x004e_4f4d_4144_u64),
            stream_cursor: prefill % params.footprint_pages,
            window: (0..prefill).collect(),
            visit: None,
            ops: 0,
        }
    }

    /// Derived parameters in use (for tests and reporting).
    pub fn params(&self) -> &DerivedParams {
        &self.params
    }

    fn sample_gap(&mut self) -> u32 {
        let mut mean = self.params.gap_mean;
        if let Some(b) = self.burst {
            let phase = (self.ops / b.period_ops) % 2;
            mean *= if phase == 0 { b.on_scale } else { b.off_scale };
        }
        if mean <= 0.0 {
            return 0;
        }
        // Exponential with the given mean.
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        (-mean * u.ln()).min(100_000.0) as u32
    }

    fn sample_kind(&mut self) -> AccessKind {
        if self.rng.gen_bool(self.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        }
    }

    fn hot_address(&mut self) -> VirtAddr {
        let page = self.rng.gen_range(0..HOT_PAGES);
        let block = self.rng.gen_range(0..SUB_BLOCKS_PER_PAGE);
        VirtAddr(((HEAP_BASE_VPN - HOT_PAGES + page) << PAGE_SHIFT) | (block << 6))
    }

    fn begin_visit(&mut self) {
        let new_page = self.window.is_empty() || self.rng.gen_bool(self.params.new_page_frac);
        let page = if new_page {
            let p = self.stream_cursor;
            self.stream_cursor = (self.stream_cursor + 1) % self.params.footprint_pages;
            self.window.push_back(p);
            if self.window.len() as u64 > self.params.revisit_window {
                self.window.pop_front();
            }
            p
        } else {
            let idx = self.rng.gen_range(0..self.window.len());
            self.window[idx]
        };
        let run = self.spatial_run.min(SUB_BLOCKS_PER_PAGE as usize);
        let start = self.rng.gen_range(0..=(SUB_BLOCKS_PER_PAGE as usize - run)) as u64;
        self.visit = Some((page, start, run));
    }

    fn visit_address(&mut self) -> VirtAddr {
        if self.visit.map(|(_, _, left)| left == 0).unwrap_or(true) {
            self.begin_visit();
        }
        let (page, block, left) = self.visit.expect("visit just begun");
        self.visit = Some((page, block + 1, left - 1));
        VirtAddr(((HEAP_BASE_VPN + page) << PAGE_SHIFT) | (block << 6))
    }
}

impl TraceSource for SyntheticTrace {
    fn next_record(&mut self) -> TraceRecord {
        self.ops += 1;
        let gap = self.sample_gap();
        let kind = self.sample_kind();
        let vaddr = if self.rng.gen_bool(self.hot_frac) {
            self.hot_address()
        } else {
            self.visit_address()
        };
        TraceRecord { gap, kind, vaddr }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn resident_pages(&self) -> Vec<nomad_types::Vpn> {
        let hot = (0..HOT_PAGES).map(|p| nomad_types::Vpn(HEAP_BASE_VPN - HOT_PAGES + p));
        let window = self
            .window
            .iter()
            .map(|p| nomad_types::Vpn(HEAP_BASE_VPN + p));
        hot.chain(window).collect()
    }

    fn aged_pages(&self, n: usize) -> Vec<(nomad_types::Vpn, bool)> {
        // Old streamed pages: walk backwards from the footprint's end,
        // staying clear of the live window at the front. A quarter of
        // the workload's write fraction is still dirty-in-cache at this
        // age — most written pages either get re-written (and re-aged)
        // or were already written back by the background daemon during
        // earlier pressure episodes.
        let window_end = self.window.len() as u64;
        let available = self.params.footprint_pages.saturating_sub(window_end);
        let take = (n as u64).min(available);
        (0..take)
            .map(|k| {
                let page = self.params.footprint_pages - 1 - k;
                // Cheap deterministic hash for the dirty decision.
                let h = page.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
                let dirty = (h % 1000) as f64 / 1000.0 < self.write_frac * 0.125;
                (nomad_types::Vpn(HEAP_BASE_VPN + page), dirty)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::TraceSummary;

    #[test]
    fn deterministic_per_seed() {
        let p = WorkloadProfile::cact();
        let mut a = SyntheticTrace::new(&p, 7);
        let mut b = SyntheticTrace::new(&p, 7);
        let mut c = SyntheticTrace::new(&p, 8);
        let ra: Vec<_> = (0..1000).map(|_| a.next_record()).collect();
        let rb: Vec<_> = (0..1000).map(|_| b.next_record()).collect();
        let rc: Vec<_> = (0..1000).map(|_| c.next_record()).collect();
        assert_eq!(ra, rb);
        assert_ne!(ra, rc);
    }

    #[test]
    fn addresses_stay_within_footprint() {
        let p = WorkloadProfile::bc();
        let d = p.derive(4096, 512);
        let mut t = SyntheticTrace::new(&p, 1);
        for _ in 0..50_000 {
            let r = t.next_record();
            let vpn = r.vaddr.raw() >> PAGE_SHIFT;
            assert!(
                (HEAP_BASE_VPN - HOT_PAGES..HEAP_BASE_VPN + d.footprint_pages).contains(&vpn),
                "vpn {vpn:#x} out of range"
            );
        }
    }

    #[test]
    fn streaming_workload_touches_many_new_pages() {
        let p = WorkloadProfile::cact();
        let summary = TraceSummary::measure(&mut SyntheticTrace::new(&p, 3), 200_000);
        // cact derives a high new-page fraction: unique pages should be
        // a large share of page visits.
        assert!(
            summary.unique_pages > 1000,
            "unique {}",
            summary.unique_pages
        );
    }

    #[test]
    fn revisit_workload_stays_inside_its_window() {
        // pr's touched pages stay ≈ its (pre-populated) revisit window,
        // while streaming cact keeps pulling fresh pages well past it.
        let pr = WorkloadProfile::pr();
        let cact = WorkloadProfile::cact();
        let d_pr = pr.derive(4096, 512);
        let d_cact = cact.derive(4096, 512);
        let s_pr = TraceSummary::measure(&mut SyntheticTrace::new(&pr, 3), 200_000);
        let s_cact = TraceSummary::measure(&mut SyntheticTrace::new(&cact, 3), 200_000);
        assert!(
            s_pr.unique_pages <= d_pr.revisit_window + d_pr.revisit_window / 5 + HOT_PAGES,
            "pr {} vs window {}",
            s_pr.unique_pages,
            d_pr.revisit_window
        );
        // cact keeps streaming: unique pages scale with its new-page
        // visit count rather than saturating at a window.
        let cact_visits = 200_000.0 * (1.0 - cact.hot_frac) / cact.spatial_run as f64;
        let expected_new = cact_visits * d_cact.new_page_frac;
        assert!(
            s_cact.unique_pages as f64 > 0.5 * expected_new,
            "cact {} vs expected ≈{expected_new:.0}",
            s_cact.unique_pages
        );
    }

    #[test]
    fn write_fraction_approximates_profile() {
        let p = WorkloadProfile::lbm();
        let s = TraceSummary::measure(&mut SyntheticTrace::new(&p, 5), 100_000);
        let frac = s.writes as f64 / s.records as f64;
        assert!((frac - p.write_frac).abs() < 0.02, "write frac {frac}");
    }

    #[test]
    fn gap_mean_approximates_derived() {
        let p = WorkloadProfile::tc();
        let d = p.derive(4096, 512);
        let s = TraceSummary::measure(&mut SyntheticTrace::new(&p, 5), 200_000);
        let mean = s.total_gap as f64 / s.records as f64;
        assert!(
            (mean - d.gap_mean).abs() < 0.1 * d.gap_mean.max(1.0),
            "gap mean {mean} vs derived {}",
            d.gap_mean
        );
    }

    #[test]
    fn bursty_profile_alternates_intensity() {
        let p = WorkloadProfile::libq();
        let b = p.burst.expect("libq is bursty");
        let mut t = SyntheticTrace::new(&p, 11);
        let mut phase_gaps = [0u64; 2];
        let mut phase_ops = [0u64; 2];
        for i in 0..(b.period_ops * 20) {
            let r = t.next_record();
            let phase = ((i / b.period_ops) % 2) as usize;
            phase_gaps[phase] += r.gap as u64;
            phase_ops[phase] += 1;
        }
        let on = phase_gaps[0] as f64 / phase_ops[0] as f64;
        let off = phase_gaps[1] as f64 / phase_ops[1] as f64;
        assert!(off > 2.0 * on, "on {on} off {off}");
    }

    #[test]
    fn spatial_runs_are_contiguous() {
        // With hot_frac forced to 0 we can observe raw visit structure.
        let mut p = WorkloadProfile::cact();
        p.hot_frac = 0.0;
        let mut t = SyntheticTrace::new(&p, 13);
        let mut contiguous = 0u64;
        let mut total = 0u64;
        let mut last: Option<u64> = None;
        for _ in 0..10_000 {
            let r = t.next_record();
            let blk = r.vaddr.raw() >> 6;
            if let Some(prev) = last {
                total += 1;
                if blk == prev + 1 {
                    contiguous += 1;
                }
            }
            last = Some(blk);
        }
        // Runs of 32: ~31/32 of transitions are sequential.
        assert!(contiguous as f64 / total as f64 > 0.9);
    }
}
