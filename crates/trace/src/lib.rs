//! Synthetic workloads reproducing the paper's Table I benchmark
//! characteristics.
//!
//! The paper evaluates 9 SPEC2006 and 6 GAPBS benchmarks, characterised
//! entirely by four axes (Table I):
//!
//! * **RMHB** — required miss-handling bandwidth of the off-package
//!   memory (GB/s of 4 KiB page fetches an ideal OS-managed DC would
//!   perform), which defines the *Excess / Tight / Loose / Few* classes;
//! * **LLC MPMS** — last-level-cache misses per microsecond (the demand
//!   pressure on the DRAM cache, and hence on a HW-based scheme's
//!   metadata bandwidth);
//! * **memory footprint**;
//! * qualitative **spatial locality** and **burstiness** (discussed per
//!   benchmark in §IV-B).
//!
//! Since the actual SPEC/GAPBS binaries and their gem5 checkpoints are
//! not reproducible here, each benchmark is replaced by a
//! [`WorkloadProfile`] that regenerates exactly those axes: a streaming
//! front of *new* pages (RMHB), revisits to a DC-resident-but-not-SRAM
//! -resident window (the remainder of MPMS), a per-visit contiguous
//! *run* of 64-byte blocks (spatial locality), an instruction gap
//! between memory operations, and optional bursty phasing. See
//! `DESIGN.md` §2 for the substitution argument.
//!
//! # Example
//!
//! ```
//! use nomad_trace::{SyntheticTrace, TraceSource, WorkloadProfile};
//!
//! let profile = WorkloadProfile::cact();
//! let mut trace = SyntheticTrace::new(&profile, 42);
//! let rec = trace.next_record();
//! assert!(rec.vaddr.raw() > 0 || rec.gap >= 0);
//! ```

mod analyze;
mod file;
mod gen;
mod profile;
mod record;

pub use analyze::TraceSummary;
pub use file::{capture, FileTrace};
pub use gen::SyntheticTrace;
pub use profile::{Burst, WorkloadClass, WorkloadProfile};
pub use record::{TraceRecord, TraceSource};
