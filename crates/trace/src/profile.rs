//! The 15 benchmark profiles of Table I and the parameter derivation
//! that turns the paper's measured characteristics into generator
//! knobs.

use serde::{Deserialize, Serialize};

/// RMHB class from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// RMHB greater than the available off-package bandwidth.
    Excess,
    /// RMHB consuming nearly all off-package bandwidth.
    Tight,
    /// RMHB around half the off-package bandwidth.
    Loose,
    /// Negligible RMHB.
    Few,
}

impl WorkloadClass {
    /// All classes in Table I order.
    pub const ALL: [WorkloadClass; 4] = [
        WorkloadClass::Excess,
        WorkloadClass::Tight,
        WorkloadClass::Loose,
        WorkloadClass::Few,
    ];

    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            WorkloadClass::Excess => "Excess",
            WorkloadClass::Tight => "Tight",
            WorkloadClass::Loose => "Loose",
            WorkloadClass::Few => "Few",
        }
    }

    /// Nominal IPC assumed when deriving instruction gaps: the ideal
    /// OS-managed configuration the paper measured Table I under.
    pub(crate) const fn assumed_ipc(self) -> f64 {
        match self {
            WorkloadClass::Excess => 0.7,
            WorkloadClass::Tight => 0.8,
            WorkloadClass::Loose => 0.9,
            WorkloadClass::Few => 1.1,
        }
    }
}

impl core::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Bursty phasing (libquantum/gemsFDTD alternate memory-intense and
/// compute-intense phases, which is what stresses PCSHR provisioning in
/// Figs. 14–15).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Memory operations per on/off half-period.
    pub period_ops: u64,
    /// Gap multiplier during the memory-intense phase (< 1).
    pub on_scale: f64,
    /// Gap multiplier during the compute phase (> 1).
    pub off_scale: f64,
}

/// A synthetic stand-in for one Table I benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Table I abbreviation (`cact`, `sssp`, …).
    pub name: String,
    /// Full benchmark name.
    pub full_name: String,
    /// RMHB class.
    pub class: WorkloadClass,
    /// Paper-reported required miss-handling bandwidth in GB/s.
    pub rmhb_gbps: f64,
    /// Paper-reported LLC misses per microsecond.
    pub llc_mpms: f64,
    /// Paper-reported memory footprint in GB.
    pub footprint_gb: f64,
    /// Contiguous 64-byte blocks touched per page visit (spatial
    /// locality knob).
    pub spatial_run: usize,
    /// Fraction of memory operations that hit a tiny SRAM-resident hot
    /// set.
    pub hot_frac: f64,
    /// Fraction of memory operations that are writes.
    pub write_frac: f64,
    /// Optional bursty phasing.
    pub burst: Option<Burst>,
}

/// Generator parameters derived from a profile for a given simulation
/// scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedParams {
    /// Pages in the scaled footprint.
    pub footprint_pages: u64,
    /// Probability a page visit targets a brand-new streaming page
    /// (vs. a revisit of the resident window).
    pub new_page_frac: f64,
    /// Mean non-memory instructions between memory operations.
    pub gap_mean: f64,
    /// Pages in the revisit window (DC-resident, SRAM-evicted).
    pub revisit_window: u64,
}

impl WorkloadProfile {
    /// CPU clock assumed by the derivation (cycles per microsecond).
    pub const CPU_CYCLES_PER_US: f64 = 3200.0;

    /// Cores in the paper's measurement system: Table I's RMHB and
    /// MPMS are system-wide totals over 8 cores each running one copy
    /// of the benchmark, so per-core generator rates divide by this.
    pub const PAPER_CORES: f64 = 8.0;

    /// New 4 KiB pages demanded per microsecond at the paper-reported
    /// RMHB.
    pub fn pages_per_us(&self) -> f64 {
        self.rmhb_gbps * 1000.0 / 4.096 / 1000.0
    }

    /// LLC misses each fetched page receives on average
    /// (`MPMS / pages-per-µs`) — the paper's implicit spatial-locality
    /// aggregate.
    pub fn blocks_per_page(&self) -> f64 {
        self.llc_mpms / self.pages_per_us()
    }

    /// Derive generator parameters.
    ///
    /// `pages_per_gb` scales the paper's multi-GB footprints down to
    /// simulable sizes while preserving their ratios (default in the
    /// system config: 4096 pages — 16 MiB — per paper GB).
    /// `l3_reach_pages` is the LLC capacity in pages; the revisit
    /// window is sized beyond it so revisits miss SRAM but hit the DC.
    ///
    /// # Panics
    ///
    /// Panics if the profile's `spatial_run` exceeds its
    /// `blocks_per_page()` budget (an inconsistent profile).
    pub fn derive(&self, pages_per_gb: u64, l3_reach_pages: u64) -> DerivedParams {
        let visits_per_us = self.llc_mpms / self.spatial_run as f64;
        let new_page_frac = self.pages_per_us() / visits_per_us;
        assert!(
            new_page_frac <= 1.0 + 1e-9,
            "{}: spatial_run {} exceeds blocks-per-page budget {:.1}",
            self.name,
            self.spatial_run,
            self.blocks_per_page()
        );
        let footprint_pages = ((self.footprint_gb * pages_per_gb as f64) as u64).max(64);
        // Instruction budget: assumed ideal IPC × cycle rate, spread
        // over this core's share of the memory operations (Table I's
        // MPMS is a system-wide total over PAPER_CORES cores).
        let mem_ops_per_us = self.llc_mpms / Self::PAPER_CORES / (1.0 - self.hot_frac);
        let instr_per_us = self.class.assumed_ipc() * Self::CPU_CYCLES_PER_US;
        let gap_mean = (instr_per_us / mem_ops_per_us - 1.0).max(0.0);
        // Revisit window: 4× beyond the LLC reach (so revisits miss
        // SRAM, reproducing the workload's MPMS) yet small enough that
        // every core's window together stays DC-resident.
        let revisit_window = (footprint_pages / 2)
            .min((l3_reach_pages * 4).max(512))
            .max(1);
        DerivedParams {
            footprint_pages,
            new_page_frac: new_page_frac.min(1.0),
            gap_mean,
            revisit_window,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn new(
        name: &str,
        full_name: &str,
        class: WorkloadClass,
        rmhb_gbps: f64,
        llc_mpms: f64,
        footprint_gb: f64,
        spatial_run: usize,
        write_frac: f64,
        burst: Option<Burst>,
    ) -> Self {
        WorkloadProfile {
            name: name.into(),
            full_name: full_name.into(),
            class,
            rmhb_gbps,
            llc_mpms,
            footprint_gb,
            spatial_run,
            hot_frac: 0.5,
            write_frac,
            burst,
        }
    }

    const BURSTY: Burst = Burst {
        period_ops: 4000,
        on_scale: 0.2,
        off_scale: 1.8,
    };

    /// cactusADM (SPEC2006) — highest RMHB, streaming stencil.
    pub fn cact() -> Self {
        Self::new(
            "cact",
            "cactusADM",
            WorkloadClass::Excess,
            43.8,
            486.6,
            11.9,
            32,
            0.35,
            None,
        )
    }

    /// sssp (GAPBS) — Excess class with low spatial locality.
    pub fn sssp() -> Self {
        Self::new(
            "sssp",
            "sssp",
            WorkloadClass::Excess,
            38.8,
            511.1,
            2.3,
            4,
            0.15,
            None,
        )
    }

    /// bwaves (SPEC2006) — Excess-class dense solver.
    pub fn bwav() -> Self {
        Self::new(
            "bwav",
            "bwaves",
            WorkloadClass::Excess,
            31.7,
            588.1,
            4.5,
            24,
            0.30,
            None,
        )
    }

    /// leslie3d (SPEC2006) — Tight class, abundant spatial locality,
    /// bursty LLC-miss traffic (§IV-B.2).
    pub fn les() -> Self {
        Self::new(
            "les",
            "leslie3d",
            WorkloadClass::Tight,
            26.5,
            532.8,
            7.5,
            32,
            0.30,
            Some(Self::BURSTY),
        )
    }

    /// libquantum (SPEC2006) — Tight class, bursty RMHB (Fig. 14).
    pub fn libq() -> Self {
        Self::new(
            "libq",
            "libquantum",
            WorkloadClass::Tight,
            25.1,
            210.6,
            4.0,
            24,
            0.25,
            Some(Self::BURSTY),
        )
    }

    /// gemsFDTD (SPEC2006) — Tight class, bursty RMHB (Fig. 15).
    pub fn gems() -> Self {
        Self::new(
            "gems",
            "gemsFDTD",
            WorkloadClass::Tight,
            24.8,
            269.2,
            6.3,
            24,
            0.30,
            Some(Self::BURSTY),
        )
    }

    /// bfs (GAPBS) — Tight class; spatial locality below 4 KiB but near
    /// the 1 KiB HW-scheme line size (§IV-B.2).
    pub fn bfs() -> Self {
        Self::new(
            "bfs",
            "bfs",
            WorkloadClass::Tight,
            23.1,
            298.5,
            2.4,
            12,
            0.15,
            None,
        )
    }

    /// cc (GAPBS) — Loose class with low LLC MPMS.
    pub fn cc() -> Self {
        Self::new(
            "cc",
            "cc",
            WorkloadClass::Loose,
            13.5,
            183.1,
            2.3,
            4,
            0.15,
            None,
        )
    }

    /// lbm (SPEC2006) — Loose-class streaming with heavy writes.
    pub fn lbm() -> Self {
        Self::new(
            "lbm",
            "lbm",
            WorkloadClass::Loose,
            12.4,
            270.5,
            3.2,
            32,
            0.45,
            None,
        )
    }

    /// mcf (SPEC2006) — Loose-class pointer chasing.
    pub fn mcf() -> Self {
        Self::new(
            "mcf",
            "mcf",
            WorkloadClass::Loose,
            12.2,
            472.0,
            2.8,
            2,
            0.20,
            None,
        )
    }

    /// bc (GAPBS) — Loose class, low spatial locality (§IV-B.3).
    pub fn bc() -> Self {
        Self::new(
            "bc",
            "bc",
            WorkloadClass::Loose,
            10.8,
            533.7,
            1.3,
            2,
            0.15,
            None,
        )
    }

    /// astar (SPEC2006) — Few class but highest RMHB within it.
    pub fn ast() -> Self {
        Self::new(
            "ast",
            "astar",
            WorkloadClass::Few,
            6.9,
            72.1,
            1.0,
            4,
            0.25,
            None,
        )
    }

    /// pr (GAPBS) — Few-class PageRank: huge MPMS, tiny RMHB.
    pub fn pr() -> Self {
        Self::new(
            "pr",
            "pr",
            WorkloadClass::Few,
            3.4,
            691.9,
            4.8,
            2,
            0.15,
            None,
        )
    }

    /// soplex (SPEC2006) — Few class.
    pub fn sop() -> Self {
        Self::new(
            "sop",
            "soplex",
            WorkloadClass::Few,
            1.7,
            310.2,
            1.2,
            8,
            0.25,
            None,
        )
    }

    /// tc (GAPBS) — Few class, lowest RMHB.
    pub fn tc() -> Self {
        Self::new(
            "tc",
            "tc",
            WorkloadClass::Few,
            1.66,
            226.3,
            2.3,
            2,
            0.15,
            None,
        )
    }

    /// All 15 Table I workloads in paper order.
    pub fn all() -> Vec<WorkloadProfile> {
        vec![
            Self::cact(),
            Self::sssp(),
            Self::bwav(),
            Self::les(),
            Self::libq(),
            Self::gems(),
            Self::bfs(),
            Self::cc(),
            Self::lbm(),
            Self::mcf(),
            Self::bc(),
            Self::ast(),
            Self::pr(),
            Self::sop(),
            Self::tc(),
        ]
    }

    /// Look up a profile by Table I abbreviation.
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// All workloads of `class`, in paper order.
    pub fn of_class(class: WorkloadClass) -> Vec<WorkloadProfile> {
        Self::all()
            .into_iter()
            .filter(|p| p.class == class)
            .collect()
    }

    /// The six high-MPMS workloads of Fig. 2 (paper order, excluding
    /// `les` whose anomaly is discussed separately).
    pub fn fig2_set() -> Vec<WorkloadProfile> {
        ["cact", "sssp", "bwav", "mcf", "bc", "pr"]
            .iter()
            .map(|n| Self::by_name(n).expect("known name"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fifteen_present_in_paper_order() {
        let all = WorkloadProfile::all();
        assert_eq!(all.len(), 15);
        assert_eq!(all[0].name, "cact");
        assert_eq!(all[14].name, "tc");
        // RMHB is non-increasing in Table I order.
        for w in all.windows(2) {
            assert!(
                w[0].rmhb_gbps >= w[1].rmhb_gbps,
                "{} < {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn classes_partition_by_rmhb() {
        for p in WorkloadProfile::all() {
            match p.class {
                WorkloadClass::Excess => assert!(p.rmhb_gbps > 28.0),
                WorkloadClass::Tight => assert!((20.0..28.0).contains(&p.rmhb_gbps)),
                WorkloadClass::Loose => assert!((8.0..20.0).contains(&p.rmhb_gbps)),
                WorkloadClass::Few => assert!(p.rmhb_gbps < 8.0),
            }
        }
    }

    #[test]
    fn spatial_runs_fit_blocks_per_page_budget() {
        for p in WorkloadProfile::all() {
            assert!(
                (p.spatial_run as f64) <= p.blocks_per_page() + 1e-9,
                "{}: run {} > budget {:.1}",
                p.name,
                p.spatial_run,
                p.blocks_per_page()
            );
        }
    }

    #[test]
    fn derive_produces_sane_params() {
        for p in WorkloadProfile::all() {
            let d = p.derive(4096, 512);
            assert!(d.footprint_pages >= 64, "{}", p.name);
            assert!((0.0..=1.0).contains(&d.new_page_frac), "{}", p.name);
            assert!(d.gap_mean >= 0.0, "{}", p.name);
            assert!(d.revisit_window >= 1);
            assert!(d.revisit_window <= d.footprint_pages);
        }
    }

    #[test]
    fn pr_is_revisit_dominated_and_cact_stream_dominated() {
        let pr = WorkloadProfile::pr().derive(4096, 512);
        let cact = WorkloadProfile::cact().derive(4096, 512);
        assert!(pr.new_page_frac < 0.01, "pr {}", pr.new_page_frac);
        assert!(cact.new_page_frac > 0.5, "cact {}", cact.new_page_frac);
    }

    #[test]
    fn bursty_workloads_are_libq_gems_les() {
        let bursty: Vec<String> = WorkloadProfile::all()
            .into_iter()
            .filter(|p| p.burst.is_some())
            .map(|p| p.name)
            .collect();
        assert_eq!(bursty, vec!["les", "libq", "gems"]);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            WorkloadProfile::by_name("libq").unwrap().full_name,
            "libquantum"
        );
        assert!(WorkloadProfile::by_name("nope").is_none());
    }

    #[test]
    fn fig2_set_is_six_high_mpms_workloads() {
        let set = WorkloadProfile::fig2_set();
        assert_eq!(set.len(), 6);
        assert!(set.iter().all(|p| p.llc_mpms > 400.0));
    }
}
