//! Shared-page support (paper §III-G): when a physical frame is mapped
//! by several PTEs, the DC tag-miss handler must update all of them via
//! the reverse mapping, and eviction must restore all of them —
//! without extra machinery, because both paths already walk the rmap.

use nomad_core::NomadScheme;
use nomad_dcache::{DcScheme, NoFlush, SchemeEvents, WalkOutcome};
use nomad_dram::{Dram, DramConfig};
use nomad_types::{AccessKind, Pfn, SubBlockIdx, Vpn, PAGE_SIZE};

struct Rig {
    scheme: NomadScheme,
    hbm: Dram,
    ddr: Dram,
    ev: SchemeEvents,
    now: u64,
}

impl Rig {
    fn new(frames: u64) -> Self {
        Rig {
            scheme: NomadScheme::nomad(frames * PAGE_SIZE),
            hbm: Dram::new(DramConfig::hbm()),
            ddr: Dram::new(DramConfig::ddr4_2ch()),
            ev: SchemeEvents::default(),
            now: 0,
        }
    }

    fn run(&mut self, cycles: u64) -> usize {
        let mut wakes = 0;
        for _ in 0..cycles {
            self.scheme.tick(
                self.now,
                &mut self.hbm,
                &mut self.ddr,
                &mut NoFlush,
                &mut self.ev,
            );
            wakes += self.ev.wakes.len();
            self.ev.clear();
            self.now += 1;
        }
        wakes
    }
}

#[test]
fn tag_miss_on_shared_page_updates_all_ptes() {
    let mut rig = Rig::new(256);
    // Map vpn 10 (allocating pfn 0), then alias vpn 20 to the same pfn.
    rig.scheme.frontend_mut().page_table_mut().pte_mut(Vpn(10));
    assert!(rig
        .scheme
        .frontend_mut()
        .page_table_mut()
        .alias(Vpn(20), Pfn(0)));

    // Fault through vpn 10.
    match rig
        .scheme
        .walk(0, Vpn(10), SubBlockIdx(0), AccessKind::Read, 0)
    {
        WalkOutcome::Blocked { .. } => {}
        _ => panic!("first touch must tag-miss"),
    }
    rig.run(600);

    // Both aliases must now be cached with the same frame.
    let pt = rig.scheme.frontend_mut().page_table_mut();
    let f10 = pt.get(Vpn(10)).expect("mapped").frame;
    let f20 = pt.get(Vpn(20)).expect("mapped").frame;
    assert_eq!(f10, f20, "shared page: one cache frame for all PTEs");
    assert!(pt.get(Vpn(10)).expect("mapped").cached());

    // A walk through the *other* alias is now a plain hit — no second
    // tag miss, no second fill.
    match rig
        .scheme
        .walk(1, Vpn(20), SubBlockIdx(3), AccessKind::Read, rig.now)
    {
        WalkOutcome::Ready { entry } => assert_eq!(entry.frame, f10),
        _ => panic!("alias must not re-fault"),
    }
    assert_eq!(rig.scheme.stats().tag_misses.get(), 1);
}

#[test]
fn eviction_restores_every_alias() {
    let mut rig = Rig::new(64);
    rig.scheme.frontend_mut().page_table_mut().pte_mut(Vpn(1));
    assert!(rig
        .scheme
        .frontend_mut()
        .page_table_mut()
        .alias(Vpn(2), Pfn(0)));
    // Cache the shared page...
    rig.scheme
        .walk(0, Vpn(1), SubBlockIdx(0), AccessKind::Read, 0);
    rig.run(20_000);
    assert!(rig
        .scheme
        .frontend_mut()
        .page_table()
        .get(Vpn(1))
        .expect("mapped")
        .cached());
    // ...then create enough pressure to evict it (64-frame cache).
    for v in 100..400u64 {
        rig.scheme
            .walk(0, Vpn(v), SubBlockIdx(0), AccessKind::Read, rig.now);
        rig.run(1500);
    }
    let pt = rig.scheme.frontend_mut().page_table();
    let p1 = pt.get(Vpn(1)).expect("mapped");
    let p2 = pt.get(Vpn(2)).expect("mapped");
    assert!(!p1.cached(), "shared page evicted");
    assert_eq!(p1.frame, p2.frame, "both aliases restored to the PFN");
}
