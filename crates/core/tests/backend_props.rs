//! Property-based tests of the NOMAD back-end: under arbitrary
//! interleavings of demand accesses and transfer completions, the
//! PCSHR engine must preserve its accounting invariants and always
//! drain to completion.

use nomad_core::backend::{decode_copy_token, AccessCheck, Backend, BackendConfig};
use nomad_core::{CompletedCopy, CopyCommand, CopyKind};
use nomad_dcache::DcAccessReq;
use nomad_types::{AccessKind, BlockAddr, Cfn, MemTarget, Pfn, ReqId, SubBlockIdx};
use proptest::prelude::*;

fn fill_cmd(pfn: u64, cfn: u64, prio: u8) -> CopyCommand {
    CopyCommand {
        kind: CopyKind::Fill,
        pfn: Pfn(pfn),
        cfn: Cfn(cfn),
        priority: Some(SubBlockIdx(prio % 64)),
    }
}

fn access(cfn: u64, sub: u8, write: bool, token: u64) -> DcAccessReq {
    DcAccessReq {
        token: ReqId(token),
        addr: BlockAddr(cfn * 64 + (sub % 64) as u64),
        target: MemTarget::DramCache,
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        core: 0,
        wants_response: !write,
    }
}

/// Drive the backend against instant DRAM until idle; returns the
/// completed copies and the number of demand responses released.
fn drain(b: &mut Backend, max_cycles: u64) -> (Vec<CompletedCopy>, usize) {
    let mut completed = Vec::new();
    let mut responses = Vec::new();
    for now in 0..max_cycles {
        b.tick(now);
        let mut reqs: Vec<_> = b.to_hbm.drain(..).collect();
        reqs.extend(b.to_ddr.drain(..));
        for r in reqs {
            let (_, w, slot, sub) = decode_copy_token(r.token);
            b.on_copy_completion(w, slot, sub, now);
        }
        b.pop_ready_responses(now + 1_000_000, &mut responses);
        b.take_completed(&mut completed);
        if b.is_idle() {
            break;
        }
    }
    (completed, responses.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every accepted command eventually completes, regardless of the
    /// demand traffic thrown at it mid-copy, and every parked read is
    /// eventually answered.
    #[test]
    fn prop_all_commands_complete(
        cmds in proptest::collection::vec((0u64..32, 0u8..64), 1..12),
        ops in proptest::collection::vec((0usize..12, 0u8..64, proptest::bool::ANY), 0..40),
        pcshrs in 2usize..8,
        buffers in 1usize..8,
    ) {
        let cfg = BackendConfig {
            pcshrs,
            buffers: buffers.min(pcshrs),
            ..BackendConfig::default()
        };
        let mut b = Backend::new(0, cfg);
        // Distinct CFNs per command (duplicate CFNs are prevented by
        // the front-end's pending-VPN dedup in real operation).
        let mut accepted: Vec<u64> = Vec::new();
        for (i, &(pfn, prio)) in cmds.iter().enumerate() {
            let cfn = 100 + i as u64;
            if b.try_send(fill_cmd(pfn, cfn, prio)) {
                accepted.push(cfn);
            }
        }
        prop_assert!(!accepted.is_empty());

        // Interleave demand traffic against the in-flight pages.
        let mut parked_reads = 0usize;
        let mut serviced = 0usize;
        for (i, &(cmd_idx, sub, write)) in ops.iter().enumerate() {
            let cfn = accepted[cmd_idx % accepted.len()];
            match b.check_access(access(cfn, sub, write, 1000 + i as u64), i as u64) {
                AccessCheck::Parked => parked_reads += if write { 0 } else { 1 },
                AccessCheck::Serviced => serviced += 1,
                AccessCheck::Retry | AccessCheck::Absorbed | AccessCheck::NoMatch => {}
            }
        }

        let (completed, responses) = drain(&mut b, 10_000);
        prop_assert_eq!(completed.len(), accepted.len(), "all copies complete");
        prop_assert!(b.is_idle());
        prop_assert_eq!(
            responses, parked_reads + serviced,
            "every waiting read answered exactly once"
        );
        // After completion, the same pages are data hits.
        for &cfn in &accepted {
            prop_assert_eq!(
                b.check_access(access(cfn, 0, false, 9999), 99_999),
                AccessCheck::NoMatch
            );
        }
    }

    /// The interface accepts exactly as many commands as there are
    /// PCSHRs, and frees capacity as copies complete.
    #[test]
    fn prop_interface_capacity(pcshrs in 1usize..16) {
        let cfg = BackendConfig {
            pcshrs,
            buffers: pcshrs,
            ..BackendConfig::default()
        };
        let mut b = Backend::new(0, cfg);
        let mut sent = 0;
        for i in 0..pcshrs + 4 {
            if b.try_send(fill_cmd(i as u64, 500 + i as u64, 0)) {
                sent += 1;
            }
        }
        prop_assert_eq!(sent, pcshrs, "capacity equals PCSHR count");
        prop_assert!(!b.interface_idle());
        let (completed, _) = drain(&mut b, 20_000);
        prop_assert_eq!(completed.len(), pcshrs);
        prop_assert!(b.interface_idle());
        prop_assert!(b.try_send(fill_cmd(99, 999, 0)), "capacity recycled");
    }

    /// Writebacks and fills may coexist; lookups never confuse the two
    /// directions (fills match by CFN, writebacks by PFN).
    #[test]
    fn prop_fill_wb_tag_separation(page in 1u64..1000) {
        let mut b = Backend::new(0, BackendConfig::default());
        // A fill into cache frame `page` and a writeback of physical
        // frame `page` (same number, different spaces).
        prop_assert!(b.try_send(fill_cmd(page + 5000, page, 0)));
        let wb_sent = b.try_send(CopyCommand {
            kind: CopyKind::Writeback,
            pfn: Pfn(page),
            cfn: Cfn(page + 7000),
            priority: None,
        });
        prop_assert!(wb_sent);
        // DC access to cfn=page matches the fill.
        let dc = access(page, 3, false, 1);
        prop_assert_ne!(b.check_access(dc, 0), AccessCheck::NoMatch);
        // Off-package access to pfn=page matches the writeback.
        let off = DcAccessReq {
            target: MemTarget::OffPackage,
            ..access(page, 3, false, 2)
        };
        prop_assert_ne!(b.check_access(off, 0), AccessCheck::NoMatch);
        // Off-package access to an unrelated pfn matches nothing.
        let other = DcAccessReq {
            target: MemTarget::OffPackage,
            ..access(page + 1, 3, false, 3)
        };
        prop_assert_eq!(b.check_access(other, 0), AccessCheck::NoMatch);
        let (completed, _) = drain(&mut b, 20_000);
        prop_assert_eq!(completed.len(), 2);
    }
}
