//! **NOMAD** — Non-blocking OS-managed DRAM cache via tag-data
//! decoupling (HPCA 2023). This crate is the paper's primary
//! contribution.
//!
//! Conventional caches couple tag and data management: a tag hit
//! guarantees the data is present, which forces OS-managed DRAM caches
//! to *block* the faulting thread until a 4 KiB page copy completes.
//! NOMAD decouples the two:
//!
//! * The **front-end** ([`Frontend`]) — OS routines — manages DC tags
//!   in PTEs/TLBs: a DC tag-miss handler allocates a cache frame from a
//!   circular FIFO free queue (Algorithm 1), offloads a cache-fill
//!   command to the back-end, updates the PTE, and *immediately*
//!   resumes the thread; a background eviction daemon reclaims frames
//!   from the queue's tail (Algorithm 2), skipping TLB-resident frames
//!   to avoid shootdowns.
//! * The **back-end** ([`backend::Backend`]) — hardware — executes page
//!   copies with *page copy status/information holding registers*
//!   (PCSHRs): per-sub-block read-issued/in-buffer/partial-write bit
//!   vectors, page copy buffers, critical-data-first scheduling, and
//!   sub-entries that park demand accesses whose data is still in
//!   flight. Because a tag hit no longer implies a data hit, **every**
//!   DC access is checked against the PCSHRs — with no OS involvement,
//!   which is what makes the cache non-blocking.
//!
//! The same front-end with *coupled* (blocking) miss handling and
//! parallel per-PTE-locked copies yields **TDC**, the state-of-the-art
//! blocking OS-managed scheme the paper compares against
//! ([`NomadScheme::tdc`]); the paper built its TDC model the same way
//! (§IV-A).
//!
//! Both centralized and distributed back-end organizations (§III-F,
//! Fig. 16) and the area-optimized decoupled page-copy-buffer design
//! (§IV-B.7, Fig. 15) are supported through [`NomadConfig`].

pub mod backend;
mod config;
mod frontend;
mod scheme;

pub use backend::{AccessCheck, Backend, BackendConfig, CompletedCopy, CopyCommand, CopyKind};
pub use config::{CachingPolicy, NomadConfig};
pub use frontend::{BackendCtl, Frontend, FrontendConfig, FrontendEvents, HandledTagMiss};
pub use scheme::NomadScheme;
