//! Page copy status/information holding registers (paper Fig. 6).

use nomad_types::{Cfn, Cycle, Pfn, SubBlockIdx, SUB_BLOCKS_PER_PAGE};

/// Bit mask with all 64 sub-block bits set.
pub(crate) const FULL: u64 = u64::MAX;

const _: () = assert!(SUB_BLOCKS_PER_PAGE == 64, "R/B/W vectors are u64");

/// Command type executed by a PCSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyKind {
    /// Cache fill: read the page from off-package memory, write it into
    /// the DRAM cache.
    Fill,
    /// Writeback: read the page from the DRAM cache, write it to
    /// off-package memory.
    Writeback,
}

/// A page-copy command sent through the back-end interface register
/// (type, PFN, CFN, offset — 76 bits in hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyCommand {
    /// Fill or writeback.
    pub kind: CopyKind,
    /// Off-package frame.
    pub pfn: Pfn,
    /// Cache frame.
    pub cfn: Cfn,
    /// Prioritized sub-block (critical-data-first); `None` for
    /// writebacks.
    pub priority: Option<SubBlockIdx>,
}

/// A demand access parked in a PCSHR sub-entry until its sub-block
/// arrives in the page copy buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SubEntry<T> {
    /// Sub-block index (SI).
    pub sub: SubBlockIdx,
    /// Arrival cycle, for DC-access-time stats.
    pub arrival: Cycle,
    /// Caller payload (the parked request).
    pub payload: T,
}

/// One PCSHR: command info plus the three per-sub-block bit vectors
/// and a bounded set of sub-entries.
#[derive(Debug, Clone)]
pub(crate) struct Pcshr<T> {
    pub cmd: CopyCommand,
    /// R: source reads issued.
    pub read_issued: u64,
    /// B: sub-block present in the page copy buffer.
    pub in_buffer: u64,
    /// Destination writes issued (the W vector's "transfer started"
    /// half).
    pub write_issued: u64,
    /// W: destination writes completed.
    pub written: u64,
    /// Parked demand accesses.
    pub sub_entries: Vec<SubEntry<T>>,
    /// Page copy buffer assigned (None in the area-optimized design
    /// until one frees up). Allocation order for FIFO buffer handoff
    /// lives in the back-end's packed `seqs` array.
    pub buffer: Option<usize>,
}

impl<T> Pcshr<T> {
    pub fn new(cmd: CopyCommand, buffer: Option<usize>) -> Self {
        Pcshr {
            cmd,
            read_issued: 0,
            in_buffer: 0,
            write_issued: 0,
            written: 0,
            sub_entries: Vec::new(),
            buffer,
        }
    }

    /// Next source sub-block to read: critical-data-first with early
    /// restart — start at the prioritized sub-block and continue
    /// sequentially, wrapping around the page, so a thread streaming
    /// from its faulting address finds each block already in the
    /// buffer. Skips sub-blocks already issued or already in the
    /// buffer (e.g. freshly written by a demand store).
    pub fn next_read(&self) -> Option<SubBlockIdx> {
        let blocked = self.read_issued | self.in_buffer;
        if blocked == FULL {
            return None;
        }
        let start = self.cmd.priority.map(|p| p.index()).unwrap_or(0);
        // Rotate so `start` is bit 0, find the first free bit, rotate
        // back.
        let rotated = blocked.rotate_right(start as u32);
        let offset = rotated.trailing_ones() as usize;
        Some(SubBlockIdx(((start + offset) % 64) as u8))
    }

    /// Next destination sub-block to write: in buffer but write not yet
    /// issued.
    pub fn next_write(&self) -> Option<SubBlockIdx> {
        let ready = self.in_buffer & !self.write_issued;
        if ready == 0 {
            None
        } else {
            Some(SubBlockIdx(ready.trailing_zeros() as u8))
        }
    }

    /// Whether the whole page has been transferred.
    pub fn complete(&self) -> bool {
        self.written == FULL
    }

    /// Absorb a demand store into the page copy buffer: the sub-block
    /// becomes buffer-resident with fresh data, and any
    /// previously-issued destination write is invalidated so the new
    /// data is transferred again.
    pub fn absorb_write(&mut self, sub: SubBlockIdx) {
        self.in_buffer |= sub.bit();
        self.write_issued &= !sub.bit();
        self.written &= !sub.bit();
    }

    /// Mark a source read completed (sub-block now in the buffer);
    /// drains sub-entries waiting for it into `serviced`.
    pub fn read_done(&mut self, sub: SubBlockIdx, serviced: &mut Vec<SubEntry<T>>) {
        if self.in_buffer & sub.bit() != 0 {
            // A demand store beat the read: buffer data is newer.
            return;
        }
        self.in_buffer |= sub.bit();
        self.take_sub_entries(sub, serviced);
    }

    /// Remove every sub-entry waiting on `sub` into `out` (the
    /// sub-block just became buffer-resident, by a source read or by a
    /// demand store).
    pub fn take_sub_entries(&mut self, sub: SubBlockIdx, out: &mut Vec<SubEntry<T>>) {
        let mut i = 0;
        while i < self.sub_entries.len() {
            if self.sub_entries[i].sub == sub {
                out.push(self.sub_entries.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Mark a destination write issued.
    pub fn write_sent(&mut self, sub: SubBlockIdx) {
        self.write_issued |= sub.bit();
    }

    /// Mark a destination write completed.
    pub fn write_done(&mut self, sub: SubBlockIdx) {
        // Stale completion after a demand store re-dirtied the block:
        // write_issued was cleared, so ignore it.
        if self.write_issued & sub.bit() != 0 {
            self.written |= sub.bit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(priority: Option<u8>) -> CopyCommand {
        CopyCommand {
            kind: CopyKind::Fill,
            pfn: Pfn(3),
            cfn: Cfn(7),
            priority: priority.map(SubBlockIdx),
        }
    }

    #[test]
    fn critical_data_first_wraps_from_priority() {
        let p: Pcshr<()> = Pcshr::new(cmd(Some(17)), Some(0));
        assert_eq!(p.next_read(), Some(SubBlockIdx(17)));
        let mut p = p;
        p.read_issued |= SubBlockIdx(17).bit();
        assert_eq!(p.next_read(), Some(SubBlockIdx(18)), "early restart");
        for i in 18..64u8 {
            p.read_issued |= SubBlockIdx(i).bit();
        }
        assert_eq!(p.next_read(), Some(SubBlockIdx(0)), "wraps to page start");
    }

    #[test]
    fn read_order_without_priority_is_sequential() {
        let mut p: Pcshr<()> = Pcshr::new(cmd(None), Some(0));
        for i in 0..64u8 {
            let n = p.next_read().expect("blocks remain");
            assert_eq!(n, SubBlockIdx(i));
            p.read_issued |= n.bit();
        }
        assert_eq!(p.next_read(), None);
    }

    #[test]
    fn write_follows_buffer_arrival() {
        let mut p: Pcshr<()> = Pcshr::new(cmd(None), Some(0));
        assert_eq!(p.next_write(), None);
        let mut s = Vec::new();
        p.read_done(SubBlockIdx(5), &mut s);
        assert_eq!(p.next_write(), Some(SubBlockIdx(5)));
        p.write_sent(SubBlockIdx(5));
        assert_eq!(p.next_write(), None);
        p.write_done(SubBlockIdx(5));
        assert!(p.written & SubBlockIdx(5).bit() != 0);
    }

    #[test]
    fn completion_requires_all_64_writes() {
        let mut p: Pcshr<()> = Pcshr::new(cmd(None), Some(0));
        let mut s = Vec::new();
        for i in 0..64u8 {
            assert!(!p.complete());
            p.read_done(SubBlockIdx(i), &mut s);
            p.write_sent(SubBlockIdx(i));
            p.write_done(SubBlockIdx(i));
        }
        assert!(p.complete());
    }

    #[test]
    fn sub_entries_drain_on_matching_read() {
        let mut p: Pcshr<u32> = Pcshr::new(cmd(None), Some(0));
        p.sub_entries.push(SubEntry {
            sub: SubBlockIdx(3),
            arrival: 10,
            payload: 1,
        });
        p.sub_entries.push(SubEntry {
            sub: SubBlockIdx(9),
            arrival: 11,
            payload: 2,
        });
        p.sub_entries.push(SubEntry {
            sub: SubBlockIdx(3),
            arrival: 12,
            payload: 3,
        });
        let mut s = Vec::new();
        p.read_done(SubBlockIdx(3), &mut s);
        let mut got: Vec<u32> = s.iter().map(|e| e.payload).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3]);
        assert_eq!(p.sub_entries.len(), 1);
    }

    #[test]
    fn absorbed_store_skips_source_read_and_redoes_write() {
        let mut p: Pcshr<()> = Pcshr::new(cmd(None), Some(0));
        // Write already transferred, then a demand store lands.
        let mut s = Vec::new();
        p.read_done(SubBlockIdx(0), &mut s);
        p.write_sent(SubBlockIdx(0));
        p.write_done(SubBlockIdx(0));
        p.absorb_write(SubBlockIdx(0));
        assert_eq!(p.written & 1, 0, "write must be redone");
        assert_eq!(p.next_write(), Some(SubBlockIdx(0)));
        // And the source read for an absorbed block is skipped.
        let mut q: Pcshr<()> = Pcshr::new(cmd(None), Some(0));
        q.absorb_write(SubBlockIdx(0));
        assert_eq!(q.next_read(), Some(SubBlockIdx(1)));
    }

    #[test]
    fn stale_read_completion_after_store_is_ignored() {
        let mut p: Pcshr<()> = Pcshr::new(cmd(None), Some(0));
        p.read_issued |= SubBlockIdx(2).bit();
        p.absorb_write(SubBlockIdx(2));
        let mut s = Vec::new();
        p.read_done(SubBlockIdx(2), &mut s); // stale memory data
        assert!(s.is_empty());
        assert!(p.in_buffer & SubBlockIdx(2).bit() != 0);
    }

    #[test]
    fn stale_write_completion_after_store_is_ignored() {
        let mut p: Pcshr<()> = Pcshr::new(cmd(None), Some(0));
        let mut s = Vec::new();
        p.read_done(SubBlockIdx(1), &mut s);
        p.write_sent(SubBlockIdx(1));
        p.absorb_write(SubBlockIdx(1)); // clears write_issued
        p.write_done(SubBlockIdx(1)); // stale completion
        assert_eq!(p.written & SubBlockIdx(1).bit(), 0);
    }
}
