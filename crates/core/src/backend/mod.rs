//! The NOMAD back-end hardware: interface register semantics, PCSHRs
//! and page copy buffers (paper §III-D).
//!
//! A [`Backend`] accepts page-copy commands from the front-end through
//! its interface ([`Backend::try_send`] — which fails exactly when no
//! PCSHR is free, keeping the interface register "busy"), executes them
//! sub-block by sub-block through both DRAM devices, and verifies data
//! hits for every DRAM-cache access ([`Backend::check_access`]). None
//! of this involves the OS — which is what makes NOMAD non-blocking.

mod pcshr;

pub use pcshr::{CopyCommand, CopyKind};
use pcshr::{Pcshr, SubEntry};

use nomad_dcache::DcAccessReq;
use nomad_dram::DramRequest;
use nomad_types::{
    AccessKind, Cfn, CoreId, Cycle, MemResp, MemTarget, Pfn, ReqId, SubBlockIdx, TrafficClass,
};
use std::collections::VecDeque;

/// Back-end sizing and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendConfig {
    /// Page copy status/information holding registers.
    pub pcshrs: usize,
    /// Page copy buffers (== `pcshrs` for the coupled design; smaller
    /// for the area-optimized design of §IV-B.7).
    pub buffers: usize,
    /// Sub-entries per PCSHR (four 2-byte sub-entries in the paper).
    pub sub_entries: usize,
    /// Latency of servicing a read from a page copy buffer.
    pub buffer_latency: Cycle,
    /// Source reads issued per PCSHR per cycle.
    pub reads_per_tick: usize,
    /// Destination writes issued per PCSHR per cycle.
    pub writes_per_tick: usize,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            pcshrs: 16,
            buffers: 16,
            sub_entries: 4,
            buffer_latency: 10,
            reads_per_tick: 2,
            writes_per_tick: 2,
        }
    }
}

/// Result of checking a demand access against the PCSHRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessCheck {
    /// No PCSHR matched: the page is fully resident — a *data hit*;
    /// the access may proceed to DRAM.
    NoMatch,
    /// Data miss, but the sub-block is in a page copy buffer: a
    /// response has been scheduled after the buffer latency.
    Serviced,
    /// Data miss on a store: the data was absorbed into the page copy
    /// buffer.
    Absorbed,
    /// Data miss: parked in a sub-entry until the sub-block arrives.
    Parked,
    /// Data miss, but the matched PCSHR's sub-entries are full; retry
    /// next cycle.
    Retry,
}

/// A finished page copy, reported to the front-end/scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedCopy {
    /// Fill or writeback.
    pub kind: CopyKind,
    /// Off-package frame involved.
    pub pfn: Pfn,
    /// Cache frame involved.
    pub cfn: Cfn,
}

/// Token layout for copy traffic: bit 63 marks back-end traffic, bits
/// 62..56 the backend id, bit 55 write-vs-read, bits 31..8 the PCSHR
/// index, bits 7..0 the sub-block.
pub(crate) fn copy_token(backend: usize, is_write: bool, slot: usize, sub: SubBlockIdx) -> u64 {
    (1u64 << 63)
        | ((backend as u64 & 0x3f) << 56)
        | ((is_write as u64) << 55)
        | ((slot as u64 & 0xff_ffff) << 8)
        | sub.index() as u64
}

/// Whether `token` belongs to any back-end.
pub fn is_copy_token(token: ReqId) -> bool {
    token.0 >> 63 == 1
}

/// Decode a copy token into `(backend, is_write, slot, sub)`.
pub fn decode_copy_token(token: ReqId) -> (usize, bool, usize, SubBlockIdx) {
    let t = token.0;
    (
        ((t >> 56) & 0x3f) as usize,
        (t >> 55) & 1 == 1,
        ((t >> 8) & 0xff_ffff) as usize,
        SubBlockIdx((t & 0xff) as u8),
    )
}

/// One NOMAD back-end (one per memory channel group in the distributed
/// organization; exactly one in the centralized organization).
///
/// PCSHR tag checks run on every DRAM-cache access, so the slot file is
/// scanned through packed occupancy words and tag arrays instead of the
/// `Vec<Option<…>>` it stores payloads in: `live`/`fill`/`has_buffer`
/// are one bit per PCSHR, and `cfns`/`pfns`/`seqs` mirror each live
/// command's tags in flat arrays. Every scan walks set bits with
/// trailing-zeros, visiting slots in ascending index order — the same
/// order the old `iter().position(…)` scans observed.
#[derive(Debug)]
pub struct Backend {
    id: usize,
    cfg: BackendConfig,
    slots: Vec<Option<Pcshr<DcAccessReq>>>,
    /// Bit `i` set while PCSHR `i` is live.
    live: u64,
    /// Bit `i` set while live PCSHR `i` executes a fill (clear: writeback).
    fill: u64,
    /// Bit `i` set while live PCSHR `i` holds a page copy buffer.
    has_buffer: u64,
    /// Packed `cmd.cfn` tags, valid where `live`.
    cfns: Vec<u64>,
    /// Packed `cmd.pfn` tags, valid where `live`.
    pfns: Vec<u64>,
    /// Packed allocation sequence numbers, valid where `live`.
    seqs: Vec<u64>,
    buffers_free: usize,
    seq: u64,
    /// Transfers bound for the on-package DRAM.
    pub to_hbm: VecDeque<DramRequest>,
    /// Transfers bound for the off-package DRAM.
    pub to_ddr: VecDeque<DramRequest>,
    /// Demand responses: `(ready_at, arrival, resp, core)`.
    responses: Vec<(Cycle, Cycle, MemResp, CoreId)>,
    completed: Vec<CompletedCopy>,
    scratch: Vec<SubEntry<DcAccessReq>>,
}

impl Backend {
    /// Build back-end `id` with configuration `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `pcshrs`, `buffers` or `sub_entries` is zero, or if
    /// `pcshrs` exceeds 64 (the occupancy words are single `u64`s).
    pub fn new(id: usize, cfg: BackendConfig) -> Self {
        assert!(cfg.pcshrs > 0 && cfg.buffers > 0 && cfg.sub_entries > 0);
        assert!(cfg.pcshrs <= 64, "at most 64 PCSHRs per back-end");
        Backend {
            id,
            slots: (0..cfg.pcshrs).map(|_| None).collect(),
            live: 0,
            fill: 0,
            has_buffer: 0,
            cfns: vec![0; cfg.pcshrs],
            pfns: vec![0; cfg.pcshrs],
            seqs: vec![0; cfg.pcshrs],
            buffers_free: cfg.buffers,
            seq: 0,
            to_hbm: VecDeque::new(),
            to_ddr: VecDeque::new(),
            responses: Vec::new(),
            completed: Vec::new(),
            scratch: Vec::new(),
            cfg,
        }
    }

    /// Mask with one bit per configured PCSHR.
    #[inline]
    fn width_mask(&self) -> u64 {
        u64::MAX >> (64 - self.cfg.pcshrs)
    }

    /// Interface register: accept a command if a PCSHR is free. A
    /// `false` return models the interface staying *busy* — the
    /// front-end must keep retrying (paper §III-D.1).
    pub fn try_send(&mut self, cmd: CopyCommand) -> bool {
        // First clear bit == the old `position(Option::is_none)`.
        let free = !self.live & self.width_mask();
        if free == 0 {
            return false;
        }
        let idx = free.trailing_zeros() as usize;
        let buffer = if self.buffers_free > 0 {
            self.buffers_free -= 1;
            Some(0) // buffer identity is immaterial; only the count matters
        } else {
            None
        };
        self.seq += 1;
        let bit = 1u64 << idx;
        self.live |= bit;
        if cmd.kind == CopyKind::Fill {
            self.fill |= bit;
        } else {
            self.fill &= !bit;
        }
        if buffer.is_some() {
            self.has_buffer |= bit;
        } else {
            self.has_buffer &= !bit;
        }
        self.cfns[idx] = cmd.cfn.0;
        self.pfns[idx] = cmd.pfn.0;
        self.seqs[idx] = self.seq;
        self.slots[idx] = Some(Pcshr::new(cmd, buffer));
        true
    }

    /// Whether any PCSHR is free (the interface's idle state).
    pub fn interface_idle(&self) -> bool {
        self.live != self.width_mask()
    }

    /// Active commands.
    pub fn active(&self) -> usize {
        self.live.count_ones() as usize
    }

    /// Whether `cfn` has an in-flight copy (fill or writeback); the
    /// eviction daemon must skip such frames.
    pub fn busy_cfn(&self, cfn: Cfn) -> bool {
        let mut m = self.live;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if self.cfns[i] == cfn.0 {
                return true;
            }
            m &= m - 1;
        }
        false
    }

    fn find_fill(&self, cfn: Cfn) -> Option<usize> {
        let mut m = self.live & self.fill;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if self.cfns[i] == cfn.0 {
                return Some(i);
            }
            m &= m - 1;
        }
        None
    }

    fn find_wb(&self, pfn: Pfn) -> Option<usize> {
        let mut m = self.live & !self.fill;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if self.pfns[i] == pfn.0 {
                return Some(i);
            }
            m &= m - 1;
        }
        None
    }

    /// Data-hit verification (paper §III-D.3): compare the access
    /// against PCSHR tags; on a match, service/park/absorb it.
    pub fn check_access(&mut self, req: DcAccessReq, now: Cycle) -> AccessCheck {
        let idx = match req.target {
            MemTarget::DramCache => self.find_fill(Cfn(req.addr.page())),
            MemTarget::OffPackage => self.find_wb(Pfn(req.addr.page())),
        };
        let Some(idx) = idx else {
            return AccessCheck::NoMatch;
        };
        let buffer_latency = self.cfg.buffer_latency;
        let max_entries = self.cfg.sub_entries;
        let slot = self.slots[idx].as_mut().expect("matched slot");
        let sub = req.addr.sub_block();
        if req.kind.is_write() {
            if slot.buffer.is_some() {
                slot.absorb_write(sub);
                // Store-to-load forwarding: reads parked on this
                // sub-block are serviced from the freshly written
                // buffer data.
                let mut drained = Vec::new();
                slot.take_sub_entries(sub, &mut drained);
                for e in drained {
                    if !e.payload.kind.is_write() {
                        self.responses.push((
                            now + buffer_latency,
                            e.arrival,
                            MemResp {
                                token: e.payload.token,
                                addr: e.payload.addr,
                                kind: e.payload.kind,
                                core: e.payload.core,
                            },
                            e.payload.core,
                        ));
                    }
                }
                return AccessCheck::Absorbed;
            }
            // No buffer yet (area-optimized design): park the store.
            if slot.sub_entries.len() >= max_entries {
                return AccessCheck::Retry;
            }
            slot.sub_entries.push(SubEntry {
                sub,
                arrival: now,
                payload: req,
            });
            return AccessCheck::Parked;
        }
        if slot.in_buffer & sub.bit() != 0 {
            self.responses.push((
                now + buffer_latency,
                now,
                MemResp {
                    token: req.token,
                    addr: req.addr,
                    kind: req.kind,
                    core: req.core,
                },
                req.core,
            ));
            return AccessCheck::Serviced;
        }
        if slot.sub_entries.len() >= max_entries {
            return AccessCheck::Retry;
        }
        slot.sub_entries.push(SubEntry {
            sub,
            arrival: now,
            payload: req,
        });
        AccessCheck::Parked
    }

    /// Issue transfers for this cycle.
    pub fn tick(&mut self, _now: Cycle) {
        // 1. Area-optimized design: hand free buffers to the oldest
        //    buffer-less PCSHRs (minimum packed seq over the live,
        //    buffer-less occupancy bits).
        while self.buffers_free > 0 {
            let mut m = self.live & !self.has_buffer;
            let mut next: Option<usize> = None;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                if next.is_none_or(|b| self.seqs[i] < self.seqs[b]) {
                    next = Some(i);
                }
                m &= m - 1;
            }
            let Some(idx) = next else { break };
            self.buffers_free -= 1;
            self.has_buffer |= 1u64 << idx;
            let buffer_latency = self.cfg.buffer_latency;
            let slot = self.slots[idx].as_mut().expect("live");
            slot.buffer = Some(0);
            // Absorb stores that were parked awaiting the buffer.
            let mut i = 0;
            while i < slot.sub_entries.len() {
                if slot.sub_entries[i].payload.kind.is_write() {
                    let e = slot.sub_entries.swap_remove(i);
                    slot.absorb_write(e.sub);
                } else {
                    i += 1;
                }
            }
            // Parked reads whose sub-block an absorbed store just made
            // buffer-resident are serviced (store-to-load forwarding).
            let mut i = 0;
            while i < slot.sub_entries.len() {
                let e = slot.sub_entries[i];
                if slot.in_buffer & e.sub.bit() != 0 {
                    slot.sub_entries.swap_remove(i);
                    self.responses.push((
                        _now + buffer_latency,
                        e.arrival,
                        MemResp {
                            token: e.payload.token,
                            addr: e.payload.addr,
                            kind: e.payload.kind,
                            core: e.payload.core,
                        },
                        e.payload.core,
                    ));
                } else {
                    i += 1;
                }
            }
        }

        // 2. Issue source reads and destination writes, bounded per
        //    cycle; queues are bounded to avoid unbounded growth when a
        //    device is saturated. Only slots that are live and hold a
        //    buffer can transfer — walk exactly those bits.
        let mut active = self.live & self.has_buffer;
        while active != 0 {
            let idx = active.trailing_zeros() as usize;
            active &= active - 1;
            let slot = self.slots[idx].as_ref().expect("live");
            let kind = slot.cmd.kind;
            for _ in 0..self.cfg.reads_per_tick {
                let q = match kind {
                    CopyKind::Fill => &self.to_ddr,
                    CopyKind::Writeback => &self.to_hbm,
                };
                if q.len() >= 64 {
                    break;
                }
                let slot = self.slots[idx].as_mut().expect("live");
                let Some(sub) = slot.next_read() else { break };
                slot.read_issued |= sub.bit();
                let (addr, class, q) = match kind {
                    CopyKind::Fill => (
                        slot.cmd.pfn.base().raw() + sub.page_offset().0,
                        TrafficClass::Fill,
                        &mut self.to_ddr,
                    ),
                    CopyKind::Writeback => (
                        slot.cmd.cfn.base().raw() + sub.page_offset().0,
                        TrafficClass::Writeback,
                        &mut self.to_hbm,
                    ),
                };
                q.push_back(DramRequest {
                    token: ReqId(copy_token(self.id, false, idx, sub)),
                    addr,
                    kind: AccessKind::Read,
                    class,
                    wants_completion: true,
                    probe: nomad_dram::Probe::Data,
                });
            }
            for _ in 0..self.cfg.writes_per_tick {
                let q = match kind {
                    CopyKind::Fill => &self.to_hbm,
                    CopyKind::Writeback => &self.to_ddr,
                };
                if q.len() >= 64 {
                    break;
                }
                let slot = self.slots[idx].as_mut().expect("live");
                let Some(sub) = slot.next_write() else { break };
                slot.write_sent(sub);
                let (addr, class, q) = match kind {
                    CopyKind::Fill => (
                        slot.cmd.cfn.base().raw() + sub.page_offset().0,
                        TrafficClass::Fill,
                        &mut self.to_hbm,
                    ),
                    CopyKind::Writeback => (
                        slot.cmd.pfn.base().raw() + sub.page_offset().0,
                        TrafficClass::Writeback,
                        &mut self.to_ddr,
                    ),
                };
                q.push_back(DramRequest {
                    token: ReqId(copy_token(self.id, true, idx, sub)),
                    addr,
                    kind: AccessKind::Write,
                    class,
                    wants_completion: true,
                    probe: nomad_dram::Probe::Data,
                });
            }
        }
    }

    /// Deliver a copy-traffic DRAM completion (decoded from its token).
    pub fn on_copy_completion(
        &mut self,
        is_write: bool,
        slot_idx: usize,
        sub: SubBlockIdx,
        now: Cycle,
    ) {
        let Some(slot) = self.slots.get_mut(slot_idx).and_then(Option::as_mut) else {
            return; // stale completion for a retired slot
        };
        if is_write {
            slot.write_done(sub);
            if slot.complete() {
                let p = self.slots[slot_idx].take().expect("checked");
                debug_assert!(
                    p.sub_entries.is_empty(),
                    "entries must drain before completion"
                );
                let bit = 1u64 << slot_idx;
                self.live &= !bit;
                self.fill &= !bit;
                self.has_buffer &= !bit;
                self.buffers_free += 1;
                self.completed.push(CompletedCopy {
                    kind: p.cmd.kind,
                    pfn: p.cmd.pfn,
                    cfn: p.cmd.cfn,
                });
            }
        } else {
            self.scratch.clear();
            slot.read_done(sub, &mut self.scratch);
            let buffer_latency = self.cfg.buffer_latency;
            for e in self.scratch.drain(..) {
                if e.payload.kind.is_write() {
                    // A parked store: absorb now that the buffer holds
                    // the block (its data overwrites the fetched one).
                    self.slots[slot_idx]
                        .as_mut()
                        .expect("live")
                        .absorb_write(e.sub);
                } else {
                    self.responses.push((
                        now + buffer_latency,
                        e.arrival,
                        MemResp {
                            token: e.payload.token,
                            addr: e.payload.addr,
                            kind: e.payload.kind,
                            core: e.payload.core,
                        },
                        e.payload.core,
                    ));
                }
            }
        }
    }

    /// Pop demand responses that became ready by `now`; yields
    /// `(arrival, resp)` so the caller can record DC access time.
    pub fn pop_ready_responses(&mut self, now: Cycle, out: &mut Vec<(Cycle, MemResp)>) {
        let mut i = 0;
        while i < self.responses.len() {
            if self.responses[i].0 <= now {
                let (_, arrival, resp, _) = self.responses.swap_remove(i);
                out.push((arrival, resp));
            } else {
                i += 1;
            }
        }
    }

    /// Drain completed page copies.
    pub fn take_completed(&mut self, out: &mut Vec<CompletedCopy>) {
        out.append(&mut self.completed);
    }

    /// Earliest cycle strictly after `now` at which a
    /// [`tick`](Self::tick) could make progress, or `None` while the
    /// back-end is idle (same contract as
    /// [`nomad_types::NextActivity`]).
    ///
    /// A live PCSHR keeps the back-end dense only while a tick could
    /// actually act on it: undrained outbound queues, a pending buffer
    /// handoff, or an issuable source read / destination write. A slot
    /// that has issued everything and is waiting on DRAM completions
    /// is *reactive* — `on_copy_completion` is a poke, and the system
    /// bounds skips by the busy device's own edges. With no copies in
    /// flight only the timed demand responses remain.
    pub fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        if !self.to_hbm.is_empty() || !self.to_ddr.is_empty() || !self.completed.is_empty() {
            return Some(now + 1);
        }
        if self.buffers_free > 0 && self.live & !self.has_buffer != 0 {
            return Some(now + 1);
        }
        let mut m = self.live & self.has_buffer;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            let p = self.slots[i].as_ref().expect("live");
            if p.next_read().is_some() || p.next_write().is_some() {
                return Some(now + 1);
            }
            m &= m - 1;
        }
        self.responses
            .iter()
            .map(|&(ready, _, _, _)| ready.max(now + 1))
            .min()
    }

    /// Whether this back-end has no active work (for drain loops).
    pub fn is_idle(&self) -> bool {
        self.active() == 0
            && self.to_hbm.is_empty()
            && self.to_ddr.is_empty()
            && self.responses.is_empty()
            && self.completed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_types::BlockAddr;

    fn fill_cmd(pfn: u64, cfn: u64, prio: Option<u8>) -> CopyCommand {
        CopyCommand {
            kind: CopyKind::Fill,
            pfn: Pfn(pfn),
            cfn: Cfn(cfn),
            priority: prio.map(SubBlockIdx),
        }
    }

    fn dc_read(token: u64, cfn: u64, sub: u8) -> DcAccessReq {
        DcAccessReq {
            token: ReqId(token),
            addr: BlockAddr(cfn * 64 + sub as u64),
            target: MemTarget::DramCache,
            kind: AccessKind::Read,
            core: 0,
            wants_response: true,
        }
    }

    /// Run the backend against perfect (instant) DRAM: every queued
    /// transfer completes next cycle.
    fn run_instant(b: &mut Backend, cycles: Cycle) {
        for now in 0..cycles {
            b.tick(now);
            let mut reqs: Vec<_> = b.to_hbm.drain(..).collect();
            reqs.extend(b.to_ddr.drain(..));
            for r in reqs {
                let (_, is_write, slot, sub) = decode_copy_token(r.token);
                b.on_copy_completion(is_write, slot, sub, now);
            }
        }
    }

    #[test]
    fn interface_busy_when_pcshrs_full() {
        let mut b = Backend::new(
            0,
            BackendConfig {
                pcshrs: 2,
                buffers: 2,
                ..Default::default()
            },
        );
        assert!(b.try_send(fill_cmd(1, 10, None)));
        assert!(b.try_send(fill_cmd(2, 11, None)));
        assert!(!b.interface_idle());
        assert!(!b.try_send(fill_cmd(3, 12, None)), "interface busy");
    }

    #[test]
    fn fill_completes_and_frees_pcshr() {
        let mut b = Backend::new(0, BackendConfig::default());
        b.try_send(fill_cmd(1, 10, Some(5)));
        run_instant(&mut b, 200);
        let mut done = Vec::new();
        b.take_completed(&mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].cfn, Cfn(10));
        assert_eq!(done[0].kind, CopyKind::Fill);
        assert!(b.interface_idle());
        assert!(b.is_idle());
    }

    #[test]
    fn data_hit_when_no_pcshr_matches() {
        let mut b = Backend::new(0, BackendConfig::default());
        b.try_send(fill_cmd(1, 10, None));
        assert_eq!(b.check_access(dc_read(1, 99, 0), 0), AccessCheck::NoMatch);
    }

    #[test]
    fn data_miss_parks_then_services_on_arrival() {
        let mut b = Backend::new(0, BackendConfig::default());
        b.try_send(fill_cmd(1, 10, None));
        assert_eq!(b.check_access(dc_read(1, 10, 7), 0), AccessCheck::Parked);
        run_instant(&mut b, 200);
        let mut out = Vec::new();
        b.pop_ready_responses(1_000_000, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.token, ReqId(1));
    }

    #[test]
    fn buffer_hit_after_sub_block_arrives() {
        let mut b = Backend::new(0, BackendConfig::default());
        b.try_send(fill_cmd(1, 10, Some(3)));
        // Let the critical block transfer.
        for now in 0..4 {
            b.tick(now);
            let mut reqs: Vec<_> = b.to_hbm.drain(..).collect();
            reqs.extend(b.to_ddr.drain(..));
            for r in reqs {
                let (_, w, s, sub) = decode_copy_token(r.token);
                if !w {
                    b.on_copy_completion(w, s, sub, now);
                }
            }
        }
        assert_eq!(b.check_access(dc_read(2, 10, 3), 10), AccessCheck::Serviced);
        let mut out = Vec::new();
        b.pop_ready_responses(10 + 10, &mut out);
        assert_eq!(out.len(), 1, "served from the page copy buffer");
    }

    #[test]
    fn stores_absorb_into_buffer() {
        let mut b = Backend::new(0, BackendConfig::default());
        b.try_send(fill_cmd(1, 10, None));
        let w = DcAccessReq {
            kind: AccessKind::Write,
            wants_response: false,
            ..dc_read(5, 10, 9)
        };
        assert_eq!(b.check_access(w, 0), AccessCheck::Absorbed);
        run_instant(&mut b, 300);
        let mut done = Vec::new();
        b.take_completed(&mut done);
        assert_eq!(done.len(), 1, "copy still completes");
    }

    #[test]
    fn sub_entry_exhaustion_forces_retry() {
        let cfg = BackendConfig {
            sub_entries: 2,
            ..Default::default()
        };
        let mut b = Backend::new(0, cfg);
        b.try_send(fill_cmd(1, 10, None));
        assert_eq!(b.check_access(dc_read(1, 10, 1), 0), AccessCheck::Parked);
        assert_eq!(b.check_access(dc_read(2, 10, 2), 0), AccessCheck::Parked);
        assert_eq!(b.check_access(dc_read(3, 10, 3), 0), AccessCheck::Retry);
    }

    #[test]
    fn writeback_lookup_is_by_pfn() {
        let mut b = Backend::new(0, BackendConfig::default());
        b.try_send(CopyCommand {
            kind: CopyKind::Writeback,
            pfn: Pfn(42),
            cfn: Cfn(7),
            priority: None,
        });
        let r = DcAccessReq {
            token: ReqId(1),
            addr: BlockAddr(42 * 64 + 3),
            target: MemTarget::OffPackage,
            kind: AccessKind::Read,
            core: 0,
            wants_response: true,
        };
        assert_eq!(b.check_access(r, 0), AccessCheck::Parked);
        run_instant(&mut b, 300);
        let mut done = Vec::new();
        b.take_completed(&mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, CopyKind::Writeback);
        let mut out = Vec::new();
        b.pop_ready_responses(1_000_000, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn decoupled_buffers_defer_transfers() {
        let cfg = BackendConfig {
            pcshrs: 4,
            buffers: 1,
            ..Default::default()
        };
        let mut b = Backend::new(0, cfg);
        assert!(b.try_send(fill_cmd(1, 10, None)));
        assert!(
            b.try_send(fill_cmd(2, 11, None)),
            "PCSHR free even without buffer"
        );
        // Only the first command can transfer until its buffer frees.
        b.tick(0);
        let first_wave: Vec<_> = b.to_ddr.drain(..).collect();
        assert!(first_wave.iter().all(|r| decode_copy_token(r.token).2 == 0));
        // Deliver the drained reads so the first command can finish.
        for r in first_wave {
            let (_, w, slot, sub) = decode_copy_token(r.token);
            b.on_copy_completion(w, slot, sub, 0);
        }
        run_instant(&mut b, 400);
        let mut done = Vec::new();
        b.take_completed(&mut done);
        assert_eq!(done.len(), 2, "second command ran after buffer handoff");
    }

    #[test]
    fn busy_cfn_guards_eviction() {
        let mut b = Backend::new(0, BackendConfig::default());
        b.try_send(fill_cmd(1, 10, None));
        assert!(b.busy_cfn(Cfn(10)));
        assert!(!b.busy_cfn(Cfn(11)));
    }

    #[test]
    fn token_round_trip() {
        for (be, w, slot, sub) in [
            (0usize, false, 0usize, 0u8),
            (5, true, 1023, 63),
            (15, false, 7, 31),
        ] {
            let t = ReqId(copy_token(be, w, slot, SubBlockIdx(sub)));
            assert!(is_copy_token(t));
            assert_eq!(decode_copy_token(t), (be, w, slot, SubBlockIdx(sub)));
        }
    }
}
