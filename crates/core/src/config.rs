//! NOMAD/TDC scheme configuration.

use crate::backend::BackendConfig;
use nomad_types::{Cycle, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Selective caching policy (paper §V: NOMAD, being OS-managed, "can
/// flexibly utilize various selective caching mechanisms" — unlike
/// HW-based designs whose admission logic is baked into silicon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CachingPolicy {
    /// Cache every cacheable page on first touch (the paper's
    /// evaluation configuration).
    #[default]
    Always,
    /// Admit a page only on its *second* tag miss: single-touch
    /// streaming pages bypass the cache and are served off-package,
    /// saving fill bandwidth for pages with reuse.
    SecondTouch,
}

/// Configuration of the [`crate::NomadScheme`] (both the NOMAD and TDC
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NomadConfig {
    /// On-package DRAM-cache capacity in bytes.
    pub capacity_bytes: u64,
    /// PCSHRs per back-end (the paper sweeps 1–32, Figs. 12–14).
    pub pcshrs: usize,
    /// Page copy buffers per back-end; `None` couples one buffer to
    /// every PCSHR, `Some(m)` models the area-optimized design of
    /// §IV-B.7 (Fig. 15).
    pub buffers: Option<usize>,
    /// Sub-entries per PCSHR.
    pub sub_entries: usize,
    /// Number of back-ends: 1 = centralized, >1 = distributed by CFN
    /// (§III-F, Fig. 16).
    pub backends: usize,
    /// Minimum DC tag-management latency in CPU cycles; the paper
    /// conservatively uses 400 (two serialized on-package CPD reads
    /// plus synchronization, §IV-A).
    pub tag_mgmt_cycles: Cycle,
    /// Extra handler cycles per occupied frame the free-queue head had
    /// to skip (a CPD read each).
    pub probe_cost: Cycle,
    /// **Coupled** miss handling: the faulting core stays stalled until
    /// the page fill completes. `true` reproduces TDC; `false` is
    /// NOMAD's decoupled management.
    pub blocking: bool,
    /// Whether tag-miss handling is a global critical section (one CPU
    /// at a time — NOMAD's `cache_frame_management_mutex`). TDC locks
    /// only the critical PTEs, so its handlers run in parallel.
    pub serialized_handler: bool,
    /// Free-frame threshold that arms the background eviction daemon.
    pub eviction_threshold: usize,
    /// Frames reclaimed per daemon run (`n` in Algorithm 2; a power of
    /// two for flush alignment).
    pub eviction_batch: usize,
    /// Daemon cost per evicted page (PTE restore via reverse mapping,
    /// CPD update).
    pub evict_page_cost: Cycle,
    /// Daemon base cost per batch (`flush_cache_range`, flag handling).
    pub evict_batch_cost: Cycle,
    /// Latency of servicing a read from a page copy buffer.
    pub buffer_latency: Cycle,
    /// Enable critical-data-first scheduling (PI priority); disabling
    /// it is an ablation, not a paper configuration.
    pub critical_data_first: bool,
    /// Page-admission policy.
    pub policy: CachingPolicy,
}

impl NomadConfig {
    /// The paper's NOMAD configuration over a DRAM cache of
    /// `capacity_bytes`.
    pub fn nomad(capacity_bytes: u64) -> Self {
        let frames = (capacity_bytes / PAGE_SIZE).max(64) as usize;
        NomadConfig {
            capacity_bytes,
            pcshrs: 16,
            buffers: None,
            sub_entries: 4,
            backends: 1,
            tag_mgmt_cycles: 400,
            probe_cost: 2,
            blocking: false,
            serialized_handler: true,
            eviction_threshold: (frames / 16).max(32),
            eviction_batch: 256,
            evict_page_cost: 20,
            evict_batch_cost: 200,
            buffer_latency: 10,
            critical_data_first: true,
            policy: CachingPolicy::Always,
        }
    }

    /// The paper's TDC model: the NOMAD front-end with *coupled*
    /// (blocking) miss handling, per-PTE locking (parallel handlers,
    /// no extra critical-section penalty) and one copy engine per
    /// potential concurrent copy.
    pub fn tdc(capacity_bytes: u64, cores: usize) -> Self {
        NomadConfig {
            blocking: true,
            serialized_handler: false,
            // One in-flight blocking copy per core suffices; headroom
            // for the eviction daemon's writebacks.
            pcshrs: (2 * cores).max(8),
            ..Self::nomad(capacity_bytes)
        }
    }

    /// Number of 4 KiB cache frames.
    pub fn frames(&self) -> usize {
        (self.capacity_bytes / PAGE_SIZE).max(64) as usize
    }

    /// Per-back-end configuration.
    pub fn backend_config(&self) -> BackendConfig {
        BackendConfig {
            pcshrs: self.pcshrs,
            buffers: self.buffers.unwrap_or(self.pcshrs),
            sub_entries: self.sub_entries,
            buffer_latency: self.buffer_latency,
            reads_per_tick: 2,
            writes_per_tick: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nomad_defaults_match_paper() {
        let c = NomadConfig::nomad(64 << 20);
        assert_eq!(c.tag_mgmt_cycles, 400);
        assert!(!c.blocking);
        assert!(c.serialized_handler);
        assert_eq!(c.backend_config().buffers, c.pcshrs, "coupled buffers");
        assert_eq!(c.frames(), 16384);
    }

    #[test]
    fn tdc_is_blocking_and_parallel() {
        let c = NomadConfig::tdc(64 << 20, 8);
        assert!(c.blocking);
        assert!(!c.serialized_handler);
        assert!(c.pcshrs >= 8);
    }

    #[test]
    fn area_optimized_decouples_buffers() {
        let mut c = NomadConfig::nomad(64 << 20);
        c.pcshrs = 32;
        c.buffers = Some(8);
        let b = c.backend_config();
        assert_eq!(b.pcshrs, 32);
        assert_eq!(b.buffers, 8);
    }
}
