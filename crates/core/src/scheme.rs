//! [`NomadScheme`]: the complete NOMAD (and TDC) DRAM-cache scheme,
//! wiring the front-end OS routines to the back-end hardware and both
//! DRAM devices.

use crate::backend::{
    decode_copy_token, is_copy_token, AccessCheck, Backend, CompletedCopy, CopyCommand, CopyKind,
};
use crate::config::{CachingPolicy, NomadConfig};
use crate::frontend::{BackendCtl, Frontend, FrontendConfig, FrontendEvents};
use nomad_cache::{FrameKind, TlbEntry};
use nomad_cpu::OsStallReason;
use nomad_dcache::{
    CacheFlush, DcAccessReq, DcScheme, DemandPath, SchemeEvents, SchemeStats, WalkOutcome,
};
use nomad_dram::Dram;
use nomad_obs::{Gauge, Registry, Span, SpanRing, TRACK_EVICT, TRACK_FILL, TRACK_WRITEBACK};
use nomad_types::{
    AccessKind, Cfn, CoreId, Cycle, MemResp, MemTarget, SubBlockIdx, TrafficClass, Vpn, PAGE_SIZE,
};
use std::collections::{HashMap, HashSet, VecDeque};

const HBM_DEMAND_TAG: u64 = 1 << 56;
const DDR_DEMAND_TAG: u64 = 2 << 56;

/// Routes interface commands to back-ends: by CFN in the distributed
/// organization, trivially in the centralized one.
struct BackendsView<'a> {
    backends: &'a mut [Backend],
    /// Copy commands accepted this tick, logged for the tracing layer
    /// (`None` unless obs is attached).
    issued: Option<&'a mut Vec<CopyCommand>>,
}

impl BackendsView<'_> {
    fn index(&self, cfn: Cfn) -> usize {
        (cfn.raw() % self.backends.len() as u64) as usize
    }
}

impl BackendCtl for BackendsView<'_> {
    fn try_send(&mut self, cmd: CopyCommand) -> bool {
        let idx = self.index(cmd.cfn);
        let sent = self.backends[idx].try_send(cmd);
        if sent {
            if let Some(issued) = self.issued.as_deref_mut() {
                issued.push(cmd);
            }
        }
        sent
    }

    fn busy_cfn(&self, cfn: Cfn) -> bool {
        self.backends[self.index(cfn)].busy_cfn(cfn)
    }
}

/// Observability state for the scheme: gauges over the PCSHR back-end
/// plus fill/writeback/eviction spans for the Chrome-trace exporter.
struct SchemeObs {
    pcshr_occupancy: Gauge,
    free_frames: Gauge,
    retry_depth: Gauge,
    ring: SpanRing,
    /// Issue cycle of each in-flight copy, keyed by
    /// `(is_writeback, cfn)` — unique while the copy is active because
    /// a back-end refuses a second command for a busy CFN.
    copy_started: HashMap<(bool, u64), Cycle>,
    /// Scratch for commands accepted during the current front-end tick.
    issued: Vec<CopyCommand>,
}

/// The NOMAD non-blocking OS-managed DRAM cache — or, with
/// [`NomadConfig::tdc`], the blocking TDC comparison scheme.
pub struct NomadScheme {
    cfg: NomadConfig,
    frontend: Frontend,
    backends: Vec<Backend>,
    hbm_demand: DemandPath,
    ddr_demand: DemandPath,
    /// Accesses refused by full PCSHR sub-entries, retried in order.
    retry: VecDeque<(DcAccessReq, Cycle)>,
    /// Cores suspended per faulting VPN (woken at handler completion
    /// for NOMAD, moved to `fill_waiters` for TDC).
    vpn_waiters: HashMap<u64, Vec<CoreId>>,
    /// TDC: cores suspended until their page fill completes.
    fill_waiters: HashMap<u64, Vec<CoreId>>,
    /// TDC: fills that completed before the handler event was
    /// processed.
    early_fills: HashSet<u64>,
    fe_events: FrontendEvents,
    /// SecondTouch policy state: pages seen exactly once (bounded).
    touched_once: HashSet<u64>,
    completed_scratch: Vec<CompletedCopy>,
    evict_scratch: Vec<nomad_dcache::EvictCandidate>,
    resp_scratch: Vec<(Cycle, MemResp)>,
    dram_scratch: Vec<nomad_dram::DramCompletion>,
    stats: SchemeStats,
    name: &'static str,
    obs: Option<SchemeObs>,
}

impl core::fmt::Debug for NomadScheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NomadScheme")
            .field("name", &self.name)
            .field("backends", &self.backends.len())
            .finish_non_exhaustive()
    }
}

impl NomadScheme {
    /// Build a scheme from `cfg`; named NOMAD or TDC by its blocking
    /// flag.
    pub fn new(cfg: NomadConfig) -> Self {
        assert!(cfg.backends >= 1 && cfg.backends <= 16, "1–16 back-ends");
        let backends = (0..cfg.backends)
            .map(|i| Backend::new(i, cfg.backend_config()))
            .collect();
        NomadScheme {
            frontend: Frontend::new(FrontendConfig::from(&cfg), cfg.frames()),
            backends,
            hbm_demand: DemandPath::with_tag(HBM_DEMAND_TAG),
            ddr_demand: DemandPath::with_tag(DDR_DEMAND_TAG),
            retry: VecDeque::new(),
            vpn_waiters: HashMap::new(),
            fill_waiters: HashMap::new(),
            early_fills: HashSet::new(),
            fe_events: FrontendEvents::default(),
            touched_once: HashSet::new(),
            completed_scratch: Vec::new(),
            evict_scratch: Vec::new(),
            resp_scratch: Vec::new(),
            dram_scratch: Vec::new(),
            stats: SchemeStats::default(),
            name: if cfg.blocking { "TDC" } else { "NOMAD" },
            obs: None,
            cfg,
        }
    }

    /// The paper's NOMAD configuration over `capacity_bytes`.
    pub fn nomad(capacity_bytes: u64) -> Self {
        Self::new(NomadConfig::nomad(capacity_bytes))
    }

    /// The paper's TDC model over `capacity_bytes` for `cores` CPUs.
    pub fn tdc(capacity_bytes: u64, cores: usize) -> Self {
        Self::new(NomadConfig::tdc(capacity_bytes, cores))
    }

    /// Scheme configuration.
    pub fn cfg(&self) -> &NomadConfig {
        &self.cfg
    }

    /// Front-end access (page table, frames) for setup and tests.
    pub fn frontend_mut(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    fn backend_for_cfn(&mut self, cfn: Cfn) -> &mut Backend {
        let idx = (cfn.raw() % self.backends.len() as u64) as usize;
        &mut self.backends[idx]
    }

    /// Try to place a demand access; returns `false` if it must retry
    /// (PCSHR sub-entries full).
    fn place_access(&mut self, req: DcAccessReq, now: Cycle) -> bool {
        match req.target {
            MemTarget::DramCache => {
                if req.kind.is_write() {
                    // Dirty-in-cache bit (set without extra overhead,
                    // like conventional PTE dirty bits).
                    self.frontend.frames_mut().set_dirty(Cfn(req.addr.page()));
                }
                let check = self
                    .backend_for_cfn(Cfn(req.addr.page()))
                    .check_access(req, now);
                match check {
                    AccessCheck::NoMatch => {
                        self.stats.dc_data_hits.inc();
                        let class = if req.kind.is_write() {
                            TrafficClass::DemandWrite
                        } else {
                            TrafficClass::DemandRead
                        };
                        self.hbm_demand.submit(req, req.addr.base(), class, now);
                        true
                    }
                    AccessCheck::Serviced => {
                        self.stats.data_misses.inc();
                        self.stats.buffer_hits.inc();
                        true
                    }
                    AccessCheck::Absorbed => {
                        self.stats.data_misses.inc();
                        self.stats.buffer_hits.inc();
                        true
                    }
                    AccessCheck::Parked => {
                        self.stats.data_misses.inc();
                        true
                    }
                    AccessCheck::Retry => false,
                }
            }
            MemTarget::OffPackage => {
                // Check in-flight writebacks across all back-ends.
                let mut outcome = AccessCheck::NoMatch;
                for b in &mut self.backends {
                    match b.check_access(req, now) {
                        AccessCheck::NoMatch => continue,
                        other => {
                            outcome = other;
                            break;
                        }
                    }
                }
                match outcome {
                    AccessCheck::NoMatch => {
                        self.stats.offpkg_demand.inc();
                        let class = if req.kind.is_write() {
                            TrafficClass::DemandWrite
                        } else {
                            TrafficClass::DemandRead
                        };
                        self.ddr_demand.submit(req, req.addr.base(), class, now);
                        true
                    }
                    AccessCheck::Retry => false,
                    AccessCheck::Serviced | AccessCheck::Absorbed => {
                        self.stats.data_misses.inc();
                        self.stats.buffer_hits.inc();
                        true
                    }
                    AccessCheck::Parked => {
                        self.stats.data_misses.inc();
                        true
                    }
                }
            }
        }
    }
}

impl DcScheme for NomadScheme {
    fn name(&self) -> &'static str {
        self.name
    }

    fn walk(
        &mut self,
        core: CoreId,
        vpn: Vpn,
        sub: SubBlockIdx,
        kind: AccessKind,
        now: Cycle,
    ) -> WalkOutcome {
        let pte = *self.frontend.page_table_mut().pte_mut(vpn);
        if pte.noncacheable || pte.cached() {
            if kind.is_write() {
                let pte_mut = self.frontend.page_table_mut().pte_mut(vpn);
                pte_mut.dirty = true;
                if let FrameKind::Cache(cfn) = pte_mut.frame {
                    self.frontend.frames_mut().set_dirty(cfn);
                }
            }
            return WalkOutcome::Ready {
                entry: TlbEntry {
                    vpn,
                    frame: pte.frame,
                    noncacheable: pte.noncacheable,
                },
            };
        }
        // DC tag miss: cacheable but not cached.
        let pfn = match pte.frame {
            FrameKind::Phys(p) => p,
            FrameKind::Cache(_) => unreachable!("handled above"),
        };
        // Selective caching: a SecondTouch policy lets single-touch
        // pages bypass the cache entirely (no handler, no stall, no
        // fill) and be served off-package like an NC page.
        if self.cfg.policy == CachingPolicy::SecondTouch
            && !self.frontend.vpn_pending(vpn)
            && self.touched_once.insert(vpn.raw())
        {
            if self.touched_once.len() > 1 << 20 {
                self.touched_once.clear(); // bounded epoch reset
            }
            self.stats.policy_bypasses.inc();
            return WalkOutcome::Ready {
                entry: TlbEntry {
                    vpn,
                    frame: pte.frame,
                    noncacheable: pte.noncacheable,
                },
            };
        }
        if self
            .frontend
            .note_tag_miss(core, vpn, pfn, sub, kind.is_write(), now)
        {
            self.stats.tag_misses.inc();
        }
        self.vpn_waiters.entry(vpn.raw()).or_default().push(core);
        WalkOutcome::Blocked {
            reason: if self.cfg.blocking {
                OsStallReason::BlockingFill
            } else {
                OsStallReason::TagMiss
            },
        }
    }

    fn prewarm(&mut self, _core: CoreId, vpn: Vpn, dirty: bool) {
        let pte = *self.frontend.page_table_mut().pte_mut(vpn);
        if !pte.tag_miss() {
            return;
        }
        let FrameKind::Phys(pfn) = pte.frame else {
            return;
        };
        if self.frontend.frames().num_free() == 0 {
            let mut evicted = std::mem::take(&mut self.evict_scratch);
            evicted.clear();
            self.frontend
                .frames_mut()
                .evict_batch_into(64, &mut evicted);
            for e in &evicted {
                self.frontend.page_table_mut().uncache_all(e.cpd.pfn);
            }
            self.evict_scratch = evicted;
        }
        if let Some((cfn, _)) = self.frontend.frames_mut().allocate(pfn) {
            self.frontend.page_table_mut().cache_all(pfn, cfn);
            if dirty {
                self.frontend.frames_mut().set_dirty(cfn);
            }
        }
    }

    fn free_frames(&self) -> Option<u64> {
        Some(self.frontend.frames().num_free() as u64)
    }

    fn can_accept(&self) -> bool {
        self.retry.len() < 32 && self.hbm_demand.has_room(64) && self.ddr_demand.has_room(64)
    }

    fn access(&mut self, req: DcAccessReq, now: Cycle) {
        if req.kind.is_write() {
            self.stats.demand_writes.inc();
        } else {
            self.stats.demand_reads.inc();
        }
        if !self.place_access(req, now) {
            self.stats.pcshr_full_events.inc();
            self.retry.push_back((req, now));
        }
    }

    fn tick(
        &mut self,
        now: Cycle,
        hbm: &mut Dram,
        ddr: &mut Dram,
        flush: &mut dyn CacheFlush,
        events: &mut SchemeEvents,
    ) {
        // 1. Retry sub-entry-refused accesses in order.
        while let Some((req, arrived)) = self.retry.pop_front() {
            if !self.place_access(req, arrived) {
                self.retry.push_front((req, arrived));
                break;
            }
        }

        // 2. Front-end OS routines (handlers + eviction daemon).
        self.fe_events.clear();
        {
            let mut view = BackendsView {
                backends: &mut self.backends,
                issued: self.obs.as_mut().map(|o| &mut o.issued),
            };
            self.frontend
                .tick(now, &mut view, flush, &mut self.fe_events);
        }
        if let Some(obs) = &mut self.obs {
            for cmd in obs.issued.drain(..) {
                obs.copy_started
                    .insert((cmd.kind == CopyKind::Writeback, cmd.cfn.raw()), now);
            }
            if self.fe_events.evicted > 0 {
                obs.ring.push(
                    Span::instant("evict_batch", "dcache", now, TRACK_EVICT)
                        .with_arg("pages", self.fe_events.evicted as u64),
                );
            }
        }
        self.stats.evictions.add(self.fe_events.evicted as u64);
        events.shootdowns.append(&mut self.fe_events.shootdowns);
        let blocking = self.cfg.blocking;
        for h in self.fe_events.handled.drain(..) {
            self.stats
                .tag_mgmt_latency
                .record(h.completed.saturating_sub(h.enqueued));
            self.stats.interface_wait_cycles.add(h.interface_wait);
            let waiters = self.vpn_waiters.remove(&h.vpn.raw()).unwrap_or_default();
            if blocking {
                if self.early_fills.remove(&h.cfn.raw()) {
                    events.wakes.extend(waiters);
                } else {
                    self.fill_waiters
                        .entry(h.cfn.raw())
                        .or_default()
                        .extend(waiters);
                }
            } else {
                // NOMAD: resume immediately after tag management.
                events.wakes.extend(waiters);
            }
        }

        // 3. Back-end hardware: issue copy transfers. Demand traffic
        //    drains first — page copies are bandwidth, not latency,
        //    sensitive, so demand gets the device queue slots.
        self.hbm_demand.drain(hbm);
        self.ddr_demand.drain(ddr);
        for b in &mut self.backends {
            b.tick(now);
            while let Some(r) = b.to_hbm.pop_front() {
                if let Err(back) = hbm.try_push(r) {
                    b.to_hbm.push_front(back);
                    break;
                }
            }
            while let Some(r) = b.to_ddr.pop_front() {
                if let Err(back) = ddr.try_push(r) {
                    b.to_ddr.push_front(back);
                    break;
                }
            }
        }

        // 4. Tick devices and route completions.
        let mut scratch = std::mem::take(&mut self.dram_scratch);
        scratch.clear();
        hbm.tick(&mut scratch);
        ddr.tick(&mut scratch);
        for c in scratch.drain(..) {
            if is_copy_token(c.token) {
                let (be, is_write, slot, sub) = decode_copy_token(c.token);
                if let Some(b) = self.backends.get_mut(be) {
                    b.on_copy_completion(is_write, slot, sub, now);
                }
            } else if let Some((req, arrived)) = self
                .hbm_demand
                .complete(c.token)
                .or_else(|| self.ddr_demand.complete(c.token))
            {
                self.stats
                    .dc_access_time
                    .record(now.saturating_sub(arrived));
                events.responses.push(MemResp {
                    token: req.token,
                    addr: req.addr,
                    kind: req.kind,
                    core: req.core,
                });
            }
        }
        self.dram_scratch = scratch;

        // 5. Collect back-end events: serviced data misses and
        //    completed copies.
        let mut resp = std::mem::take(&mut self.resp_scratch);
        let mut completed = std::mem::take(&mut self.completed_scratch);
        resp.clear();
        completed.clear();
        for b in &mut self.backends {
            b.pop_ready_responses(now, &mut resp);
            b.take_completed(&mut completed);
        }
        for (arrival, r) in resp.drain(..) {
            self.stats
                .dc_access_time
                .record(now.saturating_sub(arrival));
            events.responses.push(r);
        }
        for c in completed.drain(..) {
            if let Some(obs) = &mut self.obs {
                let key = (c.kind == CopyKind::Writeback, c.cfn.raw());
                if let Some(start) = obs.copy_started.remove(&key) {
                    let (label, track) = match c.kind {
                        CopyKind::Fill => ("fill", TRACK_FILL),
                        CopyKind::Writeback => ("writeback", TRACK_WRITEBACK),
                    };
                    obs.ring.push(
                        Span::complete(label, "dcache", start, now.saturating_sub(start), track)
                            .with_arg("cfn", c.cfn.raw()),
                    );
                }
            }
            match c.kind {
                CopyKind::Fill => {
                    self.stats.fills.inc();
                    self.stats.fill_bytes.add(PAGE_SIZE);
                    if blocking {
                        match self.fill_waiters.remove(&c.cfn.raw()) {
                            Some(waiters) => events.wakes.extend(waiters),
                            None => {
                                // Completed before the handler event
                                // was consumed.
                                self.early_fills.insert(c.cfn.raw());
                            }
                        }
                    }
                }
                CopyKind::Writeback => {
                    self.stats.writebacks.inc();
                    self.stats.writeback_bytes.add(PAGE_SIZE);
                }
            }
        }
        self.resp_scratch = resp;
        self.completed_scratch = completed;
    }

    fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        // Retries and queued demand drain one entry per tick; the
        // front-end and back-ends report their own timers. Tracked
        // in-flight demand reads are reactive: their completions
        // surface on DRAM device edges the system watches separately.
        if !self.retry.is_empty() || self.hbm_demand.has_queued() || self.ddr_demand.has_queued() {
            return Some(now + 1);
        }
        let mut next = self.frontend.next_activity_at(now);
        for b in &self.backends {
            next = match (next, b.next_activity_at(now)) {
                (Some(a), Some(c)) => Some(a.min(c)),
                (a, c) => a.or(c),
            };
        }
        next
    }

    fn tlb_inserted(&mut self, core: CoreId, vpn: Vpn) {
        if let Some(pte) = self.frontend.page_table().get(vpn) {
            if let FrameKind::Cache(cfn) = pte.frame {
                self.frontend.frames_mut().tlb_set(cfn, core);
            }
        }
    }

    fn tlb_departed(&mut self, core: CoreId, vpn: Vpn) {
        if let Some(pte) = self.frontend.page_table().get(vpn) {
            if let FrameKind::Cache(cfn) = pte.frame {
                self.frontend.frames_mut().tlb_clear(cfn, core);
            }
        }
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn attach_obs(&mut self, reg: &Registry, ring: &SpanRing) {
        self.obs = Some(SchemeObs {
            pcshr_occupancy: reg.gauge(
                "dcache.pcshr_occupancy",
                "entries",
                "dcache",
                "PCSHR entries tracking in-flight page copies across all back-ends",
            ),
            free_frames: reg.gauge(
                "dcache.free_frames",
                "frames",
                "dcache",
                "Cache frames on the free queue at the sample point",
            ),
            retry_depth: reg.gauge(
                "dcache.retry_depth",
                "requests",
                "dcache",
                "Demand accesses queued for retry after a PCSHR sub-entry refusal",
            ),
            ring: ring.clone(),
            copy_started: HashMap::new(),
            issued: Vec::new(),
        });
    }

    fn obs_sample(&mut self) {
        let Some(obs) = &self.obs else { return };
        obs.pcshr_occupancy
            .set(self.backends.iter().map(|b| b.active() as u64).sum());
        obs.free_frames
            .set(self.frontend.frames().num_free() as u64);
        obs.retry_depth.set(self.retry.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_dcache::NoFlush;
    use nomad_dram::DramConfig;
    use nomad_types::{BlockAddr, ReqId};

    struct Rig {
        scheme: NomadScheme,
        hbm: Dram,
        ddr: Dram,
        ev: SchemeEvents,
        now: Cycle,
        responses: Vec<MemResp>,
        wakes: Vec<CoreId>,
    }

    impl Rig {
        fn new(scheme: NomadScheme) -> Self {
            Rig {
                scheme,
                hbm: Dram::new(DramConfig::hbm()),
                ddr: Dram::new(DramConfig::ddr4_2ch()),
                ev: SchemeEvents::default(),
                now: 0,
                responses: Vec::new(),
                wakes: Vec::new(),
            }
        }

        fn run(&mut self, cycles: Cycle) {
            for _ in 0..cycles {
                self.scheme.tick(
                    self.now,
                    &mut self.hbm,
                    &mut self.ddr,
                    &mut NoFlush,
                    &mut self.ev,
                );
                self.responses.append(&mut self.ev.responses);
                self.wakes.append(&mut self.ev.wakes);
                self.ev.clear();
                self.now += 1;
            }
        }

        fn walk(&mut self, core: CoreId, vpn: u64) -> WalkOutcome {
            self.scheme
                .walk(core, Vpn(vpn), SubBlockIdx(0), AccessKind::Read, self.now)
        }
    }

    #[test]
    fn nomad_tag_miss_wakes_after_tag_mgmt_not_fill() {
        let mut rig = Rig::new(NomadScheme::nomad(1 << 22));
        match rig.walk(0, 100) {
            WalkOutcome::Blocked { reason } => assert_eq!(reason, OsStallReason::TagMiss),
            _ => panic!("first touch must tag-miss"),
        }
        // Wake should arrive around 400 cycles, far before the ~4 KiB
        // page copy (≥ 64 DDR bursts) completes.
        rig.run(450);
        assert_eq!(rig.wakes, vec![0]);
        assert_eq!(rig.scheme.stats().fills.get(), 0, "fill still in flight");
        // Re-walk: now cached, no block.
        match rig.walk(0, 100) {
            WalkOutcome::Ready { entry } => {
                assert!(matches!(entry.frame, FrameKind::Cache(_)))
            }
            _ => panic!("resolved after handler"),
        }
        // Fill eventually completes.
        rig.run(20_000);
        assert_eq!(rig.scheme.stats().fills.get(), 1);
        assert_eq!(rig.scheme.stats().fill_bytes.get(), PAGE_SIZE);
    }

    #[test]
    fn tdc_tag_miss_wakes_only_after_fill() {
        let mut rig = Rig::new(NomadScheme::tdc(1 << 22, 4));
        match rig.walk(0, 100) {
            WalkOutcome::Blocked { reason } => {
                assert_eq!(reason, OsStallReason::BlockingFill)
            }
            _ => panic!("first touch must tag-miss"),
        }
        rig.run(450);
        assert!(rig.wakes.is_empty(), "TDC stays blocked during the copy");
        rig.run(20_000);
        assert_eq!(rig.wakes, vec![0]);
        assert_eq!(rig.scheme.stats().fills.get(), 1);
    }

    #[test]
    fn nomad_stall_is_much_shorter_than_tdc() {
        let stall = |mut rig: Rig| -> Cycle {
            match rig.walk(0, 7) {
                WalkOutcome::Blocked { .. } => {}
                _ => panic!("tag miss expected"),
            }
            let start = rig.now;
            while rig.wakes.is_empty() {
                rig.run(10);
                assert!(rig.now < 100_000, "no wake");
            }
            rig.now - start
        };
        let nomad = stall(Rig::new(NomadScheme::nomad(1 << 22)));
        let tdc = stall(Rig::new(NomadScheme::tdc(1 << 22, 4)));
        // An unloaded 4 KiB copy over 25.6 GB/s DDR takes ≈ 512 CPU
        // cycles on top of the ~400-cycle tag management that overlaps
        // it; NOMAD resumes right after tag management. Under real
        // bandwidth contention the gap grows to thousands of cycles
        // (integration tests cover that).
        assert!(
            tdc >= nomad + 150,
            "blocking stall {tdc} must exceed NOMAD's {nomad} by the copy tail"
        );
    }

    #[test]
    fn access_to_infilght_page_is_data_miss_with_buffer_hit() {
        let mut rig = Rig::new(NomadScheme::nomad(1 << 22));
        rig.walk(0, 100);
        rig.run(450); // handler done, copy in flight
        let cfn = match rig.walk(0, 100) {
            WalkOutcome::Ready { entry } => match entry.frame {
                FrameKind::Cache(c) => c,
                _ => panic!("cached"),
            },
            _ => panic!("ready"),
        };
        // Demand read of the critical sub-block (0): it should match a
        // PCSHR (data miss) and be serviced from the page copy buffer.
        rig.scheme.access(
            DcAccessReq {
                token: ReqId(77),
                addr: BlockAddr(cfn.raw() * 64),
                target: MemTarget::DramCache,
                kind: AccessKind::Read,
                core: 0,
                wants_response: true,
            },
            rig.now,
        );
        rig.run(3000);
        assert!(rig.responses.iter().any(|r| r.token == ReqId(77)));
        assert!(rig.scheme.stats().data_misses.get() >= 1);
        assert!(rig.scheme.stats().buffer_hits.get() >= 1);
    }

    #[test]
    fn data_hit_after_fill_completes_goes_to_hbm() {
        let mut rig = Rig::new(NomadScheme::nomad(1 << 22));
        rig.walk(0, 100);
        rig.run(30_000); // fill fully done
        let cfn = match rig.walk(0, 100) {
            WalkOutcome::Ready { entry } => match entry.frame {
                FrameKind::Cache(c) => c,
                _ => panic!(),
            },
            _ => panic!(),
        };
        let before = rig.hbm.stats().bytes_for(TrafficClass::DemandRead).read;
        rig.scheme.access(
            DcAccessReq {
                token: ReqId(5),
                addr: BlockAddr(cfn.raw() * 64 + 3),
                target: MemTarget::DramCache,
                kind: AccessKind::Read,
                core: 0,
                wants_response: true,
            },
            rig.now,
        );
        rig.run(2000);
        assert!(rig.responses.iter().any(|r| r.token == ReqId(5)));
        assert_eq!(rig.scheme.stats().dc_data_hits.get(), 1);
        assert!(rig.hbm.stats().bytes_for(TrafficClass::DemandRead).read > before);
    }

    #[test]
    fn capacity_pressure_triggers_daemon_and_writebacks() {
        // 64-frame cache; write to every page so evictions are dirty.
        let mut cfg = NomadConfig::nomad(64 * PAGE_SIZE);
        cfg.eviction_threshold = 8;
        cfg.eviction_batch = 16;
        let mut rig = Rig::new(NomadScheme::new(cfg));
        for v in 0..200u64 {
            match rig
                .scheme
                .walk(0, Vpn(v), SubBlockIdx(0), AccessKind::Write, rig.now)
            {
                WalkOutcome::Blocked { .. } => {
                    // Wait for the handler to finish before the next
                    // touch (single-threaded touch loop).
                    let before = rig.wakes.len();
                    while rig.wakes.len() == before {
                        rig.run(50);
                        assert!(rig.now < 10_000_000);
                    }
                }
                WalkOutcome::Ready { .. } => {}
            }
        }
        rig.run(100_000);
        let s = rig.scheme.stats();
        assert!(s.evictions.get() > 0, "daemon must reclaim");
        assert!(s.writebacks.get() > 0, "dirty pages must write back");
        assert!(
            rig.ddr.stats().bytes_for(TrafficClass::Writeback).written > 0,
            "writeback traffic reached DDR"
        );
    }

    #[test]
    fn distributed_backends_partition_by_cfn() {
        let mut cfg = NomadConfig::nomad(1 << 22);
        cfg.backends = 4;
        let mut rig = Rig::new(NomadScheme::new(cfg));
        for v in 0..8u64 {
            rig.walk(0, v);
            rig.run(1200); // serialized handlers: one per ~400 cycles
        }
        rig.run(50_000);
        assert_eq!(rig.scheme.stats().fills.get(), 8);
    }

    #[test]
    fn tag_mgmt_latency_grows_under_contention() {
        let mut rig = Rig::new(NomadScheme::nomad(1 << 22));
        // Burst of 8 simultaneous tag misses from different cores.
        for (core, v) in (0..8u64).enumerate() {
            match rig
                .scheme
                .walk(core, Vpn(v), SubBlockIdx(0), AccessKind::Read, 0)
            {
                WalkOutcome::Blocked { .. } => {}
                _ => panic!("tag miss expected"),
            }
        }
        rig.run(10_000);
        let s = rig.scheme.stats();
        assert_eq!(s.tag_mgmt_latency.count(), 8);
        assert!(s.tag_mgmt_latency.min() >= 400);
        assert!(
            s.tag_mgmt_latency.max() >= 3 * 400,
            "mutex queueing: max {}",
            s.tag_mgmt_latency.max()
        );
    }

    #[test]
    fn second_touch_policy_admits_only_reused_pages() {
        let mut cfg = NomadConfig::nomad(1 << 22);
        cfg.policy = crate::config::CachingPolicy::SecondTouch;
        let mut rig = Rig::new(NomadScheme::new(cfg));
        // First touch: bypassed — translation proceeds off-package
        // with no handler involvement.
        match rig.walk(0, 50) {
            WalkOutcome::Ready { entry } => {
                assert!(matches!(entry.frame, FrameKind::Phys(_)))
            }
            _ => panic!("first touch must bypass, not block"),
        }
        assert_eq!(rig.scheme.stats().policy_bypasses.get(), 1);
        assert_eq!(rig.scheme.stats().tag_misses.get(), 0);
        // Second touch: admitted like a normal tag miss.
        match rig.walk(0, 50) {
            WalkOutcome::Blocked { .. } => {}
            _ => panic!("second touch must admit the page"),
        }
        assert_eq!(rig.scheme.stats().tag_misses.get(), 1);
        rig.run(20_000);
        assert!(rig
            .scheme
            .frontend_mut()
            .page_table()
            .get(Vpn(50))
            .expect("mapped")
            .cached());
    }

    #[test]
    fn noncacheable_pages_bypass_everything() {
        let mut rig = Rig::new(NomadScheme::nomad(1 << 22));
        rig.scheme
            .frontend_mut()
            .page_table_mut()
            .set_noncacheable(Vpn(9), true);
        match rig.walk(0, 9) {
            WalkOutcome::Ready { entry } => {
                assert!(entry.noncacheable);
                assert!(matches!(entry.frame, FrameKind::Phys(_)));
            }
            _ => panic!("NC pages never block"),
        }
        assert_eq!(rig.scheme.stats().tag_misses.get(), 0);
    }
}
