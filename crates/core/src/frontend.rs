//! The NOMAD front-end: OS routines for DC tag management.
//!
//! Two routines run under the cache-frame-management mutex
//! (Algorithms 1 and 2 of the paper):
//!
//! * the **DC tag-miss handler** — allocates a cache frame from the
//!   circular free queue's head, offloads a cache-fill command to the
//!   back-end (waiting while the interface is busy), rewrites the
//!   PTE's PFN to the new CFN, and resumes the thread;
//! * the **background eviction daemon** — armed when free frames drop
//!   below a threshold; reclaims a batch from the queue's tail,
//!   skipping TLB-resident frames (shootdown avoidance) and frames
//!   with in-flight copies, flushing their SRAM lines, restoring PTEs
//!   through reverse mappings and offloading writeback commands for
//!   dirty frames.
//!
//! In NOMAD the mutex serializes the routines (`serialized_handler`),
//! which is exactly what grows the observed tag-management latency
//! from the 400-cycle floor to several thousand cycles under bursty
//! miss traffic (paper §IV-B, Figs. 11/14). The TDC model instead locks
//! only per-PTE state, so handlers run in parallel with no extra
//! penalty (§IV-A).

use crate::backend::{CopyCommand, CopyKind};
use crate::config::NomadConfig;
use nomad_cache::PageTable;
use nomad_dcache::CacheFlush;
use nomad_dcache::{CacheFrames, EvictCandidate};
use nomad_types::{Cfn, CoreId, Cycle, Pfn, SubBlockIdx, Vpn};
use std::collections::{HashSet, VecDeque};

/// Access to the back-end interface(s), implemented by the scheme
/// (routes commands to the right back-end in the distributed design).
pub trait BackendCtl {
    /// Offer a command to the interface; `false` means busy.
    fn try_send(&mut self, cmd: CopyCommand) -> bool;
    /// Whether a page copy is in flight for `cfn`.
    fn busy_cfn(&self, cfn: Cfn) -> bool;
}

/// Front-end configuration subset + derived values.
#[derive(Debug, Clone, Copy)]
pub struct FrontendConfig {
    pub(crate) tag_mgmt_cycles: Cycle,
    pub(crate) probe_cost: Cycle,
    pub(crate) serialized: bool,
    pub(crate) eviction_threshold: usize,
    pub(crate) eviction_batch: usize,
    pub(crate) evict_page_cost: Cycle,
    pub(crate) evict_batch_cost: Cycle,
    pub(crate) critical_data_first: bool,
}

impl From<&NomadConfig> for FrontendConfig {
    fn from(c: &NomadConfig) -> Self {
        FrontendConfig {
            tag_mgmt_cycles: c.tag_mgmt_cycles,
            probe_cost: c.probe_cost,
            serialized: c.serialized_handler,
            eviction_threshold: c.eviction_threshold,
            eviction_batch: c.eviction_batch,
            evict_page_cost: c.evict_page_cost,
            evict_batch_cost: c.evict_batch_cost,
            critical_data_first: c.critical_data_first,
        }
    }
}

/// A DC tag miss whose handler finished this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandledTagMiss {
    /// Core whose access faulted first.
    pub core: CoreId,
    /// Faulting virtual page.
    pub vpn: Vpn,
    /// Allocated cache frame.
    pub cfn: Cfn,
    /// Cycle the miss entered the handler queue.
    pub enqueued: Cycle,
    /// Cycle the handler completed (PTE updated, thread resumable).
    pub completed: Cycle,
    /// Cycles spent waiting for the back-end interface.
    pub interface_wait: Cycle,
}

/// Events produced by one front-end tick.
#[derive(Debug, Default)]
pub struct FrontendEvents {
    /// Tag misses resolved this cycle.
    pub handled: Vec<HandledTagMiss>,
    /// Frames reclaimed this cycle (for stats).
    pub evicted: usize,
    /// Eviction-daemon runs started this cycle.
    pub daemon_runs: usize,
    /// VPNs whose TLB entries must be shot down (forced reclamation of
    /// TLB-resident frames; only happens when the DRAM cache is
    /// smaller than the combined TLB reach).
    pub shootdowns: Vec<Vpn>,
}

impl FrontendEvents {
    /// Clear for reuse.
    pub fn clear(&mut self) {
        self.handled.clear();
        self.evicted = 0;
        self.daemon_runs = 0;
        self.shootdowns.clear();
    }
}

#[derive(Debug)]
struct TagMissJob {
    core: CoreId,
    vpn: Vpn,
    pfn: Pfn,
    write: bool,
    priority: SubBlockIdx,
    enqueued: Cycle,
}

#[derive(Debug)]
enum Job {
    TagMiss(TagMissJob),
    Daemon,
}

#[derive(Debug)]
struct ActiveTagMiss {
    job: TagMissJob,
    cfn: Cfn,
    work_done_at: Cycle,
    sent: bool,
    interface_wait: Cycle,
}

/// The front-end OS state: free queue + CPDs, page table, handler
/// queue and eviction daemon.
#[derive(Debug)]
pub struct Frontend {
    cfg: FrontendConfig,
    frames: CacheFrames,
    page_table: PageTable,
    queue: VecDeque<Job>,
    active: Vec<ActiveTagMiss>,
    daemon_until: Option<Cycle>,
    daemon_queued: bool,
    pending_vpns: HashSet<u64>,
    deferred_wb: VecDeque<CopyCommand>,
    /// Reusable eviction-victim buffer, shared by the daemon body and
    /// the handler's emergency/force reclamation paths.
    evict_scratch: Vec<EvictCandidate>,
}

impl Frontend {
    /// Build the front-end for `frames` cache frames.
    pub fn new(cfg: FrontendConfig, frames: usize) -> Self {
        Frontend {
            cfg,
            frames: CacheFrames::new(frames),
            page_table: PageTable::new(),
            queue: VecDeque::new(),
            active: Vec::new(),
            daemon_until: None,
            daemon_queued: false,
            pending_vpns: HashSet::new(),
            deferred_wb: VecDeque::new(),
            evict_scratch: Vec::new(),
        }
    }

    /// The OS page table.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Read-only page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The cache-frame descriptors / free queue.
    pub fn frames_mut(&mut self) -> &mut CacheFrames {
        &mut self.frames
    }

    /// Read-only frame state.
    pub fn frames(&self) -> &CacheFrames {
        &self.frames
    }

    /// Whether a tag miss for `vpn` is already queued or being handled.
    pub fn vpn_pending(&self, vpn: Vpn) -> bool {
        self.pending_vpns.contains(&vpn.raw())
    }

    /// Enqueue a DC tag miss (deduplicated by VPN). Returns `true` if a
    /// new handler job was created.
    pub fn note_tag_miss(
        &mut self,
        core: CoreId,
        vpn: Vpn,
        pfn: Pfn,
        priority: SubBlockIdx,
        write: bool,
        now: Cycle,
    ) -> bool {
        if !self.pending_vpns.insert(vpn.raw()) {
            return false;
        }
        self.queue.push_back(Job::TagMiss(TagMissJob {
            core,
            vpn,
            pfn,
            write,
            priority,
            enqueued: now,
        }));
        true
    }

    /// Pending handler-queue length (mutex backlog).
    pub fn queue_len(&self) -> usize {
        self.queue.len() + self.active.len()
    }

    fn mutex_free(&self) -> bool {
        if !self.cfg.serialized {
            return true;
        }
        self.active.is_empty() && self.daemon_until.is_none()
    }

    /// Reclaim up to `n` frames immediately (daemon body and the
    /// handler's emergency path). Returns `(reclaimed, dirty)`.
    fn reclaim(
        &mut self,
        n: usize,
        backends: &mut dyn BackendCtl,
        flush: &mut dyn CacheFlush,
        events: &mut FrontendEvents,
    ) -> (usize, usize) {
        let mut victims = std::mem::take(&mut self.evict_scratch);
        victims.clear();
        self.frames
            .evict_batch_filtered_into(n, |cfn| backends.busy_cfn(cfn), &mut victims);
        let mut dirty_count = 0;
        for v in &victims {
            let (_, dirty_lines) = flush.flush_dc_page(v.cfn.raw());
            self.page_table.uncache_all(v.cpd.pfn);
            if v.cpd.dirty || dirty_lines > 0 {
                dirty_count += 1;
                self.deferred_wb.push_back(CopyCommand {
                    kind: CopyKind::Writeback,
                    pfn: v.cpd.pfn,
                    cfn: v.cfn,
                    priority: None,
                });
            }
        }
        events.evicted += victims.len();
        let reclaimed = victims.len();
        self.evict_scratch = victims;
        (reclaimed, dirty_count)
    }

    fn arm_daemon_if_needed(&mut self) {
        if self.frames.num_free() < self.cfg.eviction_threshold
            && !self.daemon_queued
            && self.daemon_until.is_none()
        {
            self.daemon_queued = true;
            self.queue.push_back(Job::Daemon);
        }
    }

    /// Advance one cycle.
    pub fn tick(
        &mut self,
        now: Cycle,
        backends: &mut dyn BackendCtl,
        flush: &mut dyn CacheFlush,
        events: &mut FrontendEvents,
    ) {
        // Daemon completion.
        if let Some(until) = self.daemon_until {
            if now >= until {
                self.daemon_until = None;
            }
        }

        // Start queued jobs while the mutex allows.
        while !self.queue.is_empty() && self.mutex_free() {
            match self.queue.pop_front().expect("non-empty") {
                Job::TagMiss(job) => {
                    let mut penalty = 0;
                    let alloc = match self.frames.allocate(job.pfn) {
                        Some(a) => Some(a),
                        None => {
                            // Emergency synchronous reclamation: the
                            // daemon fell behind a miss burst.
                            let (got, _) =
                                self.reclaim(self.cfg.eviction_batch, backends, flush, events);
                            penalty =
                                got as u64 * self.cfg.evict_page_cost + self.cfg.evict_batch_cost;
                            self.frames.allocate(job.pfn)
                        }
                    };
                    // Last resort: every reclaimable frame's
                    // translation sits in a TLB (cache smaller than
                    // the TLB reach) — force eviction with shootdowns.
                    let alloc = match alloc {
                        Some(a) => Some(a),
                        None => {
                            let mut victims = std::mem::take(&mut self.evict_scratch);
                            victims.clear();
                            self.frames.evict_batch_force_into(
                                self.cfg.eviction_batch,
                                |cfn| backends.busy_cfn(cfn),
                                &mut victims,
                            );
                            for v in &victims {
                                flush.flush_dc_page(v.cfn.raw());
                                for &vpn in self.page_table.reverse_map(v.cpd.pfn) {
                                    events.shootdowns.push(Vpn(vpn));
                                }
                                self.page_table.uncache_all(v.cpd.pfn);
                                if v.cpd.dirty {
                                    self.deferred_wb.push_back(CopyCommand {
                                        kind: CopyKind::Writeback,
                                        pfn: v.cpd.pfn,
                                        cfn: v.cfn,
                                        priority: None,
                                    });
                                }
                            }
                            events.evicted += victims.len();
                            // A shootdown protocol round-trip per batch.
                            penalty += 500 + victims.len() as u64 * self.cfg.evict_page_cost;
                            self.evict_scratch = victims;
                            self.frames.allocate(job.pfn)
                        }
                    };
                    let Some((cfn, probes)) = alloc else {
                        // Every frame has a copy in flight: retry next
                        // cycle (the copies complete without the OS).
                        self.queue.push_front(Job::TagMiss(job));
                        break;
                    };
                    let work_done_at = now
                        + self.cfg.tag_mgmt_cycles
                        + probes as u64 * self.cfg.probe_cost
                        + penalty;
                    self.active.push(ActiveTagMiss {
                        job,
                        cfn,
                        work_done_at,
                        sent: false,
                        interface_wait: 0,
                    });
                    self.arm_daemon_if_needed();
                    if self.cfg.serialized {
                        break;
                    }
                }
                Job::Daemon => {
                    self.daemon_queued = false;
                    let (got, _) = self.reclaim(self.cfg.eviction_batch, backends, flush, events);
                    let duration =
                        self.cfg.evict_batch_cost + got as u64 * self.cfg.evict_page_cost;
                    events.daemon_runs += 1;
                    if self.cfg.serialized {
                        self.daemon_until = Some(now + duration);
                        break;
                    }
                    // Parallel (TDC) mode: the daemon does not hold a
                    // global mutex; its cost is off the critical path.
                }
            }
        }

        // Progress active tag-miss handlers.
        let mut i = 0;
        while i < self.active.len() {
            let a = &mut self.active[i];
            if !a.sent {
                let priority = self.cfg.critical_data_first.then_some(a.job.priority);
                if backends.try_send(CopyCommand {
                    kind: CopyKind::Fill,
                    pfn: a.job.pfn,
                    cfn: a.cfn,
                    priority,
                }) {
                    a.sent = true;
                } else {
                    a.interface_wait += 1;
                }
            }
            let done = a.sent && now >= a.work_done_at;
            if done {
                let a = self.active.swap_remove(i);
                // Lines 7–10 of Algorithm 1: PTE/CPD updates (handles
                // shared pages through the reverse mapping).
                self.page_table.cache_all(a.job.pfn, a.cfn);
                if a.job.write {
                    self.frames.set_dirty(a.cfn);
                }
                self.pending_vpns.remove(&a.job.vpn.raw());
                events.handled.push(HandledTagMiss {
                    core: a.job.core,
                    vpn: a.job.vpn,
                    cfn: a.cfn,
                    enqueued: a.job.enqueued,
                    completed: now.max(a.work_done_at),
                    interface_wait: a.interface_wait,
                });
            } else {
                i += 1;
            }
        }

        // Offload deferred writeback commands as the interface allows
        // (fills were given priority above).
        while let Some(cmd) = self.deferred_wb.front() {
            if backends.try_send(*cmd) {
                self.deferred_wb.pop_front();
            } else {
                break;
            }
        }

        self.arm_daemon_if_needed();
    }

    /// Earliest cycle strictly after `now` at which a
    /// [`tick`](Self::tick) could make progress, or `None` while the
    /// front-end is idle (same contract as
    /// [`nomad_types::NextActivity`]).
    ///
    /// Handlers still waiting on the back-end interface and deferred
    /// writebacks retry (and accrue `interface_wait`) every cycle, so
    /// they pin activity to `now + 1`. Sent handlers and a running
    /// daemon are pure timers: nothing observable happens until
    /// `work_done_at` / `daemon_until`.
    pub fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |at: Cycle| {
            let t = at.max(now + 1);
            next = Some(next.map_or(t, |n: Cycle| n.min(t)));
        };
        if !self.deferred_wb.is_empty() {
            consider(now + 1);
        }
        if !self.queue.is_empty() && self.mutex_free() {
            consider(now + 1);
        }
        for a in &self.active {
            if a.sent {
                consider(a.work_done_at);
            } else {
                consider(now + 1);
            }
        }
        if let Some(until) = self.daemon_until {
            consider(until);
        }
        next
    }

    /// Whether the front-end has no queued or active work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
            && self.active.is_empty()
            && self.daemon_until.is_none()
            && self.deferred_wb.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_dcache::NoFlush;

    /// A backend stub with a settable capacity.
    struct StubBackend {
        slots: usize,
        sent: Vec<CopyCommand>,
        busy: Vec<Cfn>,
    }

    impl StubBackend {
        fn new(slots: usize) -> Self {
            StubBackend {
                slots,
                sent: Vec::new(),
                busy: Vec::new(),
            }
        }
    }

    impl BackendCtl for StubBackend {
        fn try_send(&mut self, cmd: CopyCommand) -> bool {
            if self.sent.len() >= self.slots {
                return false;
            }
            self.sent.push(cmd);
            true
        }
        fn busy_cfn(&self, cfn: Cfn) -> bool {
            self.busy.contains(&cfn)
        }
    }

    fn frontend(serialized: bool, frames: usize) -> Frontend {
        let mut cfg = NomadConfig::nomad(frames as u64 * nomad_types::PAGE_SIZE);
        cfg.serialized_handler = serialized;
        cfg.eviction_threshold = 4;
        cfg.eviction_batch = 8;
        Frontend::new(FrontendConfig::from(&cfg), frames)
    }

    fn run(
        f: &mut Frontend,
        b: &mut StubBackend,
        from: Cycle,
        cycles: Cycle,
    ) -> Vec<HandledTagMiss> {
        let mut all = Vec::new();
        let mut ev = FrontendEvents::default();
        for now in from..from + cycles {
            f.tick(now, b, &mut NoFlush, &mut ev);
            all.append(&mut ev.handled);
            ev.clear();
        }
        all
    }

    #[test]
    fn single_tag_miss_takes_400_cycles() {
        let mut f = frontend(true, 256);
        let mut b = StubBackend::new(16);
        // First touch the PTE so the pfn exists.
        let pfn = match f.page_table_mut().pte_mut(Vpn(5)).frame {
            nomad_cache::FrameKind::Phys(p) => p,
            _ => unreachable!(),
        };
        assert!(f.note_tag_miss(0, Vpn(5), pfn, SubBlockIdx(3), false, 100));
        let handled = run(&mut f, &mut b, 100, 1000);
        assert_eq!(handled.len(), 1);
        let h = handled[0];
        assert_eq!(h.completed - h.enqueued, 400);
        assert_eq!(h.interface_wait, 0);
        // PTE now caches the page and the fill was offloaded with the
        // critical sub-block.
        assert!(f.page_table().get(Vpn(5)).unwrap().cached());
        assert_eq!(b.sent.len(), 1);
        assert_eq!(b.sent[0].priority, Some(SubBlockIdx(3)));
        assert_eq!(b.sent[0].kind, CopyKind::Fill);
    }

    #[test]
    fn duplicate_vpn_tag_misses_coalesce() {
        let mut f = frontend(true, 256);
        let pfn = Pfn(0);
        f.page_table_mut().pte_mut(Vpn(5));
        assert!(f.note_tag_miss(0, Vpn(5), pfn, SubBlockIdx(0), false, 0));
        assert!(!f.note_tag_miss(1, Vpn(5), pfn, SubBlockIdx(1), false, 1));
        assert!(f.vpn_pending(Vpn(5)));
        let mut b = StubBackend::new(16);
        let handled = run(&mut f, &mut b, 0, 1000);
        assert_eq!(handled.len(), 1);
        assert!(!f.vpn_pending(Vpn(5)));
    }

    #[test]
    fn serialized_handlers_queue_behind_each_other() {
        let mut f = frontend(true, 256);
        let mut b = StubBackend::new(16);
        for v in 0..3u64 {
            f.page_table_mut().pte_mut(Vpn(v));
            f.note_tag_miss(0, Vpn(v), Pfn(v), SubBlockIdx(0), false, 0);
        }
        let handled = run(&mut f, &mut b, 0, 5000);
        assert_eq!(handled.len(), 3);
        let mut latencies: Vec<u64> = handled.iter().map(|h| h.completed - h.enqueued).collect();
        latencies.sort_unstable();
        assert_eq!(latencies[0], 400);
        assert!(
            latencies[1] >= 800,
            "second waits for the mutex: {latencies:?}"
        );
        assert!(latencies[2] >= 1200, "{latencies:?}");
    }

    #[test]
    fn parallel_handlers_do_not_queue() {
        let mut f = frontend(false, 256);
        let mut b = StubBackend::new(16);
        for v in 0..3u64 {
            f.page_table_mut().pte_mut(Vpn(v));
            f.note_tag_miss(0, Vpn(v), Pfn(v), SubBlockIdx(0), false, 0);
        }
        let handled = run(&mut f, &mut b, 0, 5000);
        assert_eq!(handled.len(), 3);
        for h in handled {
            assert_eq!(h.completed - h.enqueued, 400, "no mutex queueing");
        }
    }

    #[test]
    fn busy_interface_grows_tag_latency() {
        let mut f = frontend(true, 256);
        let mut b = StubBackend::new(0); // interface always busy
        f.page_table_mut().pte_mut(Vpn(1));
        f.note_tag_miss(0, Vpn(1), Pfn(0), SubBlockIdx(0), false, 0);
        let handled = run(&mut f, &mut b, 0, 300);
        assert!(handled.is_empty(), "cannot complete without the interface");
        b.slots = 16;
        let handled = run(&mut f, &mut b, 300, 1000);
        assert_eq!(handled.len(), 1);
        assert!(handled[0].interface_wait >= 299);
        assert!(handled[0].completed - handled[0].enqueued >= 400);
    }

    #[test]
    fn daemon_arms_at_threshold_and_reclaims() {
        let mut f = frontend(true, 16); // threshold 4, batch 8
        let mut b = StubBackend::new(64);
        // Fill 13 frames via handler path.
        for v in 0..13u64 {
            f.page_table_mut().pte_mut(Vpn(v));
            f.note_tag_miss(0, Vpn(v), Pfn(v), SubBlockIdx(0), false, 0);
        }
        let handled = run(&mut f, &mut b, 0, 20_000);
        assert_eq!(handled.len(), 13);
        // The daemon must have run and freed frames.
        assert!(f.frames().num_free() > 3, "free {}", f.frames().num_free());
        // Evicted pages are uncached again.
        let evicted_pages = (0..13u64)
            .filter(|v| {
                !f.page_table()
                    .get(Vpn(*v))
                    .map(|p| p.cached())
                    .unwrap_or(false)
            })
            .count();
        assert!(evicted_pages > 0);
    }

    #[test]
    fn dirty_evictions_offload_writebacks() {
        let mut f = frontend(true, 16);
        let mut b = StubBackend::new(64);
        for v in 0..13u64 {
            f.page_table_mut().pte_mut(Vpn(v));
            f.note_tag_miss(0, Vpn(v), Pfn(v), SubBlockIdx(0), true, 0); // writes
        }
        run(&mut f, &mut b, 0, 20_000);
        let wbs = b
            .sent
            .iter()
            .filter(|c| c.kind == CopyKind::Writeback)
            .count();
        assert!(wbs > 0, "dirty frames must be written back");
    }

    #[test]
    fn copy_busy_frames_survive_eviction() {
        let mut f = frontend(true, 16);
        let mut b = StubBackend::new(64);
        for v in 0..8u64 {
            f.page_table_mut().pte_mut(Vpn(v));
            f.note_tag_miss(0, Vpn(v), Pfn(v), SubBlockIdx(0), false, 0);
        }
        run(&mut f, &mut b, 0, 20_000);
        // Mark frame 0 busy and force reclamation of everything else.
        b.busy.push(Cfn(0));
        for v in 8..14u64 {
            f.page_table_mut().pte_mut(Vpn(v));
            f.note_tag_miss(0, Vpn(v), Pfn(v), SubBlockIdx(0), false, 30_000);
        }
        run(&mut f, &mut b, 30_000, 40_000);
        assert!(f.frames().cpd(Cfn(0)).valid, "busy frame skipped");
    }
}
