// Regenerates the seven-scheme head-to-head comparison (Baseline, TiD,
// TDRAM, Banshee, TDC, NOMAD, Ideal × all workloads) with per-class
// geomean summaries.
use nomad_bench::{figs::fig_headtohead, save_json, Scale};

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!("fig_headtohead: 15 workloads × 7 schemes ({:?})", scale);
    let rows = fig_headtohead::run(&scale);
    fig_headtohead::print(&rows);
    save_json("fig_headtohead", &rows);
}
