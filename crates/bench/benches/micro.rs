//! Criterion micro-benchmarks of the core data structures: the
//! PCSHR data-hit verification (which the paper budgets at 0.21 CPU
//! cycles of hardware), the DRAM channel scheduler, an SRAM cache
//! level, and the workload generator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nomad_cache::{CacheLevel, CacheLevelConfig};
use nomad_core::{Backend, BackendConfig, CopyCommand, CopyKind};
use nomad_dcache::DcAccessReq;
use nomad_dram::{Dram, DramConfig, DramRequest};
use nomad_trace::{SyntheticTrace, TraceSource, WorkloadProfile};
use nomad_types::{
    AccessKind, BlockAddr, Cfn, MemReq, MemTarget, Pfn, ReqId, SubBlockIdx, TrafficClass,
};

fn bench_pcshr_lookup(c: &mut Criterion) {
    let mut backend = Backend::new(0, BackendConfig::default());
    for i in 0..16u64 {
        backend.try_send(CopyCommand {
            kind: CopyKind::Fill,
            pfn: Pfn(i),
            cfn: Cfn(1000 + i),
            priority: Some(SubBlockIdx(0)),
        });
    }
    let miss = DcAccessReq {
        token: ReqId(1),
        addr: BlockAddr(999 * 64 + 5),
        target: MemTarget::DramCache,
        kind: AccessKind::Read,
        core: 0,
        wants_response: true,
    };
    c.bench_function("pcshr_data_hit_verification", |b| {
        b.iter(|| black_box(backend.check_access(black_box(miss), 0)))
    });
}

fn bench_dram_channel(c: &mut Criterion) {
    c.bench_function("dram_tick_loaded", |b| {
        let mut dram = Dram::new(DramConfig::hbm());
        let mut out = Vec::new();
        let mut token = 0u64;
        b.iter(|| {
            if dram.can_accept(token * 64) {
                let _ = dram.try_push(DramRequest {
                    token: ReqId(token),
                    addr: ((token * 2891) % (1 << 26)) & !63,
                    kind: AccessKind::Read,
                    class: TrafficClass::DemandRead,
                    wants_completion: false,
                    probe: nomad_dram::Probe::Data,
                });
                token += 1;
            }
            dram.tick(&mut out);
            out.clear();
        })
    });
}

fn bench_cache_level(c: &mut Criterion) {
    c.bench_function("cache_level_hit", |b| {
        let mut l1 = CacheLevel::new(CacheLevelConfig::l1d());
        // Warm one line.
        l1.push_req(
            MemReq::read(ReqId(0), BlockAddr(7), MemTarget::OffPackage, 0),
            0,
        );
        for now in 0..200 {
            l1.tick(now);
            if let Some(req) = l1.pop_to_lower() {
                l1.push_resp(req.response());
            }
            let _ = l1.pop_to_upper(now);
        }
        let mut now = 200u64;
        b.iter(|| {
            if l1.can_accept() {
                l1.push_req(
                    MemReq::read(ReqId(now), BlockAddr(7), MemTarget::OffPackage, 0),
                    now,
                );
            }
            l1.tick(now);
            while l1.pop_to_upper(now).is_some() {}
            now += 1;
        })
    });
}

fn bench_trace_gen(c: &mut Criterion) {
    let profile = WorkloadProfile::cact();
    let mut t = SyntheticTrace::new(&profile, 42);
    c.bench_function("trace_generate_record", |b| {
        b.iter(|| black_box(t.next_record()))
    });
}

criterion_group!(
    benches,
    bench_pcshr_lookup,
    bench_dram_channel,
    bench_cache_level,
    bench_trace_gen
);
criterion_main!(benches);
