// Regenerates Fig. 11 (stall-cycle ratios + tag-management latency).
use nomad_bench::{figs::fig11, save_json, Scale};

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!("fig11: 15 workloads × 2 schemes ({:?})", scale);
    let rows = fig11::run(&scale);
    fig11::print(&rows);
    save_json("fig11", &rows);
}
