// Regenerates Fig. 13 (Excess-class IPC vs PCSHRs for 2/4/8 cores).
use nomad_bench::{figs::pcshr_sweeps, save_json, Scale};

const COUNTS: &[usize] = &[2, 4, 8, 16, 32];
const CORES: &[usize] = &[2, 4, 8];

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!(
        "fig13: {} core counts × {} PCSHR counts ({:?})",
        CORES.len(),
        COUNTS.len(),
        scale
    );
    let rows = pcshr_sweeps::fig13(&scale, COUNTS, CORES);
    pcshr_sweeps::print_fig13(&rows, COUNTS, CORES);
    save_json("fig13", &rows);
}
