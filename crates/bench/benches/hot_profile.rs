// Hot-path profile harness: where does the wall time of one simulated
// cell actually go?
//
// Runs every scheme on one low-RMHB workload (`tc`, mostly
// cache-resident — the cells where the event kernel and the flat data
// layout pay most) and one high-RMHB workload (`mcf`), with the
// simulator's hot-path profile armed. Each cell reports simulated
// cycles per wall-clock second plus the per-phase split of tick time:
//
// * `cpu`    — core commit/dispatch, translation, L1 injection;
// * `cache`  — the SRAM hierarchy (L1/L2/L3 ticks and traffic);
// * `dcache` — the DRAM-cache scheme tick outside the DRAM devices;
// * `dram`   — wall time inside `Dram::tick` (HBM + DDR4);
// * `other`  — everything else (event-kernel queries, skips, stats).
//
// The profile is purely observational: armed or not, runs produce
// byte-identical `RunReport`s (the skip-parity suite guards that), so
// these numbers can be compared across commits without re-validating
// simulation output.
//
// ```text
// cargo run --release -p nomad-bench --bin hot_profile
// ```
//
// Besides the tick-phase split, each cell reports its *setup* lap —
// wall time and allocation count to construct the `System` fresh,
// and to recycle it through `System::reset_for_cell` (the arena path
// sweeps take by default) — plus the allocations of the measured run
// itself, which the zero-alloc-churn contract keeps near zero.
//
// Scale knobs: `NOMAD_INSTR` (default 200 000 measured instructions),
// `NOMAD_WARMUP` (default 20 000), `NOMAD_SEED` (default 42),
// `NOMAD_REPS` (default 1 — the phase split is a ratio, so it is far
// less noise-sensitive than a throughput number); one core, the 4 MiB
// DRAM-cache configuration the parity suite uses.

use nomad_bench::{measure, save_json};
use nomad_sim::{SchemeSpec, System, SystemConfig};
use nomad_trace::{SyntheticTrace, TraceSource, WorkloadProfile};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System as SysAlloc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting wrapper around the system allocator: one relaxed
/// fetch-add per allocation, so the harness can report how many heap
/// allocations a setup or a measured run performs. Deallocations are
/// not counted — the interesting number is churn created, not freed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        SysAlloc.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SysAlloc.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        SysAlloc.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[derive(Serialize)]
struct Row {
    workload: String,
    scheme: String,
    instructions: u64,
    simulated_cycles: u64,
    secs: f64,
    cycles_per_sec: f64,
    dense_ticks: u64,
    skips: u64,
    skipped_cycles: u64,
    burst_ticks: u64,
    cpu_nanos: u64,
    cache_nanos: u64,
    dcache_nanos: u64,
    dram_nanos: u64,
    other_nanos: u64,
    /// Wall seconds to construct the `System` from scratch.
    setup_fresh_secs: f64,
    /// Heap allocations performed by that fresh construction.
    setup_fresh_allocs: u64,
    /// Wall seconds to recycle the finished system via
    /// `reset_for_cell` (the arena path).
    setup_reset_secs: f64,
    /// Heap allocations performed by the recycle (scheme box + traces
    /// only — the components keep their buffers).
    setup_reset_allocs: u64,
    /// Heap allocations during the measured run itself.
    run_allocs: u64,
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn make_traces(
    cfg: &SystemConfig,
    profile: &WorkloadProfile,
    seed: u64,
) -> Vec<Box<dyn TraceSource>> {
    (0..cfg.cores)
        .map(|i| {
            Box::new(SyntheticTrace::with_scale(
                profile,
                seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
                cfg.pages_per_gb,
                cfg.l3_reach_pages(),
            )) as Box<dyn TraceSource>
        })
        .collect()
}

fn build(cfg: &SystemConfig, spec: &SchemeSpec, profile: &WorkloadProfile, seed: u64) -> System {
    let mut sys = System::new(
        cfg.clone(),
        spec.build(cfg),
        make_traces(cfg, profile, seed),
    );
    sys.enable_hot_profile();
    sys.prewarm();
    sys
}

fn pct(part: u64, whole: f64) -> f64 {
    if whole <= 0.0 {
        0.0
    } else {
        part as f64 / whole * 100.0
    }
}

fn main() {
    nomad_bench::harness_init();
    let instructions = env_u64("NOMAD_INSTR", 200_000);
    let warmup = env_u64("NOMAD_WARMUP", 20_000);
    let seed = env_u64("NOMAD_SEED", 42);
    let reps = env_u64("NOMAD_REPS", 1).max(1);
    let mut cfg = SystemConfig::scaled(1);
    cfg.dc_capacity = 4 * 1024 * 1024;

    let mut rows = Vec::new();
    println!("hot-path profile ({instructions} instr, {warmup} warmup, seed {seed})");
    println!(
        "{:<10} {:<10} {:>12} {:>12} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "scheme", "workload", "sim cycles", "cycles/s", "cpu%", "cach%", "dc%", "dram%", "other%"
    );
    for (spec, profile) in [
        SchemeSpec::Baseline,
        SchemeSpec::Tid,
        SchemeSpec::Tdc,
        SchemeSpec::Nomad,
    ]
    .into_iter()
    .flat_map(|s| {
        [WorkloadProfile::tc(), WorkloadProfile::mcf()].map(|profile| (s.clone(), profile))
    }) {
        // One timed cell (best-of-NOMAD_REPS via `nomad_bench::measure`;
        // default 1 — the phase split is a ratio, so it is far less
        // noise-sensitive than a throughput number).
        let mut cell = || {
            let setup_t0 = Instant::now();
            let setup_a0 = allocs();
            let mut sys = build(&cfg, &spec, &profile, seed);
            let setup_fresh_secs = setup_t0.elapsed().as_secs_f64();
            let setup_fresh_allocs = allocs() - setup_a0;

            sys.run(warmup);
            sys.reset_stats();
            let start_cycle = sys.cycle();
            let run_a0 = allocs();
            let t0 = Instant::now();
            sys.run(instructions);
            let secs = t0.elapsed().as_secs_f64();
            let run_allocs = allocs() - run_a0;
            let cycles = sys.cycle() - start_cycle;
            let hot = sys.hot_profile().expect("profile armed");

            // The arena path's setup lap: recycle the finished system
            // for the same cell (scheme box + traces are rebuilt,
            // everything else reuses its buffers) and prewarm, exactly
            // what `run_one_pooled` does per cell.
            let reset_t0 = Instant::now();
            let reset_a0 = allocs();
            sys.reset_for_cell(spec.build(&cfg), make_traces(&cfg, &profile, seed));
            sys.prewarm();
            let setup_reset_secs = reset_t0.elapsed().as_secs_f64();
            let setup_reset_allocs = allocs() - reset_a0;
            (
                secs,
                (
                    cycles,
                    hot,
                    run_allocs,
                    setup_fresh_secs,
                    setup_fresh_allocs,
                    setup_reset_secs,
                    setup_reset_allocs,
                ),
            )
        };
        let best = measure::best_of(reps, &mut [&mut cell]);
        let (
            secs,
            (
                cycles,
                hot,
                run_allocs,
                setup_fresh_secs,
                setup_fresh_allocs,
                setup_reset_secs,
                setup_reset_allocs,
            ),
        ) = best[0];

        let total_nanos = secs * 1e9;
        let accounted = hot.cpu_nanos + hot.cache_nanos + hot.dcache_nanos + hot.dram_nanos;
        let other_nanos = (total_nanos as u64).saturating_sub(accounted);
        let cps = cycles as f64 / secs;
        println!(
            "{:<10} {:<10} {:>12} {:>12.0} {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%",
            spec.label(),
            profile.name,
            cycles,
            cps,
            pct(hot.cpu_nanos, total_nanos),
            pct(hot.cache_nanos, total_nanos),
            pct(hot.dcache_nanos, total_nanos),
            pct(hot.dram_nanos, total_nanos),
            pct(other_nanos, total_nanos),
        );
        rows.push(Row {
            workload: profile.name.clone(),
            scheme: spec.label().to_string(),
            instructions,
            simulated_cycles: cycles,
            secs,
            cycles_per_sec: cps,
            dense_ticks: hot.dense_ticks,
            skips: hot.skips,
            skipped_cycles: hot.skipped_cycles,
            burst_ticks: hot.burst_ticks,
            cpu_nanos: hot.cpu_nanos,
            cache_nanos: hot.cache_nanos,
            dcache_nanos: hot.dcache_nanos,
            dram_nanos: hot.dram_nanos,
            other_nanos,
            setup_fresh_secs,
            setup_fresh_allocs,
            setup_reset_secs,
            setup_reset_allocs,
            run_allocs,
        });
    }

    println!("\nsetup lap (fresh construction vs arena recycle) and run allocations:");
    println!(
        "{:<10} {:<10} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "scheme", "workload", "fresh ms", "fresh alloc", "reset ms", "reset alloc", "run alloc"
    );
    for row in &rows {
        println!(
            "{:<10} {:<10} {:>10.2} {:>12} {:>10.2} {:>12} {:>12}",
            row.scheme,
            row.workload,
            row.setup_fresh_secs * 1e3,
            row.setup_fresh_allocs,
            row.setup_reset_secs * 1e3,
            row.setup_reset_allocs,
            row.run_allocs,
        );
    }
    save_json("hot_profile", &rows);
}
