// Regenerates Fig. 12 (per-class IPC vs number of PCSHRs).
use nomad_bench::{figs::pcshr_sweeps, save_json, Scale};

const COUNTS: &[usize] = &[1, 2, 4, 8, 16, 32];

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!(
        "fig12: 4 classes × {} PCSHR counts ({:?})",
        COUNTS.len(),
        scale
    );
    let rows = pcshr_sweeps::fig12(&scale, COUNTS);
    pcshr_sweeps::print_fig12(&rows, COUNTS);
    save_json("fig12", &rows);
}
