// Regenerates Fig. 2 (TDC vs TiD on high-MPMS workloads).
use nomad_bench::{figs::fig02, save_json, Scale};

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!("fig02: 6 workloads × 2 schemes ({:?})", scale);
    let rows = fig02::run(&scale);
    fig02::print(&rows);
    save_json("fig02", &rows);
}
