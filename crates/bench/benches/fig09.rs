// Regenerates Fig. 9 (IPC + DC access time, all schemes × workloads)
// and the paper's §IV-B.5 headline numbers.
use nomad_bench::{figs::fig09, save_json, Scale};

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!("fig09: 15 workloads × 5 schemes ({:?})", scale);
    let rows = fig09::run(&scale);
    fig09::print(&rows);
    save_json("fig09", &rows);
}
