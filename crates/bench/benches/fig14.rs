// Regenerates Fig. 14 (cact vs libq stall/tag latency vs PCSHRs).
use nomad_bench::{figs::pcshr_sweeps, save_json, Scale};

const COUNTS: &[usize] = &[4, 8, 16, 32];

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!(
        "fig14: 2 workloads × {} PCSHR counts ({:?})",
        COUNTS.len(),
        scale
    );
    let rows = pcshr_sweeps::fig14(&scale, COUNTS);
    pcshr_sweeps::print_fig14(&rows, COUNTS);
    save_json("fig14", &rows);
}
