// Ablation studies for the design decisions DESIGN.md calls out:
//
// 1. critical-data-first scheduling (P/PI in PCSHRs) on vs off;
// 2. page-copy-buffer servicing value (buffer hits save HBM trips);
// 3. FIFO fully-associative vs 16-way set-associative LRU DC miss
//    rates (the paper claims ~23% fewer misses for FIFO+full-assoc);
// 4. proactive batch eviction vs reactive (threshold-1) eviction.
use nomad_bench::{par, run_cell, save_json, Scale};
use nomad_cache::CacheArray;
use nomad_core::{NomadConfig, NomadScheme};
use nomad_dcache::CacheFrames;
use nomad_sim::{runner, NomadSpec, SchemeSpec};
use nomad_trace::{SyntheticTrace, TraceSource, WorkloadProfile};
use nomad_types::Pfn;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Ablation {
    name: String,
    workload: String,
    baseline_value: f64,
    ablated_value: f64,
    metric: String,
}

/// Ablation 1 + 2: critical-data-first off (which also removes most
/// buffer-hit servicing value for streaming workloads). Cells are
/// (workload, spec) pairs run across the sweep worker pool and paired
/// back up in submission order.
fn ablate_cdf(scale: &Scale, out: &mut Vec<Ablation>) {
    println!("\nAblation: critical-data-first scheduling (cact, libq)");
    let cells: Vec<(WorkloadProfile, SchemeSpec)> = ["cact", "libq"]
        .into_iter()
        .flat_map(|name| {
            let w = WorkloadProfile::by_name(name).expect("known");
            [
                SchemeSpec::Nomad,
                SchemeSpec::NomadWith(NomadSpec {
                    critical_data_first: false,
                    ..NomadSpec::default()
                }),
            ]
            .map(|spec| (w.clone(), spec))
        })
        .collect();
    let scale_v = *scale;
    let reports = par::run_cells_or_exit(scale.jobs, cells, |(w, spec), cancel| {
        run_cell(&scale_v, spec, w, cancel)
    });
    for pair in reports.chunks_exact(2) {
        let (on, off) = (&pair[0], &pair[1]);
        let name = on.workload.clone();
        println!(
            "  {name}: IPC {:.3} (CDF on) vs {:.3} (off); DC access {:.0} vs {:.0} cycles; buffer hits {:.1}% vs {:.1}%",
            on.ipc(),
            off.ipc(),
            on.dc_access_time(),
            off.dc_access_time(),
            on.buffer_hit_rate() * 100.0,
            off.buffer_hit_rate() * 100.0,
        );
        out.push(Ablation {
            name: "critical_data_first".into(),
            workload: name,
            baseline_value: on.ipc(),
            ablated_value: off.ipc(),
            metric: "ipc".into(),
        });
    }
}

/// Ablation 3: replacement-policy miss rates, trace-driven (no timing):
/// fully-associative FIFO pages vs a 16-way set-associative LRU page
/// cache of equal capacity.
fn ablate_fifo(scale: &Scale, out: &mut Vec<Ablation>) {
    println!("\nAblation: FIFO fully-associative vs 16-way LRU page cache (miss rates)");
    let cfg = scale.config();
    // A deliberately small page cache (1/8 of the DC) and a long trace
    // so capacity pressure, not cold misses, decides the outcome.
    let frames = (cfg.dc_frames() as usize / 8).max(512);
    let scale_v = *scale;
    let cfg_v = cfg.clone();
    let names = ["cact", "mcf", "pr", "bfs"];
    let miss_rates = par::run_cells_or_exit(scale.jobs, names.to_vec(), |name, cancel| {
        let cfg = &cfg_v;
        let w = WorkloadProfile::by_name(name).expect("known");
        let mut trace =
            SyntheticTrace::with_scale(&w, scale_v.seed, cfg.pages_per_gb, cfg.l3_reach_pages());
        let mut fifo = CacheFrames::new(frames);
        let mut fifo_map = std::collections::HashMap::new();
        let mut fifo_victims = Vec::new();
        let mut lru = CacheArray::new((frames / 16).next_power_of_two(), 16);
        let (mut fifo_miss, mut lru_miss, mut total) = (0u64, 0u64, 0u64);
        for i in 0..scale_v.instructions * 8 {
            // The trace replay has no event loop to poll the token, so
            // check it directly every ~64k records.
            if i & 0xffff == 0 && cancel.is_cancelled() {
                return None;
            }
            let rec = trace.next_record();
            let page = rec.vaddr.raw() >> 12;
            total += 1;
            // FIFO fully-associative (the OS-managed organization).
            if !fifo_map.contains_key(&page) {
                fifo_miss += 1;
                if fifo.num_free() == 0 {
                    fifo_victims.clear();
                    fifo.evict_batch_into(64, &mut fifo_victims);
                    for e in &fifo_victims {
                        fifo_map.retain(|_, v| *v != e.cfn);
                    }
                }
                let (cfn, _) = fifo.allocate(Pfn(page)).expect("freed above");
                fifo_map.insert(page, cfn);
            }
            // 16-way LRU set-associative (the HW organization).
            if !lru.touch(page) {
                lru_miss += 1;
                lru.insert(page, false);
            }
        }
        Some((
            fifo_miss as f64 / total as f64,
            lru_miss as f64 / total as f64,
        ))
    });
    for (name, (f, l)) in names.into_iter().zip(miss_rates) {
        println!(
            "  {name}: FIFO full-assoc miss {:.3}%, 16-way LRU miss {:.3}% ({:+.1}% relative)",
            f * 100.0,
            l * 100.0,
            (f / l - 1.0) * 100.0
        );
        out.push(Ablation {
            name: "fifo_vs_lru".into(),
            workload: name.into(),
            baseline_value: f,
            ablated_value: l,
            metric: "page_miss_rate".into(),
        });
    }
    println!("  (paper: FIFO + full associativity shows ~23% fewer DC misses than");
    println!("   a 16-way set-associative LRU cache on average)");
}

/// Ablation 4: proactive batched eviction vs reactive eviction.
fn ablate_evict(scale: &Scale, out: &mut Vec<Ablation>) {
    println!("\nAblation: proactive batch eviction vs reactive (threshold-1) eviction");
    let cfg = scale.config();
    // (workload, reactive?) cells; the reactive scheme needs knobs
    // `SchemeSpec` does not expose, so each cell builds its own scheme
    // inside the worker and goes through `run_custom_cancellable`.
    let cells: Vec<(WorkloadProfile, bool)> = ["cact", "libq"]
        .into_iter()
        .flat_map(|name| {
            let w = WorkloadProfile::by_name(name).expect("known");
            [(w.clone(), false), (w, true)]
        })
        .collect();
    let scale_v = *scale;
    let cfg_v = cfg.clone();
    let reports = par::run_cells_or_exit(scale.jobs, cells, |(w, reactive), cancel| {
        if *reactive {
            let mut reactive_cfg = NomadConfig::nomad(cfg_v.dc_capacity);
            reactive_cfg.eviction_threshold = 1;
            reactive_cfg.eviction_batch = 1;
            runner::run_custom_cancellable(
                &cfg_v,
                Box::new(NomadScheme::new(reactive_cfg)),
                w,
                scale_v.instructions,
                scale_v.warmup,
                scale_v.seed,
                cancel,
            )
        } else {
            run_cell(&scale_v, &SchemeSpec::Nomad, w, cancel)
        }
    });
    for pair in reports.chunks_exact(2) {
        let (pro, rea) = (&pair[0], &pair[1]);
        let name = pro.workload.clone();
        println!(
            "  {name}: IPC {:.3} (proactive) vs {:.3} (reactive); tag latency {:.0} vs {:.0}",
            pro.ipc(),
            rea.ipc(),
            pro.tag_mgmt_latency(),
            rea.tag_mgmt_latency(),
        );
        out.push(Ablation {
            name: "proactive_eviction".into(),
            workload: name,
            baseline_value: pro.ipc(),
            ablated_value: rea.ipc(),
            metric: "ipc".into(),
        });
    }
}

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!("ablations ({scale:?})");
    let mut out = Vec::new();
    ablate_cdf(&scale, &mut out);
    ablate_fifo(&scale, &mut out);
    ablate_evict(&scale, &mut out);
    save_json("ablations", &out);
}
