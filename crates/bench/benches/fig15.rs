// Regenerates Fig. 15 (area-optimized (n PCSHRs, m buffers) designs).
use nomad_bench::{figs::fig15, save_json, Scale};

const GRID: &[(usize, usize)] = &[(8, 8), (16, 8), (32, 8), (16, 16), (32, 16), (32, 32)];

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!(
        "fig15: 2 workloads × {} (n,m) points ({:?})",
        GRID.len(),
        scale
    );
    let rows = fig15::run(&scale, GRID);
    fig15::print(&rows);
    save_json("fig15", &rows);
}
