// Sweep-executor speed harness: wall-clock time for the full Fig. 9
// grid (15 workloads × 5 schemes), sequential oracle (`jobs = 1`) vs
// the parallel executor.
//
// Both modes run the *same* `figs::sweep` path — only the worker count
// differs — and the harness asserts the two row vectors serialize
// byte-identically before reporting a speedup, so a number is never
// published for a divergent sweep.
//
// ```text
// cargo run --release -p nomad-bench --bin sweep_speed
// ```
//
// Scale knobs: `NOMAD_INSTR` (default 12 000 measured instructions —
// smaller than the figure harnesses' default so the timing loop stays
// snappy), `NOMAD_WARMUP` (default 3 000), `NOMAD_CORES` (default 8),
// `NOMAD_SEED` (default 42), `NOMAD_REPS` (default 2 — each mode is
// timed that many times, interleaved, and the best time kept),
// `NOMAD_JOBS` (parallel-mode worker count; default: available
// parallelism).

use nomad_bench::{apply_perf_gate, figs, load_json, measure, par, save_json, Scale};
use nomad_sim::SchemeSpec;
use nomad_trace::WorkloadProfile;
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Serialize, Deserialize)]
struct SweepSpeed {
    cells: usize,
    sim_cores: usize,
    instructions: u64,
    warmup: u64,
    seed: u64,
    reps: u64,
    host_threads: usize,
    jobs: usize,
    seq_secs: f64,
    par_secs: f64,
    speedup: f64,
    rows_identical: bool,
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    nomad_bench::harness_init();
    let scale = Scale {
        instructions: env_u64("NOMAD_INSTR", 12_000),
        warmup: env_u64("NOMAD_WARMUP", 3_000),
        cores: env_u64("NOMAD_CORES", 8) as usize,
        seed: env_u64("NOMAD_SEED", 42),
        jobs: par::jobs_from_env(),
    };
    let reps = env_u64("NOMAD_REPS", 2).max(1);
    let specs = SchemeSpec::fig9_set();
    let workloads = WorkloadProfile::all();
    let cells = specs.len() * workloads.len();
    let host_threads = par::default_jobs();

    println!(
        "sweep-executor speed: fig09 grid, {} cells ({} workloads x {} schemes), \
         {} instr + {} warmup per core, {} sim cores, seed {}",
        cells,
        workloads.len(),
        specs.len(),
        scale.instructions,
        scale.warmup,
        scale.cores,
        scale.seed
    );
    println!(
        "host threads {}, parallel jobs {}, best of {} rep(s) per mode",
        host_threads, scale.jobs, reps
    );

    // Interleaved best-of-reps (see `nomad_bench::measure`): the two
    // modes alternate so frequency scaling and scheduler noise hit
    // both sides evenly.
    let mut seq_rep = 0;
    let mut seq_mode = || {
        seq_rep += 1;
        eprintln!("— rep {seq_rep} / {reps}: sequential (jobs=1)");
        let t0 = Instant::now();
        let rows = figs::sweep(&scale.with_jobs(1), &specs, &workloads);
        (t0.elapsed().as_secs_f64(), rows)
    };
    let mut par_rep = 0;
    let mut par_mode = || {
        par_rep += 1;
        eprintln!("— rep {par_rep} / {reps}: parallel (jobs={})", scale.jobs);
        let t0 = Instant::now();
        let rows = figs::sweep(&scale, &specs, &workloads);
        (t0.elapsed().as_secs_f64(), rows)
    };
    let mut best = measure::best_of(reps, &mut [&mut seq_mode, &mut par_mode]);
    let (par_secs, par_rows) = best.pop().expect("two modes");
    let (seq_secs, seq_rows) = best.pop().expect("two modes");
    let seq_json = serde_json::to_string(&seq_rows).expect("plain data");
    let par_json = serde_json::to_string(&par_rows).expect("plain data");
    assert_eq!(
        seq_json, par_json,
        "parallel sweep diverged from the sequential oracle"
    );

    let speedup = seq_secs / par_secs;
    println!("\n{:<24} {:>10} {:>14}", "mode", "secs", "cells/sec");
    println!(
        "{:<24} {:>10.2} {:>14.2}",
        "sequential (jobs=1)",
        seq_secs,
        cells as f64 / seq_secs
    );
    println!(
        "{:<24} {:>10.2} {:>14.2}",
        format!("parallel (jobs={})", scale.jobs),
        par_secs,
        cells as f64 / par_secs
    );
    println!("speedup: {speedup:.2}x (rows byte-identical)");

    // Comparison against the committed baseline artifact (if any).
    // Wall-clock and host-dependent, so informational by default;
    // `NOMAD_PERF_GATE_PCT` (CI: 25) turns a drop past the threshold
    // into a failure.
    let mut deltas = Vec::new();
    if let Some(base) = load_json::<SweepSpeed>("sweep_speed") {
        if base.cells == cells && base.instructions == scale.instructions {
            let base_cps = base.cells as f64 / base.par_secs;
            let cps = cells as f64 / par_secs;
            let delta = (cps / base_cps - 1.0) * 100.0;
            println!(
                "cells/sec vs committed results/sweep_speed.json (parallel): \
                 {base_cps:.2} -> {cps:.2} ({delta:+.1}%)"
            );
            deltas.push(("sweep cells/sec (parallel)".to_string(), delta));
        } else {
            println!(
                "committed results/sweep_speed.json ran a different scale \
                 ({} cells, {} instr); skipping the delta",
                base.cells, base.instructions
            );
        }
    }

    save_json(
        "sweep_speed",
        &SweepSpeed {
            cells,
            sim_cores: scale.cores,
            instructions: scale.instructions,
            warmup: scale.warmup,
            seed: scale.seed,
            reps,
            host_threads,
            jobs: scale.jobs,
            seq_secs,
            par_secs,
            speedup,
            rows_identical: true,
        },
    );
    apply_perf_gate(&deltas);
}
