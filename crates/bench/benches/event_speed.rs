// Event-kernel speed harness: simulated cycles per wall-clock second,
// dense tick loop vs next-event kernel.
//
// Runs every scheme on one low-RMHB workload (`tc`, mostly
// cache-resident) and one high-RMHB workload (`mcf`, heavy miss
// traffic), timing the measured phase of each run under both
// [`System::run_dense`] and the event-driven [`System::run`]. The
// OS-blocking schemes (Baseline, TDC) are where skipping pays most:
// their fault handlers stall cores for thousands of cycles with the
// DRAM devices idle. The two paths must land on the same final cycle
// (the skip-parity suite checks full report equality; this harness
// re-asserts the cheap invariant so a speed number is never reported
// for a divergent run).
//
// ```text
// cargo run --release -p nomad-bench --bin event_speed
// ```
//
// Scale knobs: `NOMAD_INSTR` (default 200 000 measured instructions),
// `NOMAD_WARMUP` (default 20 000), `NOMAD_SEED` (default 42),
// `NOMAD_REPS` (default 3 — each mode is timed that many times and
// the best time kept, to shed scheduler/frequency noise); one core,
// the 4 MiB DRAM-cache configuration the parity suite uses.

use nomad_bench::{apply_perf_gate, load_json, measure, save_json};
use nomad_sim::{SchemeSpec, System, SystemConfig};
use nomad_trace::{SyntheticTrace, TraceSource, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Serialize, Deserialize)]
struct Row {
    workload: String,
    scheme: String,
    instructions: u64,
    simulated_cycles: u64,
    dense_secs: f64,
    dense_cycles_per_sec: f64,
    event_secs: f64,
    event_cycles_per_sec: f64,
    speedup: f64,
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build(cfg: &SystemConfig, spec: &SchemeSpec, profile: &WorkloadProfile, seed: u64) -> System {
    let traces: Vec<Box<dyn TraceSource>> = (0..cfg.cores)
        .map(|i| {
            Box::new(SyntheticTrace::with_scale(
                profile,
                seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
                cfg.pages_per_gb,
                cfg.l3_reach_pages(),
            )) as Box<dyn TraceSource>
        })
        .collect();
    let mut sys = System::new(cfg.clone(), spec.build(cfg), traces);
    sys.prewarm();
    sys
}

/// Warm up, reset stats, then time the measured phase. Returns the
/// simulated cycles of the measured phase and the wall seconds spent.
fn timed_run(sys: &mut System, dense: bool, warmup: u64, instructions: u64) -> (u64, f64) {
    if dense {
        sys.run_dense(warmup);
    } else {
        sys.run(warmup);
    }
    sys.reset_stats();
    let start_cycle = sys.cycle();
    let t0 = Instant::now();
    if dense {
        sys.run_dense(instructions);
    } else {
        sys.run(instructions);
    }
    (sys.cycle() - start_cycle, t0.elapsed().as_secs_f64())
}

fn main() {
    nomad_bench::harness_init();
    let instructions = env_u64("NOMAD_INSTR", 200_000);
    let warmup = env_u64("NOMAD_WARMUP", 20_000);
    let seed = env_u64("NOMAD_SEED", 42);
    let reps = env_u64("NOMAD_REPS", 3).max(1);
    let mut cfg = SystemConfig::scaled(1);
    cfg.dc_capacity = 4 * 1024 * 1024;

    let mut rows = Vec::new();
    println!(
        "event-kernel speed ({} instr, {} warmup, seed {}, best of {})",
        instructions, warmup, seed, reps
    );
    println!(
        "{:<10} {:<10} {:>14} {:>12} {:>12} {:>8}",
        "scheme", "workload", "sim cycles", "dense c/s", "event c/s", "speedup"
    );
    for (spec, profile) in [
        SchemeSpec::Baseline,
        SchemeSpec::Tid,
        SchemeSpec::Tdc,
        SchemeSpec::Nomad,
    ]
    .into_iter()
    .flat_map(|s| {
        [WorkloadProfile::tc(), WorkloadProfile::mcf()].map(|profile| (s.clone(), profile))
    }) {
        // Interleaved best-of-reps (see `nomad_bench::measure`): dense
        // and event mode alternate so frequency scaling and scheduler
        // noise hit both sides evenly. A cell that panics (e.g. a
        // scheme wedging into the simulator's deadlock detector at
        // very large NOMAD_INSTR) is reported and skipped, not fatal
        // to the rest of the matrix.
        let measured = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut dense_mode = || {
                let mut sys = build(&cfg, &spec, &profile, seed);
                let (cycles, secs) = timed_run(&mut sys, true, warmup, instructions);
                (secs, cycles)
            };
            let mut event_mode = || {
                let mut sys = build(&cfg, &spec, &profile, seed);
                let (cycles, secs) = timed_run(&mut sys, false, warmup, instructions);
                (secs, cycles)
            };
            let best = measure::best_of(reps, &mut [&mut dense_mode, &mut event_mode]);
            let [(dense_secs, dense_cycles), (event_secs, event_cycles)] = best[..] else {
                unreachable!("two modes in, two out");
            };
            (dense_cycles, event_cycles, dense_secs, event_secs)
        }));
        let Ok((dense_cycles, event_cycles, dense_secs, event_secs)) = measured else {
            println!(
                "{:<10} {:<10} {:>14}",
                spec.label(),
                profile.name,
                "panicked (skipped)"
            );
            continue;
        };

        assert_eq!(
            dense_cycles, event_cycles,
            "event kernel diverged from dense loop on {}",
            profile.name
        );

        let dense_cps = dense_cycles as f64 / dense_secs;
        let event_cps = event_cycles as f64 / event_secs;
        println!(
            "{:<10} {:<10} {:>14} {:>12.0} {:>12.0} {:>7.2}x",
            spec.label(),
            profile.name,
            dense_cycles,
            dense_cps,
            event_cps,
            dense_secs / event_secs
        );
        rows.push(Row {
            workload: profile.name.clone(),
            scheme: spec.label().to_string(),
            instructions,
            simulated_cycles: dense_cycles,
            dense_secs,
            dense_cycles_per_sec: dense_cps,
            event_secs,
            event_cycles_per_sec: event_cps,
            speedup: dense_secs / event_secs,
        });
    }
    // Comparison against the committed baseline artifact (if any):
    // wall-clock numbers are host-dependent, so by default the delta
    // is informational. With `NOMAD_PERF_GATE_PCT` set (CI: 25), a
    // drop past the threshold fails the run — a soft gate wide enough
    // for runner noise but narrow enough to catch real regressions.
    let mut deltas = Vec::new();
    if let Some(baseline) = load_json::<Vec<Row>>("event_speed") {
        println!("\ncycles/sec vs committed results/event_speed.json (event kernel):");
        for row in &rows {
            let Some(base) = baseline
                .iter()
                .find(|b| b.workload == row.workload && b.scheme == row.scheme)
            else {
                continue;
            };
            let delta = (row.event_cycles_per_sec / base.event_cycles_per_sec - 1.0) * 100.0;
            println!(
                "  {:<10} {:<10} {:>12.0} -> {:>12.0}  ({delta:+.1}%)",
                row.scheme, row.workload, base.event_cycles_per_sec, row.event_cycles_per_sec,
            );
            deltas.push((format!("event {}/{}", row.scheme, row.workload), delta));
        }
    }
    save_json("event_speed", &rows);
    apply_perf_gate(&deltas);
}
