// Regenerates Fig. 10 (on-package bandwidth breakdown + row hits).
use nomad_bench::{figs::fig10, save_json, Scale};

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!("fig10: 15 workloads × 3 schemes ({:?})", scale);
    let rows = fig10::run(&scale);
    fig10::print(&rows);
    save_json("fig10", &rows);
}
