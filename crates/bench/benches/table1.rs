// Regenerates Table I (workload characteristics under Ideal).
use nomad_bench::{figs::table1, save_json, Scale};

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!("table1: 15 workloads × Ideal ({:?})", scale);
    let rows = table1::run(&scale);
    table1::print(&rows);
    save_json("table1", &rows);
}
