// Regenerates Fig. 16 (centralized vs distributed back-ends).
use nomad_bench::{figs::fig16, save_json, Scale};

const TOTALS: &[usize] = &[4, 8, 16, 32];

fn main() {
    nomad_bench::harness_init();
    let scale = Scale::from_env();
    eprintln!(
        "fig16: 2 organizations × {} PCSHR totals ({:?})",
        TOTALS.len(),
        scale
    );
    let rows = fig16::run(&scale, TOTALS);
    fig16::print(&rows);
    save_json("fig16", &rows);
}
