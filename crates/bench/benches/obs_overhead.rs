// Observability cost harness: proves the layer's two-sided contract.
//
// * **Disabled is free.** With observability off (the default), the
//   simulation must be *byte-identical* to a never-instrumented run:
//   enabling obs for a run and stripping the attached series from its
//   report must reproduce the disabled report exactly. Any divergence
//   means instrumentation perturbed simulated behavior — a hard error.
// * **Enabled is cheap.** With observability on, wall-clock overhead
//   for a full cell must stay under the 2% budget (periodic registry
//   snapshots + span pushes, all behind relaxed atomics).
//
// ```text
// cargo bench -p nomad-bench --bench obs_overhead
// cargo run --release -p nomad-bench --bin obs_overhead
// ```
//
// Scale knobs: `NOMAD_INSTR` / `NOMAD_WARMUP` / `NOMAD_CORES` /
// `NOMAD_SEED` as usual, `NOMAD_REPS` (default 3) timing repetitions
// per mode (interleaved; best time kept). `NOMAD_OBS` must be *unset*:
// the environment variable overrides the in-process toggle this
// harness drives, so with it set both halves would run the same mode.

use nomad_bench::{measure, save_json, Scale};
use nomad_sim::SchemeSpec;
use nomad_trace::WorkloadProfile;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ObsOverhead {
    workload: String,
    scheme: String,
    instructions: u64,
    reps: usize,
    disabled_ms: f64,
    enabled_ms: f64,
    overhead_pct: f64,
    byte_identical: bool,
    snapshot_rows: usize,
}

fn main() {
    nomad_bench::harness_init();
    if std::env::var_os("NOMAD_OBS").is_some() {
        eprintln!(
            "obs_overhead: NOMAD_OBS is set; it overrides the in-process toggle this \
             harness drives. Unset it and re-run."
        );
        std::process::exit(2);
    }

    let scale = Scale::from_env();
    let reps: usize = std::env::var("NOMAD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let spec = SchemeSpec::Nomad;
    let profile = WorkloadProfile::mcf();
    eprintln!(
        "obs_overhead: mcf × NOMAD, {} instr, best of {reps} per mode",
        scale.instructions
    );

    // Untimed warm-up (allocator, page cache), then interleaved timed
    // repetitions (see `nomad_bench::measure`) so drift hits both
    // modes equally. The disabled mode carries no payload; the enabled
    // one carries its report (needed below for the stripping check),
    // so both return `Option<RunReport>`.
    nomad_obs::set_enabled(false);
    let disabled_report = nomad_bench::run(&scale, &spec, &profile);
    let mut disabled_mode = || {
        nomad_obs::set_enabled(false);
        let t = Instant::now();
        let r = nomad_bench::run(&scale, &spec, &profile);
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            r.to_json(),
            disabled_report.to_json(),
            "disabled runs must be deterministic"
        );
        (secs, None)
    };
    let mut enabled_mode = || {
        nomad_obs::set_enabled(true);
        let t = Instant::now();
        let r = nomad_bench::run(&scale, &spec, &profile);
        (t.elapsed().as_secs_f64(), Some(r))
    };
    let mut best = measure::best_of(reps as u64, &mut [&mut disabled_mode, &mut enabled_mode]);
    // Scheduler noise only ever *inflates* a sample, so the best-of
    // minimum tightens monotonically with more reps. If the estimate
    // is over budget, escalate with extra interleaved pairs before
    // declaring a real regression — this keeps the gate meaningful on
    // short runs and loaded CI machines.
    let mut escalations = 0;
    while best[1].0 / best[0].0 - 1.0 >= 0.02 && escalations < reps.max(1) * 4 {
        let fresh = measure::best_of(1, &mut [&mut disabled_mode, &mut enabled_mode]);
        measure::merge_best(&mut best, fresh);
        escalations += 1;
    }
    if escalations > 0 {
        eprintln!("obs_overhead: over budget after {reps} reps; ran {escalations} extra pairs");
    }
    nomad_obs::set_enabled(false);

    let disabled_best = best[0].0 * 1e3;
    let enabled_best = best[1].0 * 1e3;
    let enabled_report = best
        .pop()
        .expect("two modes")
        .1
        .expect("enabled mode carries its report");
    let series = enabled_report
        .obs
        .as_ref()
        .expect("enabled run must attach an obs series");
    let snapshot_rows = series.snapshots.matches("{\"cycle\":").count();

    // Strip the series: what remains must be byte-identical to the
    // disabled run — instrumentation may observe, never perturb.
    let mut stripped = enabled_report.clone();
    stripped.obs = None;
    let byte_identical = stripped.to_json() == disabled_report.to_json();
    assert!(
        byte_identical,
        "enabled run diverged from disabled run (instrumentation perturbed the simulation)"
    );

    let pairs = reps + escalations;
    let overhead_pct = (enabled_best / disabled_best - 1.0) * 100.0;
    println!("disabled : {disabled_best:9.2} ms (best of {pairs})");
    println!("enabled  : {enabled_best:9.2} ms (best of {pairs}, {snapshot_rows} snapshots)");
    println!("overhead : {overhead_pct:9.2} %   (budget: < 2%)");
    println!("reports  : byte-identical after stripping the obs series");

    save_json(
        "obs_overhead",
        &ObsOverhead {
            workload: disabled_report.workload.clone(),
            scheme: disabled_report.scheme.clone(),
            instructions: scale.instructions,
            reps: pairs,
            disabled_ms: disabled_best,
            enabled_ms: enabled_best,
            overhead_pct,
            byte_identical,
            snapshot_rows,
        },
    );

    if overhead_pct >= 2.0 {
        eprintln!("obs_overhead: FAIL — overhead {overhead_pct:.2}% exceeds the 2% budget");
        std::process::exit(1);
    }
    println!("obs_overhead: PASS");
}
