// Prints Table II (system configuration self-check).
use nomad_bench::{figs::table2, save_json, Scale};

fn main() {
    nomad_bench::harness_init();
    let cfg = Scale::from_env().config();
    table2::print(&cfg);
    save_json("table2", &cfg);
}
