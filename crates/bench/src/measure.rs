//! Interleaved best-of-N measurement, shared by the speed harnesses.
//!
//! Every speed harness in this crate compares two or more *modes* of
//! running the same deterministic work (dense vs event kernel,
//! sequential vs parallel sweep, observability off vs on). Wall-clock
//! noise — frequency scaling, scheduler preemption, thermal drift —
//! only ever *inflates* a sample, so the right estimator is the
//! minimum over repetitions; and because drift is correlated in time,
//! the modes must be **interleaved** (A B A B …), never phased
//! (A A B B), or a mid-run frequency step charges all of its cost to
//! one side. This module is that loop, written once.

/// Run every mode once per repetition, in order, and keep each mode's
/// best (minimum) reported wall-seconds together with the payload of
/// that best repetition.
///
/// Each mode measures itself — it returns `(secs, payload)` — so
/// untimed per-rep work (building a system, warming up) stays outside
/// the number. With `reps == 0` one repetition still runs, so the
/// result is never empty.
pub fn best_of<R>(reps: u64, modes: &mut [&mut dyn FnMut() -> (f64, R)]) -> Vec<(f64, R)> {
    let mut best: Vec<Option<(f64, R)>> = modes.iter().map(|_| None).collect();
    for _ in 0..reps.max(1) {
        for (slot, mode) in best.iter_mut().zip(modes.iter_mut()) {
            let (secs, payload) = mode();
            let keep = match slot.take() {
                Some((prev_secs, prev)) if prev_secs <= secs => (prev_secs, prev),
                _ => (secs, payload),
            };
            *slot = Some(keep);
        }
    }
    best.into_iter()
        .map(|slot| slot.expect("at least one repetition ran"))
        .collect()
}

/// Merge a later [`best_of`] pass into an earlier one, mode by mode:
/// keep whichever repetition was faster. The escalation loops use this
/// to tighten estimates with extra interleaved pairs.
pub fn merge_best<R>(acc: &mut [(f64, R)], fresh: Vec<(f64, R)>) {
    for (slot, (secs, payload)) in acc.iter_mut().zip(fresh) {
        if secs < slot.0 {
            *slot = (secs, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_minimum_and_its_payload() {
        let mut times_a = [3.0, 1.0, 2.0].into_iter();
        let mut times_b = [5.0, 6.0, 4.0].into_iter();
        let mut tag_a = 0;
        let mut tag_b = 0;
        let mut a = || {
            tag_a += 1;
            (times_a.next().unwrap(), tag_a)
        };
        let mut b = || {
            tag_b += 1;
            (times_b.next().unwrap(), tag_b)
        };
        let got = best_of(3, &mut [&mut a, &mut b]);
        // Mode A's best was rep 2 (1.0), mode B's was rep 3 (4.0).
        assert_eq!(got, vec![(1.0, 2), (4.0, 3)]);
    }

    #[test]
    fn zero_reps_still_runs_once() {
        let mut calls = 0;
        let mut m = || {
            calls += 1;
            (1.0, ())
        };
        let got = best_of(0, &mut [&mut m]);
        assert_eq!(got.len(), 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn interleaves_rather_than_phases() {
        // Record global call order: must be A B A B, not A A B B.
        let order = std::cell::RefCell::new(Vec::new());
        let mut a = || {
            order.borrow_mut().push('a');
            (1.0, ())
        };
        let mut b = || {
            order.borrow_mut().push('b');
            (1.0, ())
        };
        best_of(2, &mut [&mut a, &mut b]);
        assert_eq!(*order.borrow(), vec!['a', 'b', 'a', 'b']);
    }

    #[test]
    fn merge_keeps_faster_side() {
        let mut acc = vec![(2.0, 'x'), (1.0, 'y')];
        merge_best(&mut acc, vec![(1.5, 'p'), (3.0, 'q')]);
        assert_eq!(acc, vec![(1.5, 'p'), (1.0, 'y')]);
    }
}
