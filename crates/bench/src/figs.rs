//! One module per table/figure of the paper's evaluation. Each
//! exposes `run(&Scale)` returning serializable rows plus a
//! `print(&rows)` that renders the table the paper reports.

use crate::journal::run_cells_journaled_or_exit;
use crate::par;
use crate::{geomean, hr, run_cell, run_with_cfg_cell, Scale};
use nomad_sim::{RunReport, SchemeSpec};
use nomad_trace::{WorkloadClass, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// A content-derived journal key for a sweep grid: everything that
/// determines the rows — the harness tag, the scale parameters, and a
/// descriptor of the grid axes (scheme labels, workload names, sweep
/// parameters) — goes in, so a changed grid never resumes from a stale
/// journal. `scale.jobs` deliberately stays out: an interrupted wide
/// sweep may resume at any width (results are width-independent).
fn grid_key(tag: &str, scale: &Scale, axes: &[String]) -> String {
    format!(
        "{tag}:i{}w{}c{}s{}:{}",
        scale.instructions,
        scale.warmup,
        scale.cores,
        scale.seed,
        axes.join(",")
    )
}

/// A generic result row: one (workload × scheme) measurement with the
/// metrics every figure draws from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Workload abbreviation.
    pub workload: String,
    /// Workload class.
    pub class: String,
    /// Scheme name.
    pub scheme: String,
    /// Instructions per cycle (per-core average).
    pub ipc: f64,
    /// Mean DC access time at the controller (cycles).
    pub dc_access_time: f64,
    /// Mean tag-management latency (cycles).
    pub tag_mgmt_latency: f64,
    /// OS stall-cycle ratio.
    pub os_stall_ratio: f64,
    /// Memory (non-OS) stall-cycle ratio.
    pub mem_stall_ratio: f64,
    /// RMHB in GB/s.
    pub rmhb_gbps: f64,
    /// LLC misses per microsecond.
    pub llc_mpms: f64,
    /// On-package bandwidth per class, GB/s:
    /// [demand_rd, demand_wr, metadata, fill, writeback].
    pub hbm_gbps: [f64; 5],
    /// On-package row-buffer hit rate.
    pub hbm_row_hit: f64,
    /// Off-package total bandwidth, GB/s.
    pub ddr_gbps: f64,
    /// Page-copy-buffer hit rate among data misses.
    pub buffer_hit_rate: f64,
}

impl Row {
    /// Build a row from a report.
    pub fn from_report(r: &RunReport, class: &str) -> Self {
        use nomad_types::TrafficClass as T;
        Row {
            workload: r.workload.clone(),
            class: class.to_string(),
            scheme: r.scheme.clone(),
            ipc: r.ipc(),
            dc_access_time: r.dc_access_time(),
            tag_mgmt_latency: r.tag_mgmt_latency(),
            os_stall_ratio: r.os_stall_ratio(),
            mem_stall_ratio: r.mem_stall_ratio(),
            rmhb_gbps: r.rmhb_gbps(),
            llc_mpms: r.llc_mpms(),
            hbm_gbps: [
                r.hbm_class_gbps(T::DemandRead),
                r.hbm_class_gbps(T::DemandWrite),
                r.hbm_class_gbps(T::Metadata),
                r.hbm_class_gbps(T::Fill),
                r.hbm_class_gbps(T::Writeback),
            ],
            hbm_row_hit: r.hbm_row_hit_rate(),
            ddr_gbps: r.ddr_total_gbps(),
            buffer_hit_rate: r.buffer_hit_rate(),
        }
    }
}

/// Run `specs × workloads` and collect rows — across `scale.jobs`
/// worker threads, with results in `workloads × specs` submission
/// order, so the output is byte-identical at every job count (the
/// `par_parity` suite holds this against the `jobs == 1` oracle).
pub fn sweep(scale: &Scale, specs: &[SchemeSpec], workloads: &[WorkloadProfile]) -> Vec<Row> {
    let cells: Vec<(WorkloadProfile, SchemeSpec)> = workloads
        .iter()
        .flat_map(|w| specs.iter().map(move |spec| (w.clone(), spec.clone())))
        .collect();
    let axes: Vec<String> = specs
        .iter()
        .map(|s| s.label().to_string())
        .chain(workloads.iter().map(|w| w.name.clone()))
        .collect();
    let key = grid_key("sweep", scale, &axes);
    let scale = *scale;
    run_cells_journaled_or_exit(scale.jobs, &key, cells, |(w, spec), cancel| {
        let r = run_cell(&scale, spec, w, cancel)?;
        let row = Row::from_report(&r, w.class.label());
        eprintln!("  [{}/{}] ipc {:.3}", w.name, spec.label(), row.ipc);
        Some(row)
    })
}

/// Like [`sweep`], but submits the whole grid through a running
/// nomad-serve instance at `addr` (one cell per job, results in the
/// same `workloads × specs` order). `scale.jobs` bounds the number of
/// concurrent client connections (the server's own `--workers` count
/// still decides how many cells actually simulate at once), and the
/// shared sweep cancellation token makes a serve-side failure — e.g. a
/// job that blew the server's wall-clock budget — wind down the
/// remaining submissions instead of pushing the rest of a doomed grid.
/// Repeated invocations against the same server reuse its
/// content-addressed result cache, so regenerating a figure after a
/// partial run only pays for the cells that changed — the service-side
/// analogue of the local sweep journal, which is why this path does
/// not journal locally. An unreachable or mid-grid-dying server is
/// not fatal: the client reconnects with backoff and, past its budget,
/// degrades to local in-process execution (see
/// `nomad_serve::ClientConfig`), so the rows still come back
/// byte-identical.
pub fn sweep_via_service(
    addr: &str,
    scale: &Scale,
    specs: &[SchemeSpec],
    workloads: &[WorkloadProfile],
) -> Vec<Row> {
    let cells: Vec<nomad_sim::runner::Cell> = workloads
        .iter()
        .flat_map(|w| {
            specs.iter().map(|spec| nomad_sim::runner::Cell {
                cfg: scale.config(),
                spec: spec.clone(),
                profile: w.clone(),
                instructions: scale.instructions,
                warmup: scale.warmup,
                seed: scale.seed,
            })
        })
        .collect();
    let reports = match nomad_serve::run_grid_via_jobs(addr, cells, scale.jobs, par::sweep_token())
    {
        Ok(reports) => reports,
        Err(e) if par::sweep_token().is_cancelled() => {
            eprintln!("sweep cancelled during service submission ({e}); discarding partial grid");
            std::process::exit(130);
        }
        Err(e) => panic!("grid submission to nomad-serve at {addr} failed: {e}"),
    };
    let mut rows = Vec::new();
    let mut it = reports.iter();
    for w in workloads {
        for spec in specs {
            let r = it.next().expect("one report per cell");
            rows.push(Row::from_report(r, w.class.label()));
            eprintln!(
                "  [{}/{}] ipc {:.3} (via service)",
                w.name,
                spec.label(),
                r.ipc()
            );
        }
    }
    rows
}

/// Like [`sweep_via_service`], but shards the grid across a whole
/// fleet of nomad-serve nodes via `nomad_fleet::run_grid_via_fleet`:
/// each cell routes to its consistent-hash owner, any node's cache can
/// answer it (probe before compute), idle workers steal from
/// stragglers, and a dead node's arc fails over to the survivors (past
/// the last node the cells degrade to in-process execution). Same
/// oracle as every other path: rows come back byte-identical to the
/// local sweep at any fleet size and any `scale.jobs`.
pub fn sweep_via_fleet(
    addrs: &[String],
    scale: &Scale,
    specs: &[SchemeSpec],
    workloads: &[WorkloadProfile],
) -> Vec<Row> {
    let cells: Vec<nomad_sim::runner::Cell> = workloads
        .iter()
        .flat_map(|w| {
            specs.iter().map(|spec| nomad_sim::runner::Cell {
                cfg: scale.config(),
                spec: spec.clone(),
                profile: w.clone(),
                instructions: scale.instructions,
                warmup: scale.warmup,
                seed: scale.seed,
            })
        })
        .collect();
    let reports =
        match nomad_fleet::run_grid_via_fleet(addrs, cells, scale.jobs, par::sweep_token()) {
            Ok(reports) => reports,
            Err(e) if par::sweep_token().is_cancelled() => {
                eprintln!("sweep cancelled during fleet submission ({e}); discarding partial grid");
                std::process::exit(130);
            }
            Err(e) => panic!("grid submission to the fleet {addrs:?} failed: {e}"),
        };
    let mut rows = Vec::new();
    let mut it = reports.iter();
    for w in workloads {
        for spec in specs {
            let r = it.next().expect("one report per cell");
            rows.push(Row::from_report(r, w.class.label()));
            eprintln!(
                "  [{}/{}] ipc {:.3} (via fleet)",
                w.name,
                spec.label(),
                r.ipc()
            );
        }
    }
    rows
}

/// `sweep` locally; via a nomad-serve fleet when `NOMAD_FLEET_ADDRS`
/// is set (comma/whitespace-separated addresses — the line the
/// `nomad-fleet local N` coordinator prints); or via a single
/// nomad-serve instance when only `NOMAD_SERVE_ADDR` is set. The fleet
/// takes precedence over the single server.
pub fn sweep_maybe_serviced(
    scale: &Scale,
    specs: &[SchemeSpec],
    workloads: &[WorkloadProfile],
) -> Vec<Row> {
    if let Ok(raw) = std::env::var("NOMAD_FLEET_ADDRS") {
        let addrs = nomad_fleet::parse_addrs(&raw);
        if !addrs.is_empty() {
            return sweep_via_fleet(&addrs, scale, specs, workloads);
        }
    }
    match std::env::var("NOMAD_SERVE_ADDR") {
        Ok(addr) if !addr.is_empty() => sweep_via_service(&addr, scale, specs, workloads),
        _ => sweep(scale, specs, workloads),
    }
}

/// Table I — workload characteristics under the ideal OS-managed
/// configuration.
pub mod table1 {
    use super::*;

    /// One Table I row.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct T1Row {
        /// Class label.
        pub class: String,
        /// Abbreviation.
        pub abbr: String,
        /// Full benchmark name.
        pub workload: String,
        /// Measured RMHB (GB/s).
        pub rmhb_gbps: f64,
        /// Paper-reported RMHB (GB/s).
        pub paper_rmhb: f64,
        /// Measured LLC MPMS.
        pub llc_mpms: f64,
        /// Paper-reported LLC MPMS.
        pub paper_mpms: f64,
        /// Scaled footprint (MB) used by the generator config.
        pub footprint_mb: f64,
        /// Paper footprint (GB).
        pub paper_footprint_gb: f64,
    }

    /// Measure all 15 workloads under the Ideal scheme (one parallel
    /// cell per workload).
    pub fn run(scale: &Scale) -> Vec<T1Row> {
        let cfg = scale.config();
        let workloads = WorkloadProfile::all();
        let axes: Vec<String> = workloads.iter().map(|w| w.name.clone()).collect();
        let key = grid_key("table1", scale, &axes);
        let scale = *scale;
        run_cells_journaled_or_exit(scale.jobs, &key, workloads, |w, cancel| {
            let r = run_with_cfg_cell(&cfg, &scale, &SchemeSpec::Ideal, w, cancel)?;
            eprintln!("  [{}] rmhb {:.1}", w.name, r.rmhb_gbps());
            let d = w.derive(cfg.pages_per_gb, cfg.l3_reach_pages());
            Some(T1Row {
                class: w.class.label().to_string(),
                abbr: w.name.clone(),
                workload: w.full_name.clone(),
                rmhb_gbps: r.rmhb_gbps(),
                paper_rmhb: w.rmhb_gbps,
                llc_mpms: r.llc_mpms(),
                paper_mpms: w.llc_mpms,
                footprint_mb: d.footprint_pages as f64 * 4096.0 / 1e6,
                paper_footprint_gb: w.footprint_gb,
            })
        })
    }

    /// Print the table.
    pub fn print(rows: &[T1Row]) {
        println!("\nTable I: Workload characteristics (measured under Ideal vs paper)");
        hr(86);
        println!(
            "{:<7} {:<6} {:<12} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "Class", "Abbr", "Workload", "RMHB", "(paper)", "MPMS", "(paper)", "footprint"
        );
        hr(86);
        for r in rows {
            println!(
                "{:<7} {:<6} {:<12} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>9.0} MB",
                r.class,
                r.abbr,
                r.workload,
                r.rmhb_gbps,
                r.paper_rmhb,
                r.llc_mpms,
                r.paper_mpms,
                r.footprint_mb
            );
        }
        hr(86);
    }
}

/// Table II — system configuration self-check (config dump).
pub mod table2 {
    use super::*;
    use nomad_sim::SystemConfig;

    /// Print the active configuration in Table II style.
    pub fn print(cfg: &SystemConfig) {
        println!("\nTable II: System and DRAM configuration (scaled reproduction)");
        hr(72);
        println!(
            "CPU           {} cores @ {:.1} GHz, {}-wide, ROB {}",
            cfg.cores, cfg.clock_ghz, cfg.core.fetch_width, cfg.core.rob_size
        );
        println!(
            "L1D           {} KiB {}-way, {} cycles, {} MSHRs",
            cfg.l1.size_bytes / 1024,
            cfg.l1.assoc,
            cfg.l1.hit_latency,
            cfg.l1.mshrs
        );
        println!(
            "L2            {} KiB {}-way, {} cycles, {} MSHRs",
            cfg.l2.size_bytes / 1024,
            cfg.l2.assoc,
            cfg.l2.hit_latency,
            cfg.l2.mshrs
        );
        println!(
            "L3 (shared)   {} KiB {}-way, {} cycles, {} MSHRs",
            cfg.l3.size_bytes / 1024,
            cfg.l3.assoc,
            cfg.l3.hit_latency,
            cfg.l3.mshrs
        );
        println!(
            "TLBs          L1 {} / L2 {} entries, walk {} cycles",
            cfg.tlb.l1_entries, cfg.tlb.l2_entries, cfg.tlb.walk_latency
        );
        println!(
            "DRAM cache    {} MiB ({} frames of 4 KiB)",
            cfg.dc_capacity / (1 << 20),
            cfg.dc_frames()
        );
        println!(
            "On-package    {}: {} ch x {} banks, {:.1} GB/s peak",
            cfg.hbm.name,
            cfg.hbm.channels,
            cfg.hbm.banks_per_channel,
            cfg.hbm.peak_gbps()
        );
        println!(
            "Off-package   {}: {} ch x {} banks, {:.1} GB/s peak",
            cfg.ddr.name,
            cfg.ddr.channels,
            cfg.ddr.banks_per_channel,
            cfg.ddr.peak_gbps()
        );
        println!("Workload scale  {} pages per paper-GB", cfg.pages_per_gb);
        hr(72);
    }
}

/// Fig. 2 — IPC of TDC relative to TiD for the high-MPMS workloads.
pub mod fig02 {
    use super::*;

    /// One Fig. 2 point.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct F2Row {
        /// Workload.
        pub workload: String,
        /// TDC IPC / TiD IPC.
        pub tdc_over_tid: f64,
        /// Required miss-handling bandwidth (GB/s, measured).
        pub rmhb_gbps: f64,
    }

    /// Run the six-workload comparison (one parallel cell per
    /// workload × scheme, paired back up in submission order). Each
    /// cell journals only the `[ipc, rmhb]` pair it contributes — the
    /// full `RunReport` is not serializable, and the pairing below
    /// needs nothing more.
    pub fn run(scale: &Scale) -> Vec<F2Row> {
        let set = WorkloadProfile::fig2_set();
        let cells: Vec<(WorkloadProfile, SchemeSpec)> = set
            .iter()
            .flat_map(|w| [SchemeSpec::Tdc, SchemeSpec::Tid].map(|spec| (w.clone(), spec)))
            .collect();
        let axes: Vec<String> = set.iter().map(|w| w.name.clone()).collect();
        let key = grid_key("fig02", scale, &axes);
        let scale = *scale;
        let measured: Vec<[f64; 2]> =
            run_cells_journaled_or_exit(scale.jobs, &key, cells, |(w, spec), cancel| {
                let r = run_cell(&scale, spec, w, cancel)?;
                eprintln!("  [{}/{}] ipc {:.3}", w.name, spec.label(), r.ipc());
                Some([r.ipc(), r.rmhb_gbps()])
            });
        set.iter()
            .zip(measured.chunks_exact(2))
            .map(|(w, pair)| {
                let (tdc, tid) = (&pair[0], &pair[1]);
                eprintln!("  [{}] tdc/tid {:.2}", w.name, tdc[0] / tid[0]);
                F2Row {
                    workload: w.name.clone(),
                    tdc_over_tid: tdc[0] / tid[0],
                    rmhb_gbps: tdc[1],
                }
            })
            .collect()
    }

    /// Print the series.
    pub fn print(rows: &[F2Row]) {
        println!("\nFig. 2: IPC of the blocking OS-managed scheme (TDC) relative to");
        println!("the HW-based scheme (TiD), with required miss-handling bandwidth");
        hr(56);
        println!("{:<8} {:>14} {:>18}", "wl", "TDC IPC / TiD", "RMHB (GB/s)");
        hr(56);
        for r in rows {
            println!(
                "{:<8} {:>14.2} {:>18.1}",
                r.workload, r.tdc_over_tid, r.rmhb_gbps
            );
        }
        hr(56);
        println!("(paper: ratio < 1 for Excess-class cact/sssp/bwav — the HW");
        println!(" scheme wins under miss-handling pressure; ratio > 1 for the");
        println!(" low-RMHB mcf/bc/pr, where ideal DC access time wins)");
    }
}

/// Fig. 9 — IPC relative to Baseline + average DC access time, all
/// schemes × all workloads. Also prints the paper's headline averages.
pub mod fig09 {
    use super::*;

    /// Run the full cross product — in-process, or through a running
    /// nomad-serve instance when `NOMAD_SERVE_ADDR` is set.
    pub fn run(scale: &Scale) -> Vec<Row> {
        sweep_maybe_serviced(scale, &SchemeSpec::fig9_set(), &WorkloadProfile::all())
    }

    /// Print the table plus headline summary.
    pub fn print(rows: &[Row]) {
        println!("\nFig. 9: IPC relative to Baseline (top row per workload) and");
        println!("average DC access time in cycles (bottom row)");
        hr(100);
        println!(
            "{:<7} {:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "class", "wl", "Baseline", "TiD", "TDC", "NOMAD", "Ideal"
        );
        hr(100);
        let workloads: Vec<String> = {
            let mut seen = Vec::new();
            for r in rows {
                if !seen.contains(&r.workload) {
                    seen.push(r.workload.clone());
                }
            }
            seen
        };
        let find = |w: &str, s: &str| rows.iter().find(|r| r.workload == w && r.scheme == s);
        for w in &workloads {
            let base = find(w, "Baseline").map(|r| r.ipc).unwrap_or(1.0);
            let class = find(w, "Baseline")
                .map(|r| r.class.clone())
                .unwrap_or_default();
            print!("{:<7} {:<6}", class, w);
            for s in ["Baseline", "TiD", "TDC", "NOMAD", "Ideal"] {
                match find(w, s) {
                    Some(r) => print!(" {:>10.2}", r.ipc / base),
                    None => print!(" {:>10}", "-"),
                }
            }
            println!();
            print!("{:<7} {:<6}", "", "(acc)");
            for s in ["Baseline", "TiD", "TDC", "NOMAD", "Ideal"] {
                match find(w, s) {
                    Some(r) => print!(" {:>10.0}", r.dc_access_time),
                    None => print!(" {:>10}", "-"),
                }
            }
            println!();
        }
        hr(100);
        // Headline numbers (§IV-B.5).
        let ratio_over = |a: &str, b: &str| -> f64 {
            geomean(workloads.iter().filter_map(|w| {
                let x = find(w, a)?.ipc;
                let y = find(w, b)?.ipc;
                (y > 0.0).then_some(x / y)
            }))
        };
        println!(
            "Headline: NOMAD IPC vs TDC {:+.1}% (paper +16.7%), vs TiD {:+.1}% (paper +25.5%)",
            (ratio_over("NOMAD", "TDC") - 1.0) * 100.0,
            (ratio_over("NOMAD", "TiD") - 1.0) * 100.0,
        );
        let mean_buffer_hit = {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.scheme == "NOMAD" && r.buffer_hit_rate > 0.0)
                .map(|r| r.buffer_hit_rate)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        println!(
            "NOMAD data misses hitting page copy buffers: {:.1}% (paper 91.6%)",
            mean_buffer_hit * 100.0
        );
    }
}

/// Head-to-head — the seven first-class schemes (Baseline, TiD, TDRAM,
/// Banshee, TDC, NOMAD, Ideal) across all workloads, summarized per
/// RMHB class.
pub mod fig_headtohead {
    use super::*;
    use nomad_trace::WorkloadClass;

    /// Scheme column order; matches [`SchemeSpec::headtohead_set`].
    pub const SCHEMES: [&str; 7] = [
        "Baseline", "TiD", "TDRAM", "Banshee", "TDC", "NOMAD", "Ideal",
    ];

    /// Run the full 7-scheme cross product over every workload —
    /// in-process, or via a serve/fleet tier per the usual env vars.
    pub fn run(scale: &Scale) -> Vec<Row> {
        sweep_maybe_serviced(
            scale,
            &SchemeSpec::headtohead_set(),
            &WorkloadProfile::all(),
        )
    }

    /// Print per-workload IPC relative to Baseline, then the per-class
    /// geomean summary across the four RMHB classes.
    pub fn print(rows: &[Row]) {
        println!("\nHead-to-head: IPC relative to Baseline, all first-class schemes");
        hr(118);
        print!("{:<7} {:<6}", "class", "wl");
        for s in SCHEMES {
            print!(" {:>10}", s);
        }
        println!();
        hr(118);
        let workloads: Vec<String> = {
            let mut seen = Vec::new();
            for r in rows {
                if !seen.contains(&r.workload) {
                    seen.push(r.workload.clone());
                }
            }
            seen
        };
        let find = |w: &str, s: &str| rows.iter().find(|r| r.workload == w && r.scheme == s);
        for w in &workloads {
            let base = find(w, "Baseline").map(|r| r.ipc).unwrap_or(1.0);
            let class = find(w, "Baseline")
                .map(|r| r.class.clone())
                .unwrap_or_default();
            print!("{:<7} {:<6}", class, w);
            for s in SCHEMES {
                match find(w, s) {
                    Some(r) => print!(" {:>10.2}", r.ipc / base),
                    None => print!(" {:>10}", "-"),
                }
            }
            println!();
        }
        hr(118);
        println!("Per-class geomean of IPC relative to Baseline:");
        for class in WorkloadClass::ALL {
            let in_class: Vec<&String> = workloads
                .iter()
                .filter(|w| find(w, "Baseline").map(|r| r.class.as_str()) == Some(class.label()))
                .collect();
            print!("{:<7}", class.label());
            for s in SCHEMES {
                let g = geomean(in_class.iter().filter_map(|w| {
                    let base = find(w, "Baseline")?.ipc;
                    let x = find(w, s)?.ipc;
                    (base > 0.0).then_some(x / base)
                }));
                print!(" {:>10.2}", g);
            }
            println!();
        }
        hr(118);
        println!("(expected shape at default scale: block-granularity TDRAM leads the");
        println!(" non-ideal field under miss-handling pressure (no page-fill RMHB);");
        println!(" NOMAD leads the page-granularity schemes everywhere; blocking TDC");
        println!(" collapses on the bursty Tight class; TiD pays its metadata tax");
        println!(" throughout — see EXPERIMENTS.md for the measured walkthrough)");
    }
}

/// Fig. 10 — on-package bandwidth-usage breakdown + row-buffer hit
/// rates for TiD / TDC / NOMAD.
pub mod fig10 {
    use super::*;

    /// Run the three DC schemes over all workloads.
    pub fn run(scale: &Scale) -> Vec<Row> {
        sweep(
            scale,
            &[SchemeSpec::Tid, SchemeSpec::Tdc, SchemeSpec::Nomad],
            &WorkloadProfile::all(),
        )
    }

    /// Print the breakdown.
    pub fn print(rows: &[Row]) {
        println!("\nFig. 10: on-package DRAM bandwidth usage breakdown (GB/s) and");
        println!("row-buffer hit rate");
        hr(98);
        println!(
            "{:<6} {:<7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
            "wl", "scheme", "dem_rd", "dem_wr", "metadata", "fill", "writeback", "total", "rowhit"
        );
        hr(98);
        for r in rows {
            let total: f64 = r.hbm_gbps.iter().sum();
            println!(
                "{:<6} {:<7} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7.1}%",
                r.workload,
                r.scheme,
                r.hbm_gbps[0],
                r.hbm_gbps[1],
                r.hbm_gbps[2],
                r.hbm_gbps[3],
                r.hbm_gbps[4],
                total,
                r.hbm_row_hit * 100.0
            );
        }
        hr(98);
        println!("(paper: TiD adds a large metadata share; fills dominate for");
        println!(" Excess-class workloads; OS-managed schemes spend no metadata)");
    }
}

/// Fig. 11 — application stall-cycle ratios + average tag-management
/// latency for the OS-managed schemes.
pub mod fig11 {
    use super::*;

    /// Run TDC and NOMAD over all workloads.
    pub fn run(scale: &Scale) -> Vec<Row> {
        sweep(
            scale,
            &[SchemeSpec::Tdc, SchemeSpec::Nomad],
            &WorkloadProfile::all(),
        )
    }

    /// Print the comparison.
    pub fn print(rows: &[Row]) {
        println!("\nFig. 11: application stall-cycle ratio and average tag");
        println!("management latency of the OS-managed schemes");
        hr(92);
        println!(
            "{:<7} {:<6} {:>11} {:>11} {:>12} {:>12} {:>12}",
            "class", "wl", "TDC stall", "NOMAD stall", "reduction", "TDC taglat", "NOMAD taglat"
        );
        hr(92);
        let mut reductions = Vec::new();
        let tdc_rows: Vec<&Row> = rows.iter().filter(|r| r.scheme == "TDC").collect();
        for tdc in tdc_rows {
            let Some(nomad) = rows
                .iter()
                .find(|r| r.workload == tdc.workload && r.scheme == "NOMAD")
            else {
                continue;
            };
            let red = if tdc.os_stall_ratio > 0.0 {
                1.0 - nomad.os_stall_ratio / tdc.os_stall_ratio
            } else {
                0.0
            };
            reductions.push(red);
            println!(
                "{:<7} {:<6} {:>10.1}% {:>10.1}% {:>11.1}% {:>12.0} {:>12.0}",
                tdc.class,
                tdc.workload,
                tdc.os_stall_ratio * 100.0,
                nomad.os_stall_ratio * 100.0,
                red * 100.0,
                tdc.tag_mgmt_latency,
                nomad.tag_mgmt_latency
            );
        }
        hr(92);
        let avg = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
        println!(
            "Average stall-cycle reduction: {:.1}% (paper: 76.1%)",
            avg * 100.0
        );
        println!("(paper: TDC stalls ~43% Excess / 29% Tight / 15% Loose / 4% Few;");
        println!(" NOMAD tag latency >= 400 cycles, growing with contention)");
    }
}

/// Figs. 12–14 — PCSHR sensitivity sweeps.
pub mod pcshr_sweeps {
    use super::*;
    use nomad_sim::spec::NomadSpec;

    /// One sensitivity point.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct SweepRow {
        /// Workload (or class-average label).
        pub workload: String,
        /// PCSHR count.
        pub pcshrs: usize,
        /// Cores.
        pub cores: usize,
        /// IPC (per-core average).
        pub ipc: f64,
        /// Off-package bandwidth (GB/s).
        pub ddr_gbps: f64,
        /// OS stall ratio.
        pub os_stall_ratio: f64,
        /// Tag-management latency (cycles).
        pub tag_mgmt_latency: f64,
    }

    fn nomad_with(pcshrs: usize) -> SchemeSpec {
        SchemeSpec::NomadWith(NomadSpec {
            pcshrs,
            ..NomadSpec::default()
        })
    }

    /// Fig. 12: per-class average IPC and off-package bandwidth vs
    /// PCSHR count. Cells are (class, count, workload) triples run in
    /// parallel; class averages are folded afterwards in submission
    /// order, so rows are identical at every job count.
    pub fn fig12(scale: &Scale, counts: &[usize]) -> Vec<SweepRow> {
        let mut groups: Vec<(WorkloadClass, usize, usize)> = Vec::new();
        let mut cells: Vec<(usize, WorkloadProfile)> = Vec::new();
        for class in WorkloadClass::ALL {
            let ws = WorkloadProfile::of_class(class);
            for &n in counts {
                groups.push((class, n, ws.len()));
                cells.extend(ws.iter().map(|w| (n, w.clone())));
            }
        }
        let axes: Vec<String> = counts
            .iter()
            .map(|n| n.to_string())
            .chain(cells.iter().map(|(_, w)| w.name.clone()))
            .collect();
        let key = grid_key("fig12", scale, &axes);
        let scale = *scale;
        let reports: Vec<[f64; 4]> =
            run_cells_journaled_or_exit(scale.jobs, &key, cells, |(n, w), cancel| {
                let r = run_cell(&scale, &nomad_with(*n), w, cancel)?;
                eprintln!("  [{}/{n} PCSHRs] ipc {:.3}", w.name, r.ipc());
                Some([
                    r.ipc(),
                    r.ddr_total_gbps(),
                    r.os_stall_ratio(),
                    r.tag_mgmt_latency(),
                ])
            });
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let mut rows = Vec::new();
        let mut rest = reports.as_slice();
        for (class, n, len) in groups {
            let (group, tail) = rest.split_at(len);
            rest = tail;
            let ipcs: Vec<f64> = group.iter().map(|g| g[0]).collect();
            let bw: Vec<f64> = group.iter().map(|g| g[1]).collect();
            let stall: Vec<f64> = group.iter().map(|g| g[2]).collect();
            let lat: Vec<f64> = group.iter().map(|g| g[3]).collect();
            eprintln!("  [{class}/{n} PCSHRs] ipc {:.3}", avg(&ipcs));
            rows.push(SweepRow {
                workload: class.label().to_string(),
                pcshrs: n,
                cores: scale.cores,
                ipc: avg(&ipcs),
                ddr_gbps: avg(&bw),
                os_stall_ratio: avg(&stall),
                tag_mgmt_latency: avg(&lat),
            });
        }
        rows
    }

    /// Print Fig. 12.
    pub fn print_fig12(rows: &[SweepRow], counts: &[usize]) {
        println!("\nFig. 12: per-class average IPC (and off-package GB/s) vs PCSHRs");
        hr(10 + counts.len() * 17);
        print!("{:<8}", "class");
        for n in counts {
            print!(" {:>8} {:>7}", format!("{n}p"), "GB/s");
        }
        println!();
        hr(10 + counts.len() * 17);
        for class in WorkloadClass::ALL {
            print!("{:<8}", class.label());
            for &n in counts {
                if let Some(r) = rows
                    .iter()
                    .find(|r| r.workload == class.label() && r.pcshrs == n)
                {
                    print!(" {:>8.3} {:>7.1}", r.ipc, r.ddr_gbps);
                }
            }
            println!();
        }
        hr(10 + counts.len() * 17);
        println!("(paper: performance saturates around 8 PCSHRs for Excess; 1-2");
        println!(" suffice for Loose/Few; off-package bandwidth becomes the limit)");
    }

    /// Fig. 13: Excess-class average IPC vs PCSHRs for several core
    /// counts, normalized to the 32-PCSHR setup. The core-count sweep
    /// is flattened into (cores, count, workload) cells so even the
    /// different-sized systems fill the worker pool together.
    pub fn fig13(scale: &Scale, counts: &[usize], cores: &[usize]) -> Vec<SweepRow> {
        let excess = WorkloadProfile::of_class(WorkloadClass::Excess);
        let cells: Vec<(usize, usize, WorkloadProfile)> = cores
            .iter()
            .flat_map(|&c| {
                let excess = &excess;
                counts
                    .iter()
                    .flat_map(move |&n| excess.iter().map(move |w| (c, n, w.clone())))
            })
            .collect();
        let axes: Vec<String> = cores
            .iter()
            .map(|c| format!("{c}c"))
            .chain(counts.iter().map(|n| n.to_string()))
            .chain(excess.iter().map(|w| w.name.clone()))
            .collect();
        let key = grid_key("fig13", scale, &axes);
        let scale = *scale;
        let ipcs: Vec<f64> =
            run_cells_journaled_or_exit(scale.jobs, &key, cells, |(c, n, w), cancel| {
                let r = run_cell(&scale.with_cores(*c), &nomad_with(*n), w, cancel)?;
                eprintln!("  [{c} cores / {n} PCSHRs / {}] ipc {:.3}", w.name, r.ipc());
                Some(r.ipc())
            });
        let mut rows = Vec::new();
        let mut rest = ipcs.as_slice();
        for &c in cores {
            for &n in counts {
                let (group, tail) = rest.split_at(excess.len());
                rest = tail;
                let ipc = group.iter().sum::<f64>() / group.len().max(1) as f64;
                eprintln!("  [{c} cores / {n} PCSHRs] ipc {ipc:.3}");
                rows.push(SweepRow {
                    workload: "Excess".into(),
                    pcshrs: n,
                    cores: c,
                    ipc,
                    ddr_gbps: 0.0,
                    os_stall_ratio: 0.0,
                    tag_mgmt_latency: 0.0,
                });
            }
        }
        rows
    }

    /// Print Fig. 13.
    pub fn print_fig13(rows: &[SweepRow], counts: &[usize], cores: &[usize]) {
        println!("\nFig. 13: Excess-class average IPC vs PCSHRs for increasing core");
        println!("count (normalized to the largest PCSHR configuration of each)");
        hr(8 + counts.len() * 9);
        print!("{:<8}", "cores");
        for n in counts {
            print!(" {:>8}", format!("{n}p"));
        }
        println!();
        hr(8 + counts.len() * 9);
        for &c in cores {
            let base = rows
                .iter()
                .find(|r| r.cores == c && r.pcshrs == *counts.last().expect("non-empty"))
                .map(|r| r.ipc)
                .unwrap_or(1.0);
            print!("{:<8}", c);
            for &n in counts {
                if let Some(r) = rows.iter().find(|r| r.cores == c && r.pcshrs == n) {
                    print!(" {:>8.3}", r.ipc / base);
                }
            }
            println!();
        }
        hr(8 + counts.len() * 9);
        println!("(paper: >=8 PCSHRs reach ~1.0 at every core count — the");
        println!(" off-package memory, not the PCSHRs, bounds performance)");
    }

    /// Fig. 14: stall rate + tag latency for cact (highest RMHB) and
    /// libq (bursty RMHB) vs PCSHRs.
    pub fn fig14(scale: &Scale, counts: &[usize]) -> Vec<SweepRow> {
        let cells: Vec<(WorkloadProfile, usize)> = ["cact", "libq"]
            .into_iter()
            .flat_map(|name| {
                let w = WorkloadProfile::by_name(name).expect("known");
                counts.iter().map(move |&n| (w.clone(), n))
            })
            .collect();
        let axes: Vec<String> = counts
            .iter()
            .map(|n| n.to_string())
            .chain(["cact".to_string(), "libq".to_string()])
            .collect();
        let key = grid_key("fig14", scale, &axes);
        let scale = *scale;
        run_cells_journaled_or_exit(scale.jobs, &key, cells, |(w, n), cancel| {
            let r = run_cell(&scale, &nomad_with(*n), w, cancel)?;
            eprintln!(
                "  [{}/{n}] stall {:.1}%",
                w.name,
                100.0 * r.os_stall_ratio()
            );
            Some(SweepRow {
                workload: w.name.clone(),
                pcshrs: *n,
                cores: scale.cores,
                ipc: r.ipc(),
                ddr_gbps: r.ddr_total_gbps(),
                os_stall_ratio: r.os_stall_ratio(),
                tag_mgmt_latency: r.tag_mgmt_latency(),
            })
        })
    }

    /// Print Fig. 14.
    pub fn print_fig14(rows: &[SweepRow], counts: &[usize]) {
        println!("\nFig. 14: application stall rate and tag-management latency vs");
        println!("PCSHRs — cact (highest RMHB) vs libq (bursty RMHB)");
        hr(6 + counts.len() * 18);
        print!("{:<6}", "wl");
        for n in counts {
            print!(" {:>8} {:>8}", format!("{n}p-stall"), "taglat");
        }
        println!();
        hr(6 + counts.len() * 18);
        for name in ["cact", "libq"] {
            print!("{:<6}", name);
            for &n in counts {
                if let Some(r) = rows.iter().find(|r| r.workload == name && r.pcshrs == n) {
                    print!(
                        " {:>7.1}% {:>8.0}",
                        r.os_stall_ratio * 100.0,
                        r.tag_mgmt_latency
                    );
                }
            }
            println!();
        }
        hr(6 + counts.len() * 18);
        println!("(paper: the bursty libq suffers more PCSHR contention than the");
        println!(" steady cact; 16 -> 32 PCSHRs cuts its tag latency by ~48%)");
    }
}

/// Fig. 15 — area-optimized (n PCSHRs, m page copy buffers) designs on
/// the bursty workloads.
pub mod fig15 {
    use super::*;
    use nomad_sim::spec::NomadSpec;

    /// One (n, m) point.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct F15Row {
        /// Workload.
        pub workload: String,
        /// PCSHRs.
        pub pcshrs: usize,
        /// Page copy buffers.
        pub buffers: usize,
        /// IPC.
        pub ipc: f64,
        /// Tag-management latency.
        pub tag_mgmt_latency: f64,
    }

    /// Run the (n, m) grid on libq and gems.
    pub fn run(scale: &Scale, grid: &[(usize, usize)]) -> Vec<F15Row> {
        let cells: Vec<(WorkloadProfile, usize, usize)> = ["libq", "gems"]
            .into_iter()
            .flat_map(|name| {
                let w = WorkloadProfile::by_name(name).expect("known");
                grid.iter().map(move |&(n, m)| (w.clone(), n, m))
            })
            .collect();
        let axes: Vec<String> = grid
            .iter()
            .map(|(n, m)| format!("{n}x{m}"))
            .chain(["libq".to_string(), "gems".to_string()])
            .collect();
        let key = grid_key("fig15", scale, &axes);
        let scale = *scale;
        run_cells_journaled_or_exit(scale.jobs, &key, cells, |(w, n, m), cancel| {
            let spec = SchemeSpec::NomadWith(NomadSpec {
                pcshrs: *n,
                buffers: Some(*m),
                ..NomadSpec::default()
            });
            let r = run_cell(&scale, &spec, w, cancel)?;
            eprintln!("  [{} ({n},{m})] ipc {:.3}", w.name, r.ipc());
            Some(F15Row {
                workload: w.name.clone(),
                pcshrs: *n,
                buffers: *m,
                ipc: r.ipc(),
                tag_mgmt_latency: r.tag_mgmt_latency(),
            })
        })
    }

    /// Print the grid.
    pub fn print(rows: &[F15Row]) {
        println!("\nFig. 15: area-optimized back-end — (n PCSHRs, m page copy");
        println!("buffers) on the bursty-RMHB workloads");
        hr(64);
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>14}",
            "wl", "(n,m)", "IPC", "norm", "taglat"
        );
        hr(64);
        for name in ["libq", "gems"] {
            let base = rows
                .iter()
                .filter(|r| r.workload == name)
                .map(|r| r.ipc)
                .next()
                .unwrap_or(1.0);
            for r in rows.iter().filter(|r| r.workload == name) {
                println!(
                    "{:<6} {:>10} {:>10.3} {:>10.3} {:>14.0}",
                    r.workload,
                    format!("({},{})", r.pcshrs, r.buffers),
                    r.ipc,
                    r.ipc / base,
                    r.tag_mgmt_latency
                );
            }
        }
        hr(64);
        println!("(paper: more PCSHRs help the bursty workloads even when the");
        println!(" buffer count does not scale with them)");
    }
}

/// Fig. 16 — centralized vs distributed back-ends.
pub mod fig16 {
    use super::*;
    use nomad_sim::spec::NomadSpec;

    /// One point.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct F16Row {
        /// Back-end count (1 = centralized).
        pub backends: usize,
        /// Total PCSHRs across back-ends.
        pub total_pcshrs: usize,
        /// Average IPC over the workload set.
        pub ipc: f64,
        /// Average tag-management latency.
        pub tag_mgmt_latency: f64,
    }

    /// Sweep total PCSHRs for centralized (1 back-end) and distributed
    /// (4 back-ends) organizations over class-representative workloads.
    /// Cells are (backends, total, workload) triples; the per-point
    /// averages fold afterwards in submission order.
    pub fn run(scale: &Scale, totals: &[usize]) -> Vec<F16Row> {
        let set = ["cact", "libq", "mcf", "pr"];
        let points: Vec<(usize, usize)> = [1usize, 4]
            .iter()
            .flat_map(|&backends| totals.iter().map(move |&total| (backends, total)))
            .collect();
        let cells: Vec<(usize, usize, WorkloadProfile)> = points
            .iter()
            .flat_map(|&(backends, total)| {
                set.iter().map(move |name| {
                    let w = WorkloadProfile::by_name(name).expect("known");
                    (backends, total, w)
                })
            })
            .collect();
        let axes: Vec<String> = points
            .iter()
            .map(|(b, t)| format!("{b}be{t}"))
            .chain(set.iter().map(|s| s.to_string()))
            .collect();
        let key = grid_key("fig16", scale, &axes);
        let scale = *scale;
        let measured: Vec<[f64; 2]> =
            run_cells_journaled_or_exit(scale.jobs, &key, cells, |(backends, total, w), cancel| {
                let per = (total / backends).max(1);
                let spec = SchemeSpec::NomadWith(NomadSpec {
                    pcshrs: per,
                    backends: *backends,
                    ..NomadSpec::default()
                });
                let r = run_cell(&scale, &spec, w, cancel)?;
                eprintln!(
                    "  [{backends} BE x {per} PCSHRs / {}] ipc {:.3}",
                    w.name,
                    r.ipc()
                );
                Some([r.ipc(), r.tag_mgmt_latency()])
            });
        let mut rows = Vec::new();
        let mut rest = measured.as_slice();
        for (backends, total) in points {
            let (group, tail) = rest.split_at(set.len());
            rest = tail;
            let per = (total / backends).max(1);
            let ipc = group.iter().map(|g| g[0]).sum::<f64>() / group.len() as f64;
            eprintln!("  [{backends} BE x {per} PCSHRs] ipc {ipc:.3}");
            rows.push(F16Row {
                backends,
                total_pcshrs: per * backends,
                ipc,
                tag_mgmt_latency: group.iter().map(|g| g[1]).sum::<f64>() / group.len() as f64,
            });
        }
        rows
    }

    /// Print the comparison.
    pub fn print(rows: &[F16Row]) {
        println!("\nFig. 16: centralized (1 back-end) vs distributed (4 back-ends)");
        println!("with equal total PCSHRs");
        hr(64);
        println!(
            "{:<12} {:>12} {:>10} {:>14}",
            "organization", "total PCSHRs", "IPC", "taglat"
        );
        hr(64);
        for r in rows {
            println!(
                "{:<12} {:>12} {:>10.3} {:>14.0}",
                if r.backends == 1 {
                    "centralized"
                } else {
                    "distributed"
                },
                r.total_pcshrs,
                r.ipc,
                r.tag_mgmt_latency
            );
        }
        hr(64);
        println!("(paper: the two organizations perform similarly — FIFO frame");
        println!(" allocation spreads page copies uniformly across back-ends)");
    }
}
