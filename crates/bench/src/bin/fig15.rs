//! Binary mirror of the `fig15` bench target:
//! `cargo run --release -p nomad-bench --bin fig15`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/fig15.rs"));
