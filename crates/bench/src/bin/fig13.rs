//! Binary mirror of the `fig13` bench target:
//! `cargo run --release -p nomad-bench --bin fig13`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/fig13.rs"));
