//! Chrome-trace generator: one Fig. 9 cell (mcf) per scheme, with
//! observability forced on.
//!
//! ```text
//! cargo run --release -p nomad-bench --bin trace_dump
//! ```
//!
//! Writes, per scheme in {TiD, TDC, NOMAD, Ideal}:
//!
//! * `results/traces/fig09_mcf_<scheme>.trace.json` — Trace Event
//!   Format; open in `chrome://tracing` or <https://ui.perfetto.dev>.
//! * `results/fig09_mcf_<scheme>.obs.json` — the matching interval
//!   snapshots.
//!
//! The committed example traces under `results/traces/` come from this
//! binary at a reduced scale (`NOMAD_INSTR=40000 NOMAD_WARMUP=10000`,
//! the defaults below) so the files stay small enough to read and to
//! check in; see EXPERIMENTS.md § "Reading the traces" for the
//! walkthrough of what TDC's blocking PCSHR span train looks like
//! next to NOMAD's.

use nomad_sim::SchemeSpec;
use nomad_trace::WorkloadProfile;

fn main() {
    nomad_bench::harness_init();
    nomad_obs::set_enabled(true);
    if std::env::var_os("NOMAD_OBS").is_some_and(|v| v == "0") {
        eprintln!("trace_dump: NOMAD_OBS=0 disables tracing; unset it and re-run");
        std::process::exit(2);
    }

    // Committed-artifact scale: smaller than the figure harnesses'
    // default so each trace stays well under a megabyte and a 2-core
    // system keeps the track layout readable. The usual environment
    // knobs still override.
    let defaults = [
        ("NOMAD_INSTR", "40000"),
        ("NOMAD_WARMUP", "10000"),
        ("NOMAD_CORES", "2"),
    ];
    for (key, value) in defaults {
        if std::env::var_os(key).is_none() {
            std::env::set_var(key, value);
        }
    }
    let scale = nomad_bench::Scale::from_env();
    // Shrink the DRAM cache (1 MiB = 256 pages) so the cell exercises evictions
    // and writebacks — the whole point of the trace is watching the
    // copy pipeline work.
    let mut cfg = scale.config();
    cfg.dc_capacity = 1024 * 1024;
    let profile = WorkloadProfile::mcf();

    for (tag, spec) in [
        ("tid", SchemeSpec::Tid),
        ("tdc", SchemeSpec::Tdc),
        ("nomad", SchemeSpec::Nomad),
        ("ideal", SchemeSpec::Ideal),
    ] {
        eprintln!("trace_dump: mcf × {tag} ({} instr)", scale.instructions);
        let report = nomad_bench::run_with_cfg(&cfg, &scale, &spec, &profile);
        nomad_bench::save_obs_artifacts(&format!("fig09_mcf_{tag}"), &report);
    }
}
