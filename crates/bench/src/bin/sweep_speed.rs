//! Binary mirror of the `sweep_speed` bench target:
//! `cargo run --release -p nomad-bench --bin sweep_speed`.
include!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/benches/sweep_speed.rs"
));
