//! Binary mirror of the `table2` bench target:
//! `cargo run --release -p nomad-bench --bin table2`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/table2.rs"));
