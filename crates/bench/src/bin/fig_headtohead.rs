//! Binary mirror of the `fig_headtohead` bench target:
//! `cargo run --release -p nomad-bench --bin fig_headtohead`.
include!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/benches/fig_headtohead.rs"
));
