//! Binary mirror of the `fig16` bench target:
//! `cargo run --release -p nomad-bench --bin fig16`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/fig16.rs"));
