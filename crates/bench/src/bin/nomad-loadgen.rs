//! Deterministic bursty load generator for the overload stack.
//!
//! ```text
//! nomad-loadgen [--seed N]          # virtual mode (default)
//! nomad-loadgen --live [--seed N]   # replay against NOMAD_FLEET_ADDRS
//! ```
//!
//! **Virtual mode** runs the committed burst scenario
//! ([`loadgen::LoadgenConfig::default`]) on an integer virtual clock —
//! steady → 3× burst → steady arrivals over two nodes, with node 1
//! turning 8× slower mid-run so its breaker trips, traffic reroutes,
//! and a half-open probe heals it. The report is written to
//! `results/loadgen.json`, is byte-identical across repeats and
//! platforms at the same seed, and the process exits non-zero when the
//! SLO verdict fails (goodput, p99, zero expired-job executions, and
//! at least one breaker trip).
//!
//! **Live mode** replays the same arrival schedule on the wall clock
//! against a real fleet: every arrival is submitted with a per-job
//! deadline budget ([`nomad_serve::submit_within_deadline`]) through a
//! client-side breaker membership, outcomes and client-observed
//! latencies are tallied, and each node's `overload.expired_executions`
//! counter is read back over `/stats` — the zero-expired clause is
//! checked against the *servers'* witness counters, not client
//! bookkeeping. The report lands in `results/loadgen_live.json`
//! (uncommitted; wall-clock numbers are host-dependent).

use nomad_bench::loadgen::{self, BreakerCounts, LoadgenConfig};
use nomad_fleet::{parse_addrs, Membership};
use nomad_serve::{submit_within_deadline, Client, ClientConfig, JobSpec, Response};
use nomad_sim::SchemeSpec;
use nomad_trace::WorkloadProfile;
use nomad_types::stats::LogHistogram;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn main() {
    nomad_bench::harness_init();
    let mut live = false;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--live" => live = true,
            "--seed" => {
                let raw = args.next().unwrap_or_else(|| die("--seed needs a value"));
                seed = raw
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid --seed `{raw}`")));
            }
            "--obs" | "--resume" => {} // consumed by harness_init
            "--help" | "-h" => {
                println!("usage: nomad-loadgen [--live] [--seed N]");
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    let cfg = LoadgenConfig::with_seed(seed);
    if live {
        run_live(&cfg);
    } else {
        run_virtual(&cfg);
    }
}

fn run_virtual(cfg: &LoadgenConfig) {
    let report = loadgen::run_virtual(cfg);
    println!(
        "nomad-loadgen: offered {} | completed {} ({} in deadline, goodput {}%)",
        report.offered, report.completed, report.completed_in_deadline, report.goodput_pct
    );
    println!(
        "  shed: admit {} / queue-full {} / queue {} / codel {}",
        report.shed.admit, report.shed.queue_full, report.shed.queue, report.shed.codel
    );
    println!(
        "  breaker: {} trips, {} probes, {} closes, {} reroutes",
        report.breaker.trips, report.breaker.probes, report.breaker.closes, report.breaker.reroutes
    );
    println!(
        "  sojourn p50 {} ms, p99 {} ms | expired executions: {}",
        report.sojourn_p50_ms, report.sojourn_p99_ms, report.expired_executions
    );
    let verdict = report.verdict.clone();
    nomad_bench::save_json("loadgen", &report);
    announce_and_exit(
        verdict.pass,
        &[
            ("goodput", verdict.goodput_ok),
            ("p99", verdict.p99_ok),
            ("no expired executions", verdict.no_expired_executions),
            ("breaker tripped", verdict.breaker_tripped),
        ],
    );
}

/// The live-mode report (wall-clock numbers; uncommitted).
#[derive(Serialize)]
struct LiveReport {
    config: LoadgenConfig,
    offered: u64,
    completed: u64,
    expired: u64,
    failed: u64,
    transport_errors: u64,
    goodput_pct: u64,
    latency_p50_ms: u64,
    latency_p99_ms: u64,
    breaker: BreakerCounts,
    /// Sum of every node's `overload.expired_executions` counter — the
    /// server-side witness that no expired job ever ran.
    server_expired_executions: u64,
    pass: bool,
}

fn run_live(cfg: &LoadgenConfig) {
    let raw = std::env::var("NOMAD_FLEET_ADDRS")
        .unwrap_or_else(|_| die("--live needs NOMAD_FLEET_ADDRS (see `nomad-fleet local`)"));
    let addrs = parse_addrs(&raw);
    if addrs.is_empty() {
        die("NOMAD_FLEET_ADDRS is empty");
    }
    let schedule = loadgen::arrival_schedule(cfg);
    let offered = schedule.len() as u64;
    let scale = nomad_bench::Scale::from_env();
    let client_cfg = ClientConfig::from_env();
    let members = Membership::with_breakers(&addrs, 64, cfg.breaker_config());
    let budget = Duration::from_millis(cfg.deadline_ms);
    eprintln!(
        "nomad-loadgen: live replay of {} arrivals over {} node(s), {} ms deadline each",
        offered,
        addrs.len(),
        cfg.deadline_ms
    );

    let next = AtomicUsize::new(0);
    let completed = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let transport_errors = AtomicU64::new(0);
    let reroutes = AtomicU64::new(0);
    let latencies = Mutex::new(LogHistogram::new());
    let senders = addrs.len().clamp(2, 8);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..senders {
            scope.spawn(|| {
                let mut conns: Vec<Option<Client>> = addrs.iter().map(|_| None).collect();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(&at_ms) = schedule.get(i) else {
                        return;
                    };
                    let at = t0 + Duration::from_millis(at_ms);
                    if let Some(wait) = at.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    // Route round-robin, gated by the client-side
                    // breakers (fault site `fleet.breaker` can trip
                    // them mid-run).
                    let preferred = i % addrs.len();
                    let mut target = preferred;
                    if !members.breaker_allows(target) {
                        if let Some(alt) = members.route_around(target) {
                            reroutes.fetch_add(1, Ordering::Relaxed);
                            target = alt;
                        }
                    }
                    // Distinct seed per arrival: every job is a real,
                    // uncached simulation.
                    let job = JobSpec {
                        cfg: scale.config(),
                        spec: SchemeSpec::Nomad,
                        profile: WorkloadProfile::tc(),
                        instructions: scale.instructions,
                        warmup: scale.warmup,
                        seed: scale.seed.wrapping_add(i as u64),
                    };
                    let sent = Instant::now();
                    let outcome = submit_within_deadline(
                        &mut conns[target],
                        &addrs[target],
                        &job,
                        budget,
                        &client_cfg,
                    );
                    let took = sent.elapsed();
                    match outcome {
                        Ok(Response::Report { .. }) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            members.record_outcome(target, true, took);
                            latencies
                                .lock()
                                .expect("latency lock")
                                .record(took.as_millis() as u64);
                        }
                        Ok(Response::Expired { .. }) => {
                            expired.fetch_add(1, Ordering::Relaxed);
                            members.record_outcome(target, false, took);
                        }
                        Ok(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            members.record_outcome(target, false, took);
                        }
                        Err(_) => {
                            transport_errors.fetch_add(1, Ordering::Relaxed);
                            members.record_outcome(target, false, took);
                        }
                    }
                }
            });
        }
    });

    // The zero-expired-executions clause is judged by the servers'
    // own witness counters, not client bookkeeping.
    let mut server_expired = 0u64;
    for addr in &addrs {
        match Client::connect(addr).and_then(|mut c| c.stats()) {
            Ok(s) => {
                server_expired += s
                    .counters
                    .iter()
                    .find(|r| r.name == "overload.expired_executions")
                    .map_or(0, |r| r.value);
            }
            Err(e) => eprintln!("nomad-loadgen: stats from {addr} failed ({e})"),
        }
    }

    let completed = completed.into_inner();
    let latencies = latencies.into_inner().expect("latency lock");
    let breaker = BreakerCounts {
        trips: (0..addrs.len())
            .map(|i| members.breaker(i).trip_count())
            .sum(),
        probes: (0..addrs.len())
            .map(|i| members.breaker(i).probe_count())
            .sum(),
        closes: (0..addrs.len())
            .map(|i| members.breaker(i).close_count())
            .sum(),
        reroutes: reroutes.into_inner(),
    };
    let goodput_pct = (completed * 100).checked_div(offered).unwrap_or(100);
    // A seeded `fleet.breaker` plan is expected to trip a breaker
    // mid-run; without one, breaker activity is not required.
    let faults_armed = std::env::var("NOMAD_FAULTS")
        .map(|v| v.contains("fleet.breaker"))
        .unwrap_or(false);
    let pass = goodput_pct >= cfg.slo.min_goodput_pct
        && server_expired == 0
        && (!faults_armed || breaker.trips >= 1);
    let report = LiveReport {
        config: cfg.clone(),
        offered,
        completed,
        expired: expired.into_inner(),
        failed: failed.into_inner(),
        transport_errors: transport_errors.into_inner(),
        goodput_pct,
        latency_p50_ms: latencies.quantile(0.5),
        latency_p99_ms: latencies.quantile(0.99),
        breaker,
        server_expired_executions: server_expired,
        pass,
    };
    println!(
        "nomad-loadgen (live): offered {} | completed {} (goodput {}%) | expired {} | failed {} \
         | transport errors {}",
        report.offered,
        report.completed,
        report.goodput_pct,
        report.expired,
        report.failed,
        report.transport_errors
    );
    println!(
        "  breaker: {} trips, {} probes, {} closes, {} reroutes | latency p50 {} ms p99 {} ms \
         | server expired executions: {}",
        report.breaker.trips,
        report.breaker.probes,
        report.breaker.closes,
        report.breaker.reroutes,
        report.latency_p50_ms,
        report.latency_p99_ms,
        report.server_expired_executions
    );
    nomad_bench::save_json("loadgen_live", &report);
    announce_and_exit(
        pass,
        &[
            ("goodput", goodput_pct >= cfg.slo.min_goodput_pct),
            (
                "server expired executions",
                report.server_expired_executions == 0,
            ),
            (
                "breaker tripped (required with a fleet.breaker plan)",
                !faults_armed || report.breaker.trips >= 1,
            ),
        ],
    );
}

fn announce_and_exit(pass: bool, clauses: &[(&str, bool)]) -> ! {
    for (name, ok) in clauses {
        println!("  SLO {}: {}", name, if *ok { "ok" } else { "FAILED" });
    }
    if pass {
        println!("nomad-loadgen: SLO verdict PASS");
        std::process::exit(0);
    }
    eprintln!("nomad-loadgen: SLO verdict FAIL");
    std::process::exit(1);
}

fn die(msg: &str) -> ! {
    eprintln!("nomad-loadgen: {msg}");
    std::process::exit(2);
}
