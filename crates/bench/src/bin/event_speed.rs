//! Binary mirror of the `event_speed` bench target:
//! `cargo run --release -p nomad-bench --bin event_speed`.
include!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/benches/event_speed.rs"
));
