//! Binary mirror of the `fig11` bench target:
//! `cargo run --release -p nomad-bench --bin fig11`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/fig11.rs"));
