//! Binary mirror of the `fig14` bench target:
//! `cargo run --release -p nomad-bench --bin fig14`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/fig14.rs"));
