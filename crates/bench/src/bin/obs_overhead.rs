//! Binary mirror of the `obs_overhead` bench target:
//! `cargo run --release -p nomad-bench --bin obs_overhead`.
include!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/benches/obs_overhead.rs"
));
