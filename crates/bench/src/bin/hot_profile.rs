//! Binary mirror of the `hot_profile` bench target:
//! `cargo run --release -p nomad-bench --bin hot_profile`.
include!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/benches/hot_profile.rs"
));
