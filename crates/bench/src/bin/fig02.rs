//! Binary mirror of the `fig02` bench target:
//! `cargo run --release -p nomad-bench --bin fig02`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/fig02.rs"));
