//! Binary mirror of the `fig10` bench target:
//! `cargo run --release -p nomad-bench --bin fig10`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/fig10.rs"));
