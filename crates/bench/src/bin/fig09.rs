//! Binary mirror of the `fig09` bench target:
//! `cargo run --release -p nomad-bench --bin fig09`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/fig09.rs"));
