//! Binary mirror of the `ablations` bench target:
//! `cargo run --release -p nomad-bench --bin ablations`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/ablations.rs"));
