//! Binary mirror of the `fig12` bench target:
//! `cargo run --release -p nomad-bench --bin fig12`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/fig12.rs"));
