//! Binary mirror of the `table1` bench target:
//! `cargo run --release -p nomad-bench --bin table1`.
include!(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/table1.rs"));
