//! Deterministic parallel sweep executor.
//!
//! Every figure/table harness reproduces a grid of independent
//! (workload × scheme × config) simulation cells. Each cell is a pure
//! function of its inputs (the determinism suite proves byte-identical
//! `RunReport`s per cell), so the grid is embarrassingly parallel —
//! but the *artifacts* must not change: printed tables and
//! `results/*.json` files are diffed against previous runs, so results
//! must come back **in submission order** no matter how many workers
//! raced to produce them.
//!
//! [`run_cells`] provides exactly that: a scoped worker pool
//! (`std::thread`, no extra dependencies) where workers claim cells
//! from a shared cursor and write each result into its submission slot.
//! With `jobs == 1` no thread is spawned at all — the caller's thread
//! runs the cells in order, byte-for-byte the pre-executor sequential
//! path, kept as the oracle the parity suite compares against.
//!
//! Worker count comes from `NOMAD_JOBS` (default: the host's available
//! parallelism; invalid or zero values clamp to 1) via
//! [`jobs_from_env`], and is carried on [`Scale`](crate::Scale) so
//! tests can pin it without racing on the process environment.
//!
//! Cancellation: every cell closure receives a [`CancelToken`]
//! (threaded into the simulator's event loop via
//! `runner::run_one_cancellable`), and workers re-check the token
//! before claiming the next cell. Latching the token — from an
//! embedder, from a failed nomad-serve job, or from a panicking
//! sibling cell — makes in-flight cells return promptly instead of
//! burning CPU to completion.

use nomad_types::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The host's available parallelism (≥ 1).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1)
}

/// Interpret an explicit `NOMAD_JOBS` value: positive integers pass
/// through, zero and garbage clamp to 1 (with a warning for garbage,
/// shared with every other knob via [`nomad_types::env::parse_u64`]).
fn jobs_override(raw: &str) -> usize {
    (nomad_types::env::parse_u64("NOMAD_JOBS", raw, 1) as usize).max(1)
}

/// Worker count for sweep execution: `NOMAD_JOBS` when set (clamped
/// ≥ 1), otherwise the host's available parallelism. Uses
/// [`nomad_types::env::raw`] + `jobs_override` rather than a plain
/// `u64_or` because the unset default is computed from the machine.
pub fn jobs_from_env() -> usize {
    match nomad_types::env::raw("NOMAD_JOBS") {
        Some(v) => jobs_override(&v),
        None => default_jobs(),
    }
}

/// The process-wide sweep cancellation token. Every harness grid runs
/// under (a clone of) this token, so an embedder — or a failing cell —
/// can wind down all in-flight sweep work with one latch.
pub fn sweep_token() -> &'static CancelToken {
    static TOKEN: OnceLock<CancelToken> = OnceLock::new();
    TOKEN.get_or_init(CancelToken::new)
}

/// Per-cell retry budget from `NOMAD_CELL_RETRIES` (default 2, garbage
/// falls back to the default): how many times a *panicking* cell is
/// re-run before the panic propagates and dooms the grid. Retrying is
/// safe because cells are pure — a re-run is byte-identical (the
/// parity suites hold this) — so transient faults (injected chaos, a
/// rare environmental failure) heal transparently, while a
/// deterministic panic still fails the sweep once the budget is spent.
pub fn cell_retries_from_env() -> u32 {
    static RETRIES: OnceLock<u32> = OnceLock::new();
    *RETRIES.get_or_init(|| {
        nomad_types::env::u64_clamped("NOMAD_CELL_RETRIES", 2, 0, u32::MAX as u64) as u32
    })
}

/// Run one cell attempt-by-attempt: panics (including ones injected at
/// the `bench.cell` fault site) are caught and retried up to
/// `retries` times, counting each re-run in
/// `resilience.cell_retries`; the final panic is returned for the
/// caller to propagate.
fn run_cell_retrying<C, R>(
    f: &(impl Fn(&C, &CancelToken) -> Option<R> + Sync),
    cell: &C,
    cancel: &CancelToken,
    retries: u32,
) -> std::thread::Result<Option<R>> {
    let mut attempt = 0u32;
    loop {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            nomad_faults::panic_point("bench.cell");
            f(cell, cancel)
        }));
        match result {
            Ok(r) => return Ok(r),
            Err(payload) => {
                if attempt >= retries || cancel.is_cancelled() {
                    return Err(payload);
                }
                attempt += 1;
                nomad_obs::resilience().cell_retries.inc();
                eprintln!("warning: sweep cell panicked; retry {attempt}/{retries}");
            }
        }
    }
}

/// Evaluate `cells` across `jobs` worker threads and return the
/// results **in submission order**, or `None` if the sweep was
/// cancelled before every cell finished.
///
/// The closure runs once per cell; returning `None` signals that the
/// cell observed cancellation (as `runner::run_one_cancellable` does)
/// and aborts the sweep. A panicking cell latches `cancel` so its
/// siblings stop claiming work, then the panic is propagated to the
/// caller once the pool has wound down.
///
/// Determinism: each cell's result depends only on the cell itself, so
/// the output vector is identical for every `jobs` value — the
/// `par_parity` suite asserts byte-identical serialized rows for
/// `jobs` ∈ {1, 2, 8} against the `jobs == 1` sequential oracle.
pub fn run_cells<C, R, F>(jobs: usize, cancel: &CancelToken, cells: Vec<C>, f: F) -> Option<Vec<R>>
where
    C: Sync,
    R: Send,
    F: Fn(&C, &CancelToken) -> Option<R> + Sync,
{
    let jobs = jobs.max(1).min(cells.len().max(1));
    let retries = cell_retries_from_env();
    if jobs == 1 {
        // Sequential oracle: no pool, no claiming, no reordering —
        // exactly the pre-executor nested-loop behavior (the retry
        // wrapper only changes behavior when a cell panics, and a
        // budget-exhausting panic propagates exactly as before).
        let mut out = Vec::with_capacity(cells.len());
        for cell in &cells {
            if cancel.is_cancelled() {
                return None;
            }
            match run_cell_retrying(&f, cell, cancel, retries) {
                Ok(r) => out.push(r?),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        return Some(out);
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                loop {
                    if cancel.is_cancelled() {
                        return;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= cells.len() {
                        return;
                    }
                    let result = run_cell_retrying(&f, &cells[idx], cancel, retries);
                    match result {
                        Ok(Some(r)) => *slots[idx].lock().expect("slot lock") = Some(r),
                        // Cancelled mid-cell: the token is already
                        // latched (or an embedder latched it); stop.
                        Ok(None) => return,
                        Err(payload) => {
                            // Wind the pool down before the panic
                            // escapes the scope, so no sibling keeps
                            // simulating a doomed sweep.
                            cancel.cancel();
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            });
        }
    });
    if cancel.is_cancelled() {
        return None;
    }
    let out: Vec<R> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("uncancelled sweep fills every slot")
        })
        .collect();
    Some(out)
}

/// [`run_cells`] under the process-wide [`sweep_token`], exiting the
/// process (status 130, the conventional SIGINT status) when the sweep
/// is cancelled — the behavior every harness binary wants, since a
/// partial grid cannot print a meaningful table.
pub fn run_cells_or_exit<C, R, F>(jobs: usize, cells: Vec<C>, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C, &CancelToken) -> Option<R> + Sync,
{
    match run_cells(jobs, sweep_token(), cells, f) {
        Some(out) => out,
        None => {
            eprintln!("sweep cancelled; discarding partial grid");
            std::process::exit(130);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order_at_any_width() {
        let cells: Vec<usize> = (0..64).collect();
        for jobs in [1usize, 2, 3, 8, 64, 100] {
            let out = run_cells(jobs, &CancelToken::new(), cells.clone(), |&c, _| {
                // Stagger the early cells so later ones finish first
                // under real parallelism.
                if c < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Some(c * 10)
            })
            .expect("not cancelled");
            assert_eq!(out, cells.iter().map(|c| c * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pre_cancelled_token_yields_none() {
        let token = CancelToken::new();
        token.cancel();
        for jobs in [1usize, 4] {
            let ran = AtomicUsize::new(0);
            let out = run_cells(jobs, &token, vec![1, 2, 3], |&c, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                Some(c)
            });
            assert!(out.is_none());
            assert_eq!(ran.load(Ordering::Relaxed), 0, "no cell should start");
        }
    }

    #[test]
    fn cell_observing_cancellation_aborts_the_sweep() {
        let token = CancelToken::new();
        let out = run_cells(2, &token, (0..32).collect::<Vec<_>>(), |&c, cancel| {
            if c == 5 {
                cancel.cancel();
                return None;
            }
            if cancel.is_cancelled() {
                return None;
            }
            Some(c)
        });
        assert!(out.is_none());
        assert!(token.is_cancelled());
    }

    #[test]
    fn panicking_cell_latches_the_token_and_propagates() {
        let token = CancelToken::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cells(4, &token, (0..16).collect::<Vec<_>>(), |&c, _| {
                if c == 3 {
                    panic!("boom");
                }
                Some(c)
            })
        }));
        assert!(result.is_err(), "the cell panic must propagate");
        assert!(token.is_cancelled(), "siblings must be told to stop");
    }

    #[test]
    fn transiently_panicking_cell_heals_within_the_retry_budget() {
        // The default budget is 2 retries; a cell that panics on its
        // first attempt and succeeds on the second must not doom the
        // grid — at either executor width.
        for jobs in [1usize, 4] {
            let first_attempt_done = AtomicUsize::new(0);
            let token = CancelToken::new();
            let out = run_cells(jobs, &token, (0..8).collect::<Vec<_>>(), |&c, _| {
                if c == 5 && first_attempt_done.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                Some(c * 2)
            })
            .expect("sweep heals");
            assert_eq!(out, (0..8).map(|c| c * 2).collect::<Vec<_>>());
            assert!(!token.is_cancelled(), "healed sweep must not latch");
        }
    }

    #[test]
    fn jobs_override_clamps_garbage_and_zero() {
        assert_eq!(jobs_override("0"), 1);
        assert_eq!(jobs_override("banana"), 1);
        assert_eq!(jobs_override(" 6 "), 6);
        assert_eq!(jobs_override("-2"), 1);
        assert_eq!(jobs_override("1"), 1);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Option<Vec<u32>> =
            run_cells(8, &CancelToken::new(), Vec::<u32>::new(), |&c, _| Some(c));
        assert_eq!(out, Some(vec![]));
    }
}
