//! Per-thread [`System`] arena: zero-alloc cell churn for grid sweeps.
//!
//! A sweep runs hundreds of short cells, and building a [`System`] from
//! scratch allocates every cache array, MSHR file, DRAM bank file and
//! queue anew — a few milliseconds of pure allocator traffic per cell.
//! The arena parks one finished [`System`] per worker thread; the next
//! cell that thread claims recycles those allocations through
//! [`System::reset_for_cell`] instead of rebuilding, provided the
//! [`SystemConfig`](nomad_sim::SystemConfig) matches (config sweeps
//! fall back to a fresh build automatically, as do observed runs).
//!
//! Reuse is gated on byte-identical reports: the `arena_parity` suite
//! in `nomad-sim` holds recycled-vs-fresh runs to the same serialized
//! [`RunReport`](nomad_sim::RunReport), including after a cancelled
//! cell parks a half-run system. Set `NOMAD_ARENA=0` to disable reuse
//! and build every cell fresh (the reference path).
//!
//! A `thread_local` slot needs no locks and maps one-to-one onto the
//! [`par::run_cells`](crate::par::run_cells) executor, where each
//! worker thread owns the cells it claims.

use nomad_sim::System;
use std::cell::RefCell;

thread_local! {
    static SLOT: RefCell<Option<System>> = const { RefCell::new(None) };
}

/// Whether arena reuse is enabled (`NOMAD_ARENA`, default on;
/// `0`/`false`/`off`/`no` disable). Read per call so tests and
/// harnesses can flip it between cells; the lookup is noise next to a
/// multi-millisecond cell.
pub fn enabled() -> bool {
    nomad_types::env::bool_or("NOMAD_ARENA", true)
}

/// Run `f` against this thread's parked-system slot. `f` is expected to
/// park the system back (as [`nomad_sim::runner::run_one_pooled`] does)
/// so the next cell on this thread can recycle it.
pub fn with_slot<R>(f: impl FnOnce(&mut Option<System>) -> R) -> R {
    SLOT.with(|slot| f(&mut slot.borrow_mut()))
}

/// Drop this thread's parked system, if any. Benchmarks that want a
/// cold-start measurement call this between samples.
pub fn clear() {
    SLOT.with(|slot| *slot.borrow_mut() = None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_starts_empty_and_clears() {
        clear();
        with_slot(|slot| assert!(slot.is_none()));
        clear();
        with_slot(|slot| assert!(slot.is_none()));
    }
}
