//! Ctrl-C handling for the sweep harnesses.
//!
//! [`install_sigint`] registers a real `SIGINT` handler (via a
//! hand-declared `sigaction` shim — no `libc` crate) that latches the
//! process-wide [`sweep_token`](crate::par::sweep_token). Workers
//! observe the latch cooperatively: in-flight cells return at their
//! next cancellation check, no further cells are claimed, and
//! [`run_cells_or_exit`](crate::par::run_cells_or_exit) exits with the
//! conventional status 130 instead of printing a partial grid.
//!
//! The handler is installed with `SA_RESETHAND`, so the disposition
//! reverts to the default after the first delivery — a second Ctrl-C
//! kills the process immediately if the cooperative wind-down is not
//! fast enough.
//!
//! # Async-signal-safety
//!
//! The handler body is a single relaxed atomic store through a
//! pre-resolved `&'static CancelToken`; [`install_sigint`] forces the
//! token's one-time initialization *before* registering the handler,
//! so the signal context never allocates, locks, or initializes
//! anything.

#[cfg(target_os = "linux")]
mod imp {
    use nomad_types::CancelToken;
    use std::sync::OnceLock;

    const SIGINT: i32 = 2;
    /// Reset to the default disposition after the first delivery.
    const SA_RESETHAND: i32 = 0x8000_0000u32 as i32;
    /// Restart interruptible syscalls instead of failing with `EINTR`.
    const SA_RESTART: i32 = 0x1000_0000;

    /// glibc's userspace `struct sigaction` on Linux: handler pointer,
    /// 1024-bit signal mask, flags, restorer. (`repr(C)` inserts the
    /// same 4-byte pad between `flags` and `restorer` the C struct
    /// has.)
    #[repr(C)]
    struct SigAction {
        handler: usize,
        mask: [u64; 16],
        flags: i32,
        restorer: usize,
    }

    extern "C" {
        fn sigaction(signum: i32, act: *const SigAction, oldact: *mut SigAction) -> i32;
    }

    /// Resolved before handler registration so the signal context only
    /// performs a `OnceLock::get` (one acquire load) and an atomic
    /// store.
    static HANDLER_TOKEN: OnceLock<&'static CancelToken> = OnceLock::new();

    extern "C" fn on_sigint(_signum: i32) {
        if let Some(token) = HANDLER_TOKEN.get() {
            token.cancel();
        }
    }

    pub fn install() -> bool {
        // Force the token's lazy init on this (normal) thread; the
        // handler must never be the one to initialize it.
        let _ = HANDLER_TOKEN.set(crate::par::sweep_token());
        let act = SigAction {
            handler: on_sigint as *const () as usize,
            mask: [0; 16],
            flags: SA_RESETHAND | SA_RESTART,
            restorer: 0,
        };
        unsafe { sigaction(SIGINT, &act, std::ptr::null_mut()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    /// No signal shim off Linux; Ctrl-C falls back to the default
    /// (immediate) termination.
    pub fn install() -> bool {
        false
    }
}

/// Latch [`sweep_token`](crate::par::sweep_token) on Ctrl-C so
/// harnesses wind down cleanly (finish nothing new, exit 130). Safe to
/// call more than once; returns `false` where no handler could be
/// installed (non-Linux targets, or a failing `sigaction`).
pub fn install_sigint() -> bool {
    imp::install()
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    /// Deliver a real SIGINT to this process and verify the handler
    /// latches the sweep token instead of killing us. (Runs in its own
    /// test process — `cargo test` spawns one binary per integration
    /// test, and unit tests here share only this signal test.)
    #[test]
    fn sigint_latches_the_sweep_token() {
        assert!(install_sigint(), "sigaction must succeed");
        assert!(!crate::par::sweep_token().is_cancelled());
        unsafe {
            raise(2);
        }
        assert!(
            crate::par::sweep_token().is_cancelled(),
            "SIGINT must latch the sweep token"
        );
    }
}
