//! Shared harness utilities for the table/figure reproductions.
//!
//! Every bench target (`cargo bench -p nomad-bench --bench figXX`)
//! regenerates one table or figure from the paper's evaluation section:
//! it runs the necessary (scheme × workload × parameter) grid on the
//! scaled system configuration, prints the same rows/series the paper
//! reports, and drops a machine-readable JSON artifact under
//! `results/`.
//!
//! Scales are controlled by environment variables so the full sweep
//! fits any time budget:
//!
//! * `NOMAD_INSTR` — measured instructions per core (default 150 000);
//! * `NOMAD_WARMUP` — warm-up instructions per core (default 120 000);
//! * `NOMAD_CORES` — CPU cores (default 8, the paper's count);
//! * `NOMAD_SEED` — RNG seed (default 42);
//! * `NOMAD_JOBS` — sweep worker threads (default: the host's
//!   available parallelism; 0 or garbage clamp to 1). Results are
//!   collected in submission order, so every table and JSON artifact
//!   is byte-identical at any job count — see [`par`];
//! * `NOMAD_ARENA=0` — disable per-thread [`System`](nomad_sim::System)
//!   reuse and build every sweep cell from scratch (default: recycle;
//!   see [`arena`]);
//! * `NOMAD_LOCAL_CACHE=1` — memoize finished cells in
//!   `results/cache/` keyed by their serve-tier content address
//!   (default: off; see [`localcache`]).
//!
//! Resilience knobs (see DESIGN.md §12):
//!
//! * `NOMAD_CELL_RETRIES` — re-runs granted to a panicking sweep cell
//!   before the panic propagates (default 2);
//! * `NOMAD_JOURNAL=0` — disable the crash-safe sweep [`journal`];
//!   `--resume` / `NOMAD_RESUME=1` restores an interrupted sweep's
//!   completed cells from it;
//! * `NOMAD_FAULTS` — arm a deterministic fault-injection plan
//!   (`nomad_faults`; chaos testing only, unset = zero overhead);
//! * `NOMAD_SERVE_*` — serve-client recovery budgets, documented on
//!   `nomad_serve::ClientConfig`.

pub mod arena;
pub mod figs;
pub mod journal;
pub mod loadgen;
pub mod localcache;
pub mod measure;
pub mod par;
pub mod signal;

use nomad_sim::{runner, RunReport, SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;
use nomad_types::CancelToken;
use serde::Serialize;
use std::io::Write as _;

/// Experiment scale knobs (see crate docs for the environment
/// variables).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warm-up instructions per core.
    pub warmup: u64,
    /// CPU cores.
    pub cores: usize,
    /// RNG seed.
    pub seed: u64,
    /// Sweep worker threads (1 = the sequential oracle path).
    pub jobs: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            instructions: 150_000,
            warmup: 120_000,
            cores: 8,
            seed: 42,
            jobs: par::default_jobs(),
        }
    }
}

impl Scale {
    /// Read the scale from the environment (via the shared
    /// [`nomad_types::env`] reader: unset means default, garbage warns
    /// and means default), falling back to defaults.
    pub fn from_env() -> Self {
        use nomad_types::env;
        let d = Scale::default();
        Scale {
            instructions: env::u64_or("NOMAD_INSTR", d.instructions),
            warmup: env::u64_or("NOMAD_WARMUP", d.warmup),
            cores: env::usize_clamped("NOMAD_CORES", d.cores, 1, 4096),
            seed: env::u64_or("NOMAD_SEED", d.seed),
            jobs: par::jobs_from_env(),
        }
    }

    /// A scale with an explicit worker count (tests pin this instead
    /// of racing on the `NOMAD_JOBS` environment variable).
    pub fn with_jobs(&self, jobs: usize) -> Self {
        Scale {
            jobs: jobs.max(1),
            ..*self
        }
    }

    /// The system configuration for this scale.
    pub fn config(&self) -> SystemConfig {
        SystemConfig::scaled(self.cores)
    }

    /// A scale with a different core count (Fig. 13 sweeps cores).
    pub fn with_cores(&self, cores: usize) -> Self {
        Scale { cores, ..*self }
    }
}

/// Common harness prologue; every bench `main` calls this first.
///
/// * `--obs` anywhere on the command line force-enables the
///   observability layer ([`nomad_obs::set_enabled`]) for this
///   process, exactly like `NOMAD_OBS=1` (the environment variable
///   still wins when set — it is the explicit override).
/// * Installs the `SIGINT` handler ([`signal::install_sigint`]) so
///   Ctrl-C latches the sweep token and the harness exits 130 after
///   in-flight cells wind down, instead of dying mid-write.
/// * Enables the crash-safe sweep [`journal`] (force off with
///   `NOMAD_JOURNAL=0`); `--resume` or `NOMAD_RESUME=1` restores the
///   completed cells of an interrupted sweep instead of re-running
///   them.
/// * Arms the deterministic fault plan from `NOMAD_FAULTS`
///   ([`nomad_faults::init_from_env`]; a no-op when unset) and mirrors
///   injections into the `resilience.*` observability counters.
pub fn harness_init() {
    if std::env::args().any(|a| a == "--obs") {
        nomad_obs::set_enabled(true);
    }
    signal::install_sigint();
    journal::set_enabled(!matches!(
        std::env::var("NOMAD_JOURNAL").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    ));
    if std::env::args().any(|a| a == "--resume")
        || matches!(
            std::env::var("NOMAD_RESUME").as_deref(),
            Ok("1") | Ok("on") | Ok("true")
        )
    {
        journal::set_resume(true);
    }
    nomad_faults::init_from_env();
    nomad_serve::mirror_faults_to_obs();
}

/// Write a report's observability series (interval snapshots + Chrome
/// trace) under `results/`, as `results/<name>.obs.json` and
/// `results/traces/<name>.trace.json`. No-op (with a note) when the
/// report carries no series (observability was off for the run).
///
/// The trace file is the raw pre-serialized Trace Event JSON — load it
/// directly in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn save_obs_artifacts(name: &str, report: &RunReport) {
    let Some(obs) = &report.obs else {
        eprintln!("[{name}: no obs series on report; run with --obs or NOMAD_OBS=1]");
        return;
    };
    save_raw(&format!("{name}.obs.json"), &obs.snapshots);
    save_raw(&format!("traces/{name}.trace.json"), &obs.trace);
}

/// Write a pre-serialized JSON document under `results/` (same root
/// anchoring as [`save_json`], but the payload is already a string —
/// obs exporters serialize themselves).
pub fn save_raw(rel: &str, contents: &str) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let path = root.join("results").join(rel);
    if let Some(dir) = path.parent() {
        if !dir.exists() && std::fs::create_dir_all(dir).is_err() {
            eprintln!("warning: could not create {}", dir.display());
            return;
        }
    }
    match std::fs::write(&path, contents) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Run one (scheme × workload) cell at this scale.
pub fn run(scale: &Scale, spec: &SchemeSpec, profile: &WorkloadProfile) -> RunReport {
    run_with_cfg(&scale.config(), scale, spec, profile)
}

/// Run one cell with an explicit system configuration (for config
/// sweeps).
pub fn run_with_cfg(
    cfg: &SystemConfig,
    scale: &Scale,
    spec: &SchemeSpec,
    profile: &WorkloadProfile,
) -> RunReport {
    runner::run_one(
        cfg,
        spec,
        profile,
        scale.instructions,
        scale.warmup,
        scale.seed,
    )
}

/// [`run`] with cooperative cancellation — the per-cell body the
/// parallel executor ([`par::run_cells`]) drives. Returns `None` once
/// `cancel` is latched; an uncancelled run is byte-identical to
/// [`run`].
pub fn run_cell(
    scale: &Scale,
    spec: &SchemeSpec,
    profile: &WorkloadProfile,
    cancel: &CancelToken,
) -> Option<RunReport> {
    run_with_cfg_cell(&scale.config(), scale, spec, profile, cancel)
}

/// [`run_with_cfg`] with cooperative cancellation. When the arena is
/// enabled (default; see [`arena`]) the cell recycles this worker
/// thread's parked [`System`](nomad_sim::System) instead of building
/// one from scratch — behaviourally identical either way. With
/// `NOMAD_LOCAL_CACHE` set (see [`localcache`]) the cell is served
/// from (and stored to) the local content-addressed cache.
pub fn run_with_cfg_cell(
    cfg: &SystemConfig,
    scale: &Scale,
    spec: &SchemeSpec,
    profile: &WorkloadProfile,
    cancel: &CancelToken,
) -> Option<RunReport> {
    if localcache::dir().is_some() {
        let job = nomad_serve::JobSpec {
            cfg: cfg.clone(),
            spec: spec.clone(),
            profile: profile.clone(),
            instructions: scale.instructions,
            warmup: scale.warmup,
            seed: scale.seed,
        };
        if let Some(hit) = localcache::lookup(&job) {
            return Some(hit);
        }
        let report = execute_cell(cfg, scale, spec, profile, cancel)?;
        localcache::store(&job, &report);
        return Some(report);
    }
    execute_cell(cfg, scale, spec, profile, cancel)
}

/// The actual cell body behind [`run_with_cfg_cell`]: arena-pooled when
/// enabled, fresh otherwise.
fn execute_cell(
    cfg: &SystemConfig,
    scale: &Scale,
    spec: &SchemeSpec,
    profile: &WorkloadProfile,
    cancel: &CancelToken,
) -> Option<RunReport> {
    if arena::enabled() {
        arena::with_slot(|slot| {
            runner::run_one_pooled(
                slot,
                cfg,
                spec,
                profile,
                scale.instructions,
                scale.warmup,
                scale.seed,
                cancel,
            )
        })
    } else {
        runner::run_one_cancellable(
            cfg,
            spec,
            profile,
            scale.instructions,
            scale.warmup,
            scale.seed,
            cancel,
        )
    }
}

/// Write a JSON artifact under `results/` (best effort: failures are
/// reported but do not abort the harness).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    // Bench targets run with the package directory as cwd; anchor the
    // artifacts at the workspace root instead.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let dir = root.join("results");
    let dir = dir.as_path();
    let path = if dir.exists() || std::fs::create_dir_all(dir).is_ok() {
        dir.join(format!("{name}.json"))
    } else {
        // Still save the artifact, but loudly: a silent fallback left
        // stray `crates/*/results/` files behind in the past.
        let fallback = std::path::PathBuf::from(format!("{name}.json"));
        let cwd = std::env::current_dir()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|_| "<unknown cwd>".to_string());
        eprintln!(
            "warning: could not create {}; falling back to {} in the current directory ({cwd})",
            dir.display(),
            fallback.display(),
        );
        fallback
    };
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let s = serde_json::to_string_pretty(value).expect("plain data");
            if let Err(e) = f.write_all(s.as_bytes()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not create {}: {e}", path.display()),
    }
}

/// Read a JSON artifact previously saved under `results/` (same root
/// anchoring as [`save_json`]): the committed baseline a speed harness
/// reports deltas against. `None` when the file is missing or does not
/// parse as `T` — callers treat that as "no baseline" and skip the
/// comparison.
pub fn load_json<T: serde::Deserialize>(name: &str) -> Option<T> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let path = root.join("results").join(format!("{name}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// The soft perf-gate threshold from `NOMAD_PERF_GATE_PCT`: when set,
/// a speed harness fails once throughput drops more than this many
/// percent below its committed `results/*.json` baseline. Unset (the
/// default) or unparsable means no gate — the harnesses stay
/// report-only, because wall-clock numbers are host-dependent and a
/// hard gate only makes sense against a baseline produced on
/// comparable hardware (CI pins the gate at 25% for its own runners).
pub fn perf_gate_pct() -> Option<f64> {
    std::env::var("NOMAD_PERF_GATE_PCT").ok()?.parse().ok()
}

/// Apply the soft perf gate to `(label, delta_pct)` pairs, where a
/// negative delta means "slower than the committed baseline by that
/// many percent". A no-op when `NOMAD_PERF_GATE_PCT` is unset;
/// otherwise prints every offender past the threshold and exits
/// non-zero so CI fails the job.
pub fn apply_perf_gate(deltas: &[(String, f64)]) {
    let Some(gate) = perf_gate_pct() else { return };
    let offenders: Vec<&(String, f64)> = deltas.iter().filter(|(_, d)| *d < -gate).collect();
    if offenders.is_empty() {
        println!(
            "perf gate: {} delta(s) all within -{gate:.0}% of baseline",
            deltas.len()
        );
        return;
    }
    for (label, d) in &offenders {
        eprintln!("perf gate FAILED: {label} at {d:+.1}% (threshold -{gate:.0}%)");
    }
    std::process::exit(1);
}

/// Geometric mean of an iterator of positive values (the paper reports
/// IPC improvements as averages across workloads).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Print a horizontal rule sized for the standard table width.
pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert!((geomean([2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scale_env_round_trip() {
        let d = Scale::default();
        assert_eq!(d.cores, 8);
        assert!(d.instructions > 0);
        assert!(d.jobs >= 1);
        let cfg = d.config();
        assert_eq!(cfg.cores, 8);
        assert_eq!(d.with_cores(2).cores, 2);
        assert_eq!(d.with_jobs(3).jobs, 3);
        assert_eq!(d.with_jobs(0).jobs, 1, "with_jobs clamps to >= 1");
    }

    /// `from_env` picks up `NOMAD_JOBS`, clamping invalid and zero
    /// values to 1. This is the only test mutating `NOMAD_JOBS`, so it
    /// cannot race with the other tests in this binary.
    #[test]
    fn scale_from_env_reads_nomad_jobs() {
        std::env::set_var("NOMAD_JOBS", "6");
        assert_eq!(Scale::from_env().jobs, 6);
        std::env::set_var("NOMAD_JOBS", "0");
        assert_eq!(Scale::from_env().jobs, 1, "zero clamps to 1");
        std::env::set_var("NOMAD_JOBS", "not-a-number");
        assert_eq!(Scale::from_env().jobs, 1, "garbage clamps to 1");
        std::env::remove_var("NOMAD_JOBS");
        assert_eq!(
            Scale::from_env().jobs,
            par::default_jobs(),
            "unset falls back to available parallelism"
        );
    }
}
