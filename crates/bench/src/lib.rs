//! Shared harness utilities for the table/figure reproductions.
//!
//! Every bench target (`cargo bench -p nomad-bench --bench figXX`)
//! regenerates one table or figure from the paper's evaluation section:
//! it runs the necessary (scheme × workload × parameter) grid on the
//! scaled system configuration, prints the same rows/series the paper
//! reports, and drops a machine-readable JSON artifact under
//! `results/`.
//!
//! Scales are controlled by environment variables so the full sweep
//! fits any time budget:
//!
//! * `NOMAD_INSTR` — measured instructions per core (default 150 000);
//! * `NOMAD_WARMUP` — warm-up instructions per core (default 120 000);
//! * `NOMAD_CORES` — CPU cores (default 8, the paper's count);
//! * `NOMAD_SEED` — RNG seed (default 42).

pub mod figs;

use nomad_sim::{runner, RunReport, SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;
use serde::Serialize;
use std::io::Write as _;

/// Experiment scale knobs (see crate docs for the environment
/// variables).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warm-up instructions per core.
    pub warmup: u64,
    /// CPU cores.
    pub cores: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            instructions: 150_000,
            warmup: 120_000,
            cores: 8,
            seed: 42,
        }
    }
}

impl Scale {
    /// Read the scale from the environment, falling back to defaults.
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| -> u64 {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        let d = Scale::default();
        Scale {
            instructions: get("NOMAD_INSTR", d.instructions),
            warmup: get("NOMAD_WARMUP", d.warmup),
            cores: get("NOMAD_CORES", d.cores as u64) as usize,
            seed: get("NOMAD_SEED", d.seed),
        }
    }

    /// The system configuration for this scale.
    pub fn config(&self) -> SystemConfig {
        SystemConfig::scaled(self.cores)
    }

    /// A scale with a different core count (Fig. 13 sweeps cores).
    pub fn with_cores(&self, cores: usize) -> Self {
        Scale { cores, ..*self }
    }
}

/// Run one (scheme × workload) cell at this scale.
pub fn run(scale: &Scale, spec: &SchemeSpec, profile: &WorkloadProfile) -> RunReport {
    run_with_cfg(&scale.config(), scale, spec, profile)
}

/// Run one cell with an explicit system configuration (for config
/// sweeps).
pub fn run_with_cfg(
    cfg: &SystemConfig,
    scale: &Scale,
    spec: &SchemeSpec,
    profile: &WorkloadProfile,
) -> RunReport {
    runner::run_one(
        cfg,
        spec,
        profile,
        scale.instructions,
        scale.warmup,
        scale.seed,
    )
}

/// Write a JSON artifact under `results/` (best effort: failures are
/// reported but do not abort the harness).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    // Bench targets run with the package directory as cwd; anchor the
    // artifacts at the workspace root instead.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let dir = root.join("results");
    let dir = dir.as_path();
    let path = if dir.exists() || std::fs::create_dir_all(dir).is_ok() {
        dir.join(format!("{name}.json"))
    } else {
        std::path::PathBuf::from(format!("{name}.json"))
    };
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let s = serde_json::to_string_pretty(value).expect("plain data");
            if let Err(e) = f.write_all(s.as_bytes()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not create {}: {e}", path.display()),
    }
}

/// Geometric mean of an iterator of positive values (the paper reports
/// IPC improvements as averages across workloads).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Print a horizontal rule sized for the standard table width.
pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert!((geomean([2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scale_env_round_trip() {
        let d = Scale::default();
        assert_eq!(d.cores, 8);
        assert!(d.instructions > 0);
        let cfg = d.config();
        assert_eq!(cfg.cores, 8);
        assert_eq!(d.with_cores(2).cores, 2);
    }
}
