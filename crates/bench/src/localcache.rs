//! Local content-addressed cell cache (`NOMAD_LOCAL_CACHE`).
//!
//! The serve tier already content-addresses finished cells by the
//! FNV-1a 64 of their canonical [`JobSpec`] JSON
//! ([`JobSpec::content_key`]); this module gives a *local* sweep the
//! same memoization without standing up a server. With
//! `NOMAD_LOCAL_CACHE=1`, every completed cell is written to
//! `results/cache/<key:016x>.json` and the next sweep that asks for a
//! byte-identical job tuple gets the stored [`RunReport`] back instead
//! of re-simulating — handy when iterating on one figure while the
//! rest of the grid is unchanged.
//!
//! Any other non-empty value (except `0`) is taken as the cache
//! directory itself, so tests and throwaway sweeps can point the cache
//! at a scratch path.
//!
//! Correctness leans on two things:
//!
//! * the simulator is deterministic: the job tuple fully determines
//!   the report, so a hit is byte-identical to a re-run (held by the
//!   `local_cache` parity test);
//! * 64-bit keys can collide, so each entry stores the canonical JSON
//!   it was keyed from and a lookup whose canonical form mismatches is
//!   treated as a miss (same discipline as
//!   [`nomad_serve::ResultCache`]).
//!
//! Everything is best-effort: unreadable or unwritable entries degrade
//! to a plain re-run, never an error.

use nomad_serve::JobSpec;
use nomad_sim::RunReport;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One stored cell: the canonical job JSON it was keyed from (the
/// collision guard) plus the finished report.
#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    canonical: String,
    report: RunReport,
}

/// The active cache directory, or `None` when caching is disabled
/// (unset, empty, or `0`). `1` selects the standard
/// `results/cache/` next to the other artifacts; any other value is
/// used as the directory verbatim.
pub fn dir() -> Option<PathBuf> {
    match std::env::var("NOMAD_LOCAL_CACHE") {
        Err(_) => None,
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) if v == "1" => {
            // Same workspace-root anchoring as `save_json`.
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root exists");
            Some(root.join("results").join("cache"))
        }
        Ok(v) => Some(PathBuf::from(v)),
    }
}

fn entry_path(dir: &std::path::Path, job: &JobSpec) -> PathBuf {
    dir.join(format!("{:016x}.json", job.content_key()))
}

/// The stored report for `job`, if the cache holds one whose canonical
/// JSON matches exactly. `None` on a miss, a key collision, or any
/// read/parse failure.
pub fn lookup(job: &JobSpec) -> Option<RunReport> {
    let dir = dir()?;
    let text = std::fs::read_to_string(entry_path(&dir, job)).ok()?;
    let entry: Entry = serde_json::from_str(&text).ok()?;
    (entry.canonical == job.canonical_json()).then_some(entry.report)
}

/// Store a finished cell (best effort; failures are reported to stderr
/// and otherwise ignored).
pub fn store(job: &JobSpec, report: &RunReport) {
    let Some(dir) = dir() else { return };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return;
    }
    let entry = Entry {
        canonical: job.canonical_json(),
        report: report.clone(),
    };
    let path = entry_path(&dir, job);
    let json = serde_json::to_string(&entry).expect("entry serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_values() {
        // Can't touch the process environment safely under the
        // multi-threaded test harness; exercise the parse rules on the
        // current value instead: unset/empty/0 must disable.
        match std::env::var("NOMAD_LOCAL_CACHE") {
            Err(_) => assert!(dir().is_none()),
            Ok(v) if v.is_empty() || v == "0" => assert!(dir().is_none()),
            Ok(_) => assert!(dir().is_some()),
        }
    }
}
