//! A deterministic bursty load generator for the serve/fleet overload
//! stack.
//!
//! The default mode is a **virtual-time discrete-event simulation** of
//! a small fleet under an open-loop arrival stream: seeded
//! Poisson-like arrivals whose rate follows a square wave (steady →
//! burst → steady), two serve nodes with bounded queues, the *actual*
//! admission/CoDel/deadline arithmetic from [`nomad_serve::overload`],
//! and the *actual* circuit breaker from [`nomad_fleet::Breaker`]
//! driven on the virtual clock. One node turns slow mid-run, the
//! latency rule trips its breaker, traffic reroutes, and the breaker
//! probes its way closed again — the whole overload-protection story
//! in a few hundred virtual milliseconds of integer arithmetic.
//!
//! Everything is integer-only: inter-arrival times come from a
//! precomputed integer exponential table (`EXP_TABLE`) sampled with
//! [`nomad_faults::splitmix64`], sojourn quantiles are log-bucket
//! lower bounds ([`LogHistogram`]), and the report contains no floats
//! — so `results/loadgen.json` is **byte-identical** across repeats,
//! platforms, and any `NOMAD_JOBS` width, and CI diffs it against the
//! committed artifact.
//!
//! The `nomad-loadgen` binary also has a `--live` mode that replays
//! the same arrival schedule in real time against a running fleet
//! (`NOMAD_FLEET_ADDRS`), with client-side deadline budgets
//! ([`nomad_serve::submit_within_deadline`]) and a client-side
//! [`Membership`](nomad_fleet::Membership) of breakers, asserting the
//! same SLO shape (see `EXPERIMENTS.md`).

use nomad_fleet::{Breaker, BreakerConfig, BreakerState};
use nomad_serve::overload;
use nomad_types::stats::LogHistogram;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Duration;

/// `round(-ln((i + 0.5) / 64) * 1000)` for `i` in `0..64`: a 64-entry
/// integer lookup table for exponential inter-arrival sampling with
/// mean ≈ 1000 (per-mille of the configured mean gap). Hard-coded so
/// the generator never touches floating point — the committed
/// `results/loadgen.json` must be byte-identical on every platform.
const EXP_TABLE: [u64; 64] = [
    4852, 3753, 3243, 2906, 2655, 2454, 2287, 2144, //
    2019, 1908, 1808, 1717, 1633, 1556, 1485, 1418, //
    1356, 1297, 1241, 1188, 1138, 1091, 1045, 1002, //
    960, 920, 882, 845, 809, 774, 741, 709, //
    678, 647, 618, 589, 562, 535, 508, 483, //
    458, 433, 409, 386, 363, 341, 319, 298, //
    277, 257, 237, 217, 198, 179, 161, 143, //
    125, 107, 90, 73, 56, 40, 24, 8,
];

/// One square-wave phase of the arrival stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Phase {
    /// Mean inter-arrival gap during this phase, in virtual ms.
    pub mean_gap_ms: u64,
    /// Phase length in virtual ms.
    pub duration_ms: u64,
}

/// A window during which one node serves every job `factor`× slower
/// (an overloaded or limping node; trips the breaker latency rule).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowNode {
    /// Which node limps.
    pub node: usize,
    /// Service-time multiplier while slow.
    pub factor: u64,
    /// Slow window start (virtual ms).
    pub from_ms: u64,
    /// Slow window end (virtual ms, exclusive).
    pub to_ms: u64,
}

/// The SLO the run is judged against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Slo {
    /// Minimum percentage of offered jobs that must complete within
    /// their deadline.
    pub min_goodput_pct: u64,
    /// Maximum p99 sojourn (log-bucket lower bound, ms).
    pub max_p99_ms: u64,
}

/// The whole scenario. [`LoadgenConfig::default`] is the committed
/// burst scenario CI replays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenConfig {
    /// RNG seed for arrivals, routing salt, and service jitter.
    pub seed: u64,
    /// Fleet size.
    pub nodes: usize,
    /// Worker threads per node.
    pub workers_per_node: u64,
    /// Bounded queue capacity per node.
    pub queue_capacity: usize,
    /// Per-job deadline budget (ms; admission + dequeue + pre-execute
    /// checkpoints all measure against this).
    pub deadline_ms: u64,
    /// CoDel queue-delay target (ms; 0 disables).
    pub codel_target_ms: u64,
    /// Base service time per job (ms).
    pub service_base_ms: u64,
    /// Uniform service jitter in `[0, jitter]` ms added to the base.
    pub service_jitter_ms: u64,
    /// The arrival square wave.
    pub phases: Vec<Phase>,
    /// The mid-run slow node.
    pub slow: SlowNode,
    /// Per-node breaker thresholds.
    pub breaker_window: u32,
    /// Failures in the window that trip a breaker.
    pub breaker_fails: u32,
    /// Breaker cooldown before a half-open probe (ms).
    pub breaker_cooldown_ms: u64,
    /// Breaker latency rule: successes slower than this count as
    /// failures (ms; 0 disables).
    pub breaker_latency_ms: u64,
    /// The verdict thresholds.
    pub slo: Slo,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            seed: 42,
            nodes: 2,
            workers_per_node: 2,
            queue_capacity: 16,
            deadline_ms: 400,
            codel_target_ms: 200,
            service_base_ms: 40,
            service_jitter_ms: 30,
            phases: vec![
                Phase {
                    mean_gap_ms: 25,
                    duration_ms: 4_000,
                },
                Phase {
                    mean_gap_ms: 8,
                    duration_ms: 2_000,
                },
                Phase {
                    mean_gap_ms: 25,
                    duration_ms: 4_000,
                },
            ],
            slow: SlowNode {
                node: 1,
                factor: 8,
                from_ms: 3_000,
                to_ms: 6_000,
            },
            breaker_window: 16,
            breaker_fails: 6,
            breaker_cooldown_ms: 400,
            breaker_latency_ms: 250,
            slo: Slo {
                min_goodput_pct: 50,
                max_p99_ms: 1_024,
            },
        }
    }
}

impl LoadgenConfig {
    /// The default scenario with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        LoadgenConfig {
            seed,
            ..LoadgenConfig::default()
        }
    }

    /// The breaker thresholds as a fleet [`BreakerConfig`] (shared by
    /// the virtual nodes and the live mode's client-side membership).
    pub fn breaker_config(&self) -> BreakerConfig {
        BreakerConfig {
            window: self.breaker_window,
            fail_threshold: self.breaker_fails,
            cooldown: Duration::from_millis(self.breaker_cooldown_ms),
            latency_threshold: Duration::from_millis(self.breaker_latency_ms),
        }
    }
}

/// Work shed, by checkpoint (mirrors the `overload.*` counters).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShedCounts {
    /// Shed at admission: estimated wait exceeded the budget.
    pub admit: u64,
    /// Rejected outright: the bounded queue was full (`Overloaded`).
    pub queue_full: u64,
    /// Shed at dequeue: the deadline passed while queued.
    pub queue: u64,
    /// Shed at dequeue by the CoDel queue-delay rule.
    pub codel: u64,
}

/// Breaker activity across the run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BreakerCounts {
    /// Closed → Open transitions.
    pub trips: u64,
    /// Half-open probes issued.
    pub probes: u64,
    /// HalfOpen → Closed recoveries.
    pub closes: u64,
    /// Arrivals rerouted off a tripped node.
    pub reroutes: u64,
}

/// The verdict: every clause of the SLO, then the conjunction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Verdict {
    /// `goodput_pct >= slo.min_goodput_pct`.
    pub goodput_ok: bool,
    /// `p99 <= slo.max_p99_ms`.
    pub p99_ok: bool,
    /// No job whose deadline had already expired was executed.
    pub no_expired_executions: bool,
    /// At least one breaker tripped (the scenario's slow node was
    /// detected and routed around).
    pub breaker_tripped: bool,
    /// All of the above.
    pub pass: bool,
}

/// The integer-only run report serialized to `results/loadgen.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// The scenario that produced this report.
    pub config: LoadgenConfig,
    /// Total arrivals offered.
    pub offered: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Completions that landed within their deadline (the goodput
    /// numerator).
    pub completed_in_deadline: u64,
    /// Integer goodput percentage (`completed_in_deadline * 100 /
    /// offered`).
    pub goodput_pct: u64,
    /// Work shed, by checkpoint.
    pub shed: ShedCounts,
    /// Breaker activity.
    pub breaker: BreakerCounts,
    /// Jobs executed after their deadline had already expired — the
    /// SLO witness; must be zero while shedding is on.
    pub expired_executions: u64,
    /// p50 sojourn (arrival → completion), log-bucket lower bound, ms.
    pub sojourn_p50_ms: u64,
    /// p99 sojourn, log-bucket lower bound, ms.
    pub sojourn_p99_ms: u64,
    /// The verdict.
    pub verdict: Verdict,
}

/// A queued virtual job.
struct Queued {
    arrived_ms: u64,
    deadline_ms: u64,
}

/// One virtual serve node.
struct VNode {
    queue: VecDeque<Queued>,
    busy: u64,
    breaker: Breaker,
    /// EWMA service-time estimate, fed through the real
    /// [`overload::ewma_step`].
    ewma_ms: u64,
}

/// A pending event on the virtual clock. Orderable newest-last so a
/// `BinaryHeap<Reverse<Event>>` pops in (time, seq) order — `seq` is
/// the deterministic tie-break.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at_ms: u64,
    seq: u64,
    kind: EventKind,
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A new job arrives at the router.
    Arrival,
    /// Node `node` finishes a job that arrived at `arrived_ms` with
    /// deadline `deadline_ms`, after `service_ms` of execution.
    Done {
        node: usize,
        arrived_ms: u64,
        deadline_ms: u64,
        service_ms: u64,
    },
}

/// A tiny seeded counter-mode RNG over [`nomad_faults::splitmix64`].
struct Rng {
    seed: u64,
    ctr: u64,
}

impl Rng {
    fn next(&mut self) -> u64 {
        self.ctr += 1;
        nomad_faults::splitmix64(self.seed ^ self.ctr.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// The arrival schedule for `cfg`: virtual-ms timestamps of a square
/// wave of exponential gaps (open loop — arrivals never slow down
/// under overload). Deterministic in `cfg.seed`; the live mode replays
/// exactly this schedule on the wall clock.
pub fn arrival_schedule(cfg: &LoadgenConfig) -> Vec<u64> {
    let mut rng = Rng {
        seed: cfg.seed,
        ctr: 0,
    };
    let mut arrivals: Vec<u64> = Vec::new();
    let mut t = 0u64;
    let mut phase_start = 0u64;
    for phase in &cfg.phases {
        let phase_end = phase_start + phase.duration_ms;
        while t < phase_end {
            let gap = (phase.mean_gap_ms * EXP_TABLE[(rng.next() % 64) as usize] / 1000).max(1);
            t += gap;
            if t < phase_end {
                arrivals.push(t);
            }
        }
        // A gap that overshot the phase boundary re-rolls under the
        // next phase's rate, from the boundary.
        t = t.min(phase_end);
        phase_start = phase_end;
    }
    arrivals
}

/// Run the scenario on the virtual clock and judge it. Pure integer
/// arithmetic end to end; identical inputs give identical reports.
pub fn run_virtual(cfg: &LoadgenConfig) -> LoadgenReport {
    assert!(cfg.nodes > 0 && cfg.workers_per_node > 0);
    // The simulation stream is independent of the arrival stream so
    // `arrival_schedule` can be replayed standalone (live mode).
    let mut rng = Rng {
        seed: nomad_faults::splitmix64(cfg.seed),
        ctr: 0,
    };
    let mut nodes: Vec<VNode> = (0..cfg.nodes)
        .map(|_| VNode {
            queue: VecDeque::new(),
            busy: 0,
            breaker: Breaker::new(cfg.breaker_config()),
            ewma_ms: 0,
        })
        .collect();

    let arrivals = arrival_schedule(cfg);
    let mut events = std::collections::BinaryHeap::new();
    let mut seq = 0u64;
    for &at in &arrivals {
        events.push(std::cmp::Reverse(Event {
            at_ms: at,
            seq,
            kind: EventKind::Arrival,
        }));
        seq += 1;
    }

    let offered = arrivals.len() as u64;
    let mut completed = 0u64;
    let mut completed_in_deadline = 0u64;
    let mut shed = ShedCounts::default();
    let mut reroutes = 0u64;
    let mut expired_executions = 0u64;
    let mut sojourns = LogHistogram::new();

    // Service time for a job starting now on `node`.
    let service = |now: u64, node: usize, rng: &mut Rng, cfg: &LoadgenConfig| -> u64 {
        let jitter = if cfg.service_jitter_ms == 0 {
            0
        } else {
            rng.next() % (cfg.service_jitter_ms + 1)
        };
        let base = cfg.service_base_ms + jitter;
        if node == cfg.slow.node && now >= cfg.slow.from_ms && now < cfg.slow.to_ms {
            base * cfg.slow.factor
        } else {
            base
        }
    };

    while let Some(std::cmp::Reverse(ev)) = events.pop() {
        let now = ev.at_ms;
        match ev.kind {
            EventKind::Arrival => {
                // Route: salted hash of the arrival, then the breaker
                // gate — a tripped node loses the job to the next
                // allowed one (or keeps it if none is).
                let preferred = (rng.next() % cfg.nodes as u64) as usize;
                let mut target = preferred;
                if !nodes[target].breaker.allow(now) {
                    if let Some(alt) = (1..cfg.nodes)
                        .map(|step| (preferred + step) % cfg.nodes)
                        .find(|&n| nodes[n].breaker.allow(now))
                    {
                        reroutes += 1;
                        target = alt;
                    }
                }
                let node = &mut nodes[target];
                // Admission control: shed on arrival when the queue's
                // estimated wait already exceeds the budget.
                let est = overload::estimated_wait_ms(
                    node.queue.len(),
                    cfg.workers_per_node as usize,
                    node.ewma_ms,
                );
                if overload::admit_would_expire(cfg.deadline_ms, est) {
                    shed.admit += 1;
                    node.breaker.record(now, false, Duration::ZERO);
                    continue;
                }
                // Bounded queue: reject outright at capacity.
                if node.queue.len() >= cfg.queue_capacity {
                    shed.queue_full += 1;
                    node.breaker.record(now, false, Duration::ZERO);
                    continue;
                }
                let deadline_ms = now + cfg.deadline_ms;
                if node.busy < cfg.workers_per_node {
                    node.busy += 1;
                    let took = service(now, target, &mut rng, cfg);
                    events.push(std::cmp::Reverse(Event {
                        at_ms: now + took,
                        seq,
                        kind: EventKind::Done {
                            node: target,
                            arrived_ms: now,
                            deadline_ms,
                            service_ms: took,
                        },
                    }));
                    seq += 1;
                } else {
                    node.queue.push_back(Queued {
                        arrived_ms: now,
                        deadline_ms,
                    });
                }
            }
            EventKind::Done {
                node: idx,
                arrived_ms,
                deadline_ms,
                service_ms,
            } => {
                let sojourn = now - arrived_ms;
                sojourns.record(sojourn);
                completed += 1;
                if now <= deadline_ms {
                    completed_in_deadline += 1;
                }
                // The breaker judges the node by the full sojourn —
                // exactly what a router-side client observes; the
                // admission EWMA tracks pure execution time, exactly
                // what the serve tier's `record_service_time` feeds.
                nodes[idx]
                    .breaker
                    .record(now, true, Duration::from_millis(sojourn));
                nodes[idx].ewma_ms = overload::ewma_step(nodes[idx].ewma_ms, service_ms);
                // Pull the next admissible job: the dequeue checkpoint
                // sheds expired work, then the CoDel rule sheds
                // persistently-late work (never the last job).
                let mut started = false;
                while let Some(q) = nodes[idx].queue.pop_front() {
                    let sojourn = now - q.arrived_ms;
                    if now > q.deadline_ms {
                        shed.queue += 1;
                        nodes[idx].breaker.record(now, false, Duration::ZERO);
                        continue;
                    }
                    if overload::codel_should_shed(
                        sojourn,
                        cfg.codel_target_ms,
                        nodes[idx].queue.len(),
                    ) {
                        shed.codel += 1;
                        nodes[idx].breaker.record(now, false, Duration::ZERO);
                        continue;
                    }
                    // Pre-execute checkpoint (the SLO witness): a job
                    // that passed the dequeue checks cannot have
                    // expired, so this stays zero while shedding is on.
                    if now > q.deadline_ms {
                        expired_executions += 1;
                    }
                    let took = service(now, idx, &mut rng, cfg);
                    events.push(std::cmp::Reverse(Event {
                        at_ms: now + took,
                        seq,
                        kind: EventKind::Done {
                            node: idx,
                            arrived_ms: q.arrived_ms,
                            deadline_ms: q.deadline_ms,
                            service_ms: took,
                        },
                    }));
                    seq += 1;
                    started = true;
                    break;
                }
                if !started {
                    nodes[idx].busy -= 1;
                }
            }
        }
    }

    let breaker = BreakerCounts {
        trips: nodes.iter().map(|n| n.breaker.trip_count()).sum(),
        probes: nodes.iter().map(|n| n.breaker.probe_count()).sum(),
        closes: nodes.iter().map(|n| n.breaker.close_count()).sum(),
        reroutes,
    };
    for node in &nodes {
        debug_assert_eq!(node.busy, 0, "all work drained");
        debug_assert_ne!(
            node.breaker.state(),
            BreakerState::HalfOpen,
            "no probe outstanding at drain"
        );
    }
    let goodput_pct = (completed_in_deadline * 100)
        .checked_div(offered)
        .unwrap_or(100);
    let p50 = sojourns.quantile(0.5);
    let p99 = sojourns.quantile(0.99);
    let verdict = Verdict {
        goodput_ok: goodput_pct >= cfg.slo.min_goodput_pct,
        p99_ok: p99 <= cfg.slo.max_p99_ms,
        no_expired_executions: expired_executions == 0,
        breaker_tripped: breaker.trips >= 1,
        pass: goodput_pct >= cfg.slo.min_goodput_pct
            && p99 <= cfg.slo.max_p99_ms
            && expired_executions == 0
            && breaker.trips >= 1,
    };
    LoadgenReport {
        config: cfg.clone(),
        offered,
        completed,
        completed_in_deadline,
        goodput_pct,
        shed,
        breaker,
        expired_executions,
        sojourn_p50_ms: p50,
        sojourn_p99_ms: p99,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_runs_are_deterministic() {
        let cfg = LoadgenConfig::default();
        let a = run_virtual(&cfg);
        let b = run_virtual(&cfg);
        let ja = serde_json::to_string(&a).expect("serialize");
        let jb = serde_json::to_string(&b).expect("serialize");
        assert_eq!(ja, jb, "same seed, byte-identical report");
        assert!(a.offered > 100, "the scenario offers real load");
    }

    #[test]
    fn different_seeds_differ_but_both_pass() {
        let a = run_virtual(&LoadgenConfig::with_seed(42));
        let b = run_virtual(&LoadgenConfig::with_seed(43));
        assert_ne!(
            (a.offered, a.completed),
            (b.offered, b.completed),
            "seeds shift the stream"
        );
        assert!(a.verdict.pass, "default scenario holds its SLO: {a:?}");
        assert!(b.verdict.pass, "SLO is not seed-tuned: {:?}", b.verdict);
    }

    #[test]
    fn the_slow_node_trips_its_breaker_and_recovers() {
        let report = run_virtual(&LoadgenConfig::default());
        assert!(report.verdict.breaker_tripped);
        assert!(report.breaker.probes >= 1, "cooldown probes were issued");
        assert!(report.breaker.closes >= 1, "the breaker healed");
        assert!(report.breaker.reroutes >= 1, "traffic routed around");
        assert_eq!(report.expired_executions, 0, "no expired job ever ran");
    }

    #[test]
    fn burst_pressure_actually_sheds() {
        let report = run_virtual(&LoadgenConfig::default());
        let total_shed =
            report.shed.admit + report.shed.queue_full + report.shed.queue + report.shed.codel;
        assert!(total_shed > 0, "the burst overruns capacity: {report:?}");
        assert_eq!(
            report.offered,
            report.completed + total_shed,
            "every arrival completes or sheds exactly once"
        );
    }
}
