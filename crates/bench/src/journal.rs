//! Crash-safe sweep journal: append-only per-grid progress records
//! enabling `--resume` after a SIGINT or crash.
//!
//! A journal lives at `results/journal/<grid-hash>.jsonl`, where the
//! grid hash is the FNV-1a 64 of the grid's *key* — a string encoding
//! everything that determines the grid's rows (harness tag, scale,
//! parameter lists). The first line is a header `{"grid": "<key>"}`;
//! every following line is one completed cell, `{"idx": N, "row":
//! <serialized row>}`, appended and fsync'd the moment the cell
//! finishes, in completion order (row order is restored from `idx`).
//!
//! On a clean completion the journal is deleted. After a SIGINT or
//! crash it remains; rerunning the harness with `--resume` (or
//! `NOMAD_RESUME=1`) restores the recorded rows and re-runs only the
//! missing cells. Because cells are pure and JSON round-trips floats
//! exactly (shortest-representation printing, exact parsing), a
//! resumed sweep's artifacts are byte-identical to a clean run's.
//!
//! Torn final lines — the fsync'd append can still be cut mid-line by
//! a crash — parse as garbage and are skipped: that cell simply
//! re-runs. Journaling is enabled by [`crate::harness_init`] (so
//! harness binaries get it and in-process test sweeps do not) and can
//! be forced off with `NOMAD_JOURNAL=0`.

use crate::par;
use nomad_types::CancelToken;
use serde::{Deserialize, Serialize, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Whether sweeps journal their progress. Off by default so library
/// consumers and in-process tests leave no `results/journal/` files;
/// [`crate::harness_init`] turns it on for harness binaries (unless
/// `NOMAD_JOURNAL=0`).
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Whether an existing journal should be restored (`--resume` /
/// `NOMAD_RESUME=1`) rather than overwritten.
static RESUME: AtomicBool = AtomicBool::new(false);

/// Enable or disable journaling for this process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether sweeps journal their progress.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Request (or cancel) resume-from-journal for this process.
pub fn set_resume(on: bool) {
    RESUME.store(on, Ordering::Relaxed);
}

/// Whether an existing journal should be restored.
pub fn resume_requested() -> bool {
    RESUME.load(Ordering::Relaxed)
}

/// `results/journal/` at the workspace root (same anchoring as
/// [`crate::save_json`]).
fn journal_dir() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("results")
        .join("journal")
}

/// The journal file path for grid `key`. The grid hash is the
/// workspace content hash ([`nomad_types::hash::fnv1a`]) — the same
/// function the serve cache and the fleet ring key on.
pub fn journal_path(key: &str) -> PathBuf {
    journal_dir().join(format!(
        "{:016x}.jsonl",
        nomad_types::hash::fnv1a(key.as_bytes())
    ))
}

/// One open journal: an append-mode file handle plus its path (for
/// deletion on completion).
struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Open the journal for `key`, returning it plus any rows restored
    /// from a previous run (empty unless [`resume_requested`] and a
    /// journal with a matching header exists). Without resume, any
    /// stale journal is truncated.
    fn open(key: &str) -> std::io::Result<(Journal, Vec<(usize, Value)>)> {
        let path = journal_path(key);
        std::fs::create_dir_all(path.parent().expect("journal dir has a parent"))?;
        let mut restored = Vec::new();
        let mut header_ok = false;
        if resume_requested() {
            if let Ok(f) = File::open(&path) {
                for (lineno, line) in BufReader::new(f).lines().map_while(Result::ok).enumerate() {
                    let Ok(value) = serde_json::from_str::<Value>(&line) else {
                        // A torn final line (or any corruption): skip
                        // — the cell re-runs.
                        continue;
                    };
                    let Value::Object(fields) = &value else {
                        continue;
                    };
                    if lineno == 0 {
                        header_ok = fields
                            .iter()
                            .any(|(k, v)| k == "grid" && *v == Value::Str(key.to_string()));
                        if !header_ok {
                            // A foreign journal under our hash (key
                            // collision, or a changed grid definition):
                            // restore nothing, start fresh.
                            break;
                        }
                        continue;
                    }
                    let idx = fields.iter().find(|(k, _)| k == "idx").and_then(|(_, v)| {
                        if let Value::U64(n) = v {
                            Some(*n as usize)
                        } else {
                            None
                        }
                    });
                    let row = fields.iter().find(|(k, _)| k == "row").map(|(_, v)| v);
                    if let (Some(idx), Some(row)) = (idx, row) {
                        restored.push((idx, row.clone()));
                    }
                }
            }
        }
        let file = if header_ok {
            // Keep the existing records and append new ones.
            OpenOptions::new().append(true).open(&path)?
        } else {
            let mut f = File::create(&path)?;
            writeln!(
                f,
                "{}",
                serde_json::to_string(&Value::Object(vec![(
                    "grid".to_string(),
                    Value::Str(key.to_string()),
                )]))
                .expect("header serializes")
            )?;
            f.sync_data()?;
            f
        };
        Ok((
            Journal {
                path,
                file: Mutex::new(file),
            },
            restored,
        ))
    }

    /// Append one completed cell and fsync, so the record survives a
    /// crash immediately after. Failures are reported, not fatal — a
    /// full disk degrades resumability, never the sweep itself.
    fn record(&self, idx: usize, row: &Value) {
        let line = serde_json::to_string(&Value::Object(vec![
            ("idx".to_string(), Value::U64(idx as u64)),
            ("row".to_string(), row.clone()),
        ]))
        .expect("record serializes");
        let mut file = self.file.lock().expect("journal lock");
        if let Err(e) = writeln!(file, "{line}").and_then(|()| file.sync_data()) {
            eprintln!(
                "warning: could not journal cell {idx} to {}: {e}",
                self.path.display()
            );
        }
    }

    /// The sweep completed: the journal has served its purpose.
    fn finish(self) {
        drop(self.file);
        let _ = std::fs::remove_file(&self.path);
    }
}

/// [`par::run_cells`] with crash-safe progress journaling under grid
/// `key`. When journaling is [`enabled`], every completed cell is
/// appended to the grid's journal; with [`resume_requested`], rows
/// already recorded by an interrupted run are restored (counted in
/// `resilience.journal_cells_resumed`) and only the missing cells
/// re-run. Returns `None` on cancellation — with the journal left in
/// place, so the next `--resume` run picks up from here.
pub fn run_cells_journaled<C, R, F>(
    jobs: usize,
    cancel: &CancelToken,
    key: &str,
    cells: Vec<C>,
    f: F,
) -> Option<Vec<R>>
where
    C: Sync,
    R: Send + Serialize + Deserialize,
    F: Fn(&C, &CancelToken) -> Option<R> + Sync,
{
    if !enabled() {
        return par::run_cells(jobs, cancel, cells, f);
    }
    let (journal, restored_raw) = match Journal::open(key) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("warning: journal unavailable for this sweep ({e}); running unjournaled");
            return par::run_cells(jobs, cancel, cells, f);
        }
    };
    let total = cells.len();
    let mut restored: Vec<(usize, R)> = Vec::new();
    for (idx, raw) in restored_raw {
        if idx >= total || restored.iter().any(|(i, _)| *i == idx) {
            continue;
        }
        // An undecodable row (schema drift between runs) just re-runs.
        if let Ok(row) = serde_json::from_value::<R>(&raw) {
            restored.push((idx, row));
        }
    }
    if !restored.is_empty() {
        nomad_obs::resilience()
            .journal_cells_resumed
            .add(restored.len() as u64);
        eprintln!(
            "[resumed {}/{} cells from {}]",
            restored.len(),
            total,
            journal.path.display()
        );
    }
    let todo: Vec<(usize, C)> = cells
        .into_iter()
        .enumerate()
        .filter(|(idx, _)| !restored.iter().any(|(i, _)| i == idx))
        .collect();
    let fresh = par::run_cells(jobs, cancel, todo, |(idx, cell), cancel| {
        let row = f(cell, cancel)?;
        journal.record(*idx, &serde_json::to_value(&row).expect("row serializes"));
        Some((*idx, row))
    })?;
    let mut all = restored;
    all.extend(fresh);
    all.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(all.len(), total, "every cell restored or re-run");
    journal.finish();
    Some(all.into_iter().map(|(_, row)| row).collect())
}

/// [`run_cells_journaled`] under the process-wide
/// [`par::sweep_token`], exiting 130 on cancellation — the journaled
/// counterpart of [`par::run_cells_or_exit`], and what every figure
/// harness calls. On cancellation the journal survives, and the exit
/// message says how to resume.
pub fn run_cells_journaled_or_exit<C, R, F>(jobs: usize, key: &str, cells: Vec<C>, f: F) -> Vec<R>
where
    C: Sync,
    R: Send + Serialize + Deserialize,
    F: Fn(&C, &CancelToken) -> Option<R> + Sync,
{
    match run_cells_journaled(jobs, par::sweep_token(), key, cells, f) {
        Some(out) => out,
        None => {
            if enabled() {
                eprintln!(
                    "sweep cancelled; completed cells are journaled — rerun with --resume \
                     (or NOMAD_RESUME=1) to continue"
                );
            } else {
                eprintln!("sweep cancelled; discarding partial grid");
            }
            std::process::exit(130);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests toggle the process-wide ENABLED/RESUME switches;
    /// serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_journaling<Ret>(resume: bool, f: impl FnOnce() -> Ret) -> Ret {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        set_resume(resume);
        let out = f();
        set_enabled(false);
        set_resume(false);
        out
    }

    #[test]
    fn disabled_journaling_is_plain_run_cells() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let key = "test:disabled";
        let out = run_cells_journaled(2, &CancelToken::new(), key, vec![1u64, 2, 3], |&c, _| {
            Some(c * 10)
        })
        .expect("uncancelled");
        assert_eq!(out, vec![10, 20, 30]);
        assert!(!journal_path(key).exists(), "no journal file when off");
    }

    #[test]
    fn completed_sweep_removes_its_journal() {
        with_journaling(false, || {
            let key = "test:completes";
            let out =
                run_cells_journaled(1, &CancelToken::new(), key, vec![1u64, 2], |&c, _| Some(c))
                    .expect("uncancelled");
            assert_eq!(out, vec![1, 2]);
            assert!(!journal_path(key).exists(), "journal deleted on success");
        });
    }

    #[test]
    fn interrupted_sweep_resumes_without_rerunning_recorded_cells() {
        with_journaling(false, || {
            let key = "test:resume";
            let cells: Vec<u64> = (0..6).collect();
            // First run: cancel after three cells complete.
            let cancel = CancelToken::new();
            let ran = std::sync::atomic::AtomicUsize::new(0);
            let out = run_cells_journaled(1, &cancel, key, cells.clone(), |&c, cancel| {
                if ran.fetch_add(1, Ordering::Relaxed) == 2 {
                    cancel.cancel();
                }
                Some(c * 7)
            });
            assert!(out.is_none(), "cancelled mid-sweep");
            assert!(journal_path(key).exists(), "journal survives cancellation");

            // Second run, resuming: only the missing cells execute.
            set_resume(true);
            let reran = std::sync::atomic::AtomicUsize::new(0);
            let out = run_cells_journaled(1, &CancelToken::new(), key, cells, |&c, _| {
                reran.fetch_add(1, Ordering::Relaxed);
                Some(c * 7)
            })
            .expect("resumed run completes");
            assert_eq!(out, (0..6).map(|c| c * 7).collect::<Vec<_>>());
            assert_eq!(
                reran.load(Ordering::Relaxed),
                3,
                "three cells were journaled"
            );
            assert!(!journal_path(key).exists(), "journal deleted on completion");
        });
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        with_journaling(false, || {
            let key = "test:torn";
            // Fabricate an interrupted journal with a torn final line.
            let path = journal_path(key);
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(
                &path,
                format!(
                    "{}\n{}\n{}",
                    "{\"grid\":\"test:torn\"}", "{\"idx\":0,\"row\":5}", "{\"idx\":1,\"ro"
                ),
            )
            .expect("write journal");
            set_resume(true);
            let reran = std::sync::atomic::AtomicUsize::new(0);
            let out = run_cells_journaled(1, &CancelToken::new(), key, vec![5u64, 6], |&c, _| {
                reran.fetch_add(1, Ordering::Relaxed);
                Some(c)
            })
            .expect("completes");
            assert_eq!(out, vec![5, 6]);
            assert_eq!(
                reran.load(Ordering::Relaxed),
                1,
                "cell 0 restored, torn cell 1 re-ran"
            );
        });
    }

    #[test]
    fn foreign_header_restores_nothing() {
        with_journaling(false, || {
            let key = "test:foreign";
            let path = journal_path(key);
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(
                &path,
                "{\"grid\":\"some-other-grid\"}\n{\"idx\":0,\"row\":999}\n",
            )
            .expect("write journal");
            set_resume(true);
            let out = run_cells_journaled(1, &CancelToken::new(), key, vec![1u64], |&c, _| Some(c))
                .expect("completes");
            assert_eq!(out, vec![1], "foreign row 999 must not be restored");
        });
    }

    #[test]
    fn without_resume_a_stale_journal_is_overwritten() {
        with_journaling(false, || {
            let key = "test:stale";
            let path = journal_path(key);
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(
                &path,
                "{\"grid\":\"test:stale\"}\n{\"idx\":0,\"row\":999}\n",
            )
            .expect("write journal");
            let out = run_cells_journaled(1, &CancelToken::new(), key, vec![4u64], |&c, _| Some(c))
                .expect("completes");
            assert_eq!(out, vec![4], "stale journal ignored without --resume");
        });
    }
}
