//! The house oracle at fleet scale: a figure grid produces
//! byte-identical rows whether it runs in-process, through one
//! nomad-serve node, or sharded across a fleet of 1, 2 or 4 nodes —
//! at any client-side `jobs` width.
//!
//! The fleet sizes share one pool of four running nodes (size 1 uses
//! the first, size 2 the first two, …), so later runs also exercise
//! the shared cache tier: node 0 computed everything during the
//! size-1 run, and when the size-2/size-4 rings route cells to other
//! nodes, those nodes' workers probe node 0's cache and fetch instead
//! of recomputing — observable as `fleet.probe_hits` /
//! `fleet.remote_fetches`.

use nomad_bench::figs::{sweep, sweep_via_fleet, Row};
use nomad_bench::Scale;
use nomad_serve::{serve, ServerConfig, ServerHandle};
use nomad_sim::SchemeSpec;
use nomad_trace::WorkloadProfile;

fn assert_rows_identical(oracle: &[Row], got: &[Row], what: &str) {
    assert_eq!(oracle.len(), got.len(), "{what}: row count");
    for (l, s) in oracle.iter().zip(got) {
        assert_eq!(
            serde_json::to_string(l).expect("row json"),
            serde_json::to_string(s).expect("row json"),
            "{what}: rows must match bit-for-bit"
        );
    }
}

#[test]
fn fleet_rows_match_local_at_every_size_and_width() {
    let scale = Scale {
        instructions: 6_000,
        warmup: 500,
        cores: 2,
        seed: 17,
        jobs: 2,
    };
    let specs = [
        SchemeSpec::Baseline,
        SchemeSpec::Tdram,
        SchemeSpec::Banshee,
        SchemeSpec::Nomad,
    ];
    let workloads = [WorkloadProfile::tc(), WorkloadProfile::libq()];

    let oracle = sweep(&scale, &specs, &workloads);

    let handles: Vec<ServerHandle> = (0..4)
        .map(|_| {
            serve(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                ..ServerConfig::default()
            })
            .expect("bind")
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.local_addr().to_string()).collect();

    let fleet = nomad_obs::fleet();
    let routed_before = fleet.value("fleet.cells_routed").expect("metric");
    let hits_before = fleet.value("fleet.probe_hits").expect("metric");
    let fetches_before = fleet.value("fleet.remote_fetches").expect("metric");

    let mut grids = 0u64;
    for size in [1usize, 2, 4] {
        for jobs in [1usize, 4] {
            let scale = Scale { jobs, ..scale };
            let rows = sweep_via_fleet(&addrs[..size], &scale, &specs, &workloads);
            assert_rows_identical(&oracle, &rows, &format!("fleet size {size}, jobs {jobs}"));
            grids += 1;
        }
    }

    let routed = fleet.value("fleet.cells_routed").expect("metric") - routed_before;
    assert_eq!(
        routed,
        grids * oracle.len() as u64,
        "every cell of every grid goes through the router"
    );
    // Node 0 computed the whole grid during the size-1 runs; the
    // larger rings deterministically place some cells on other nodes,
    // whose workers then probe node 0's cache and fetch the finished
    // reports instead of recomputing.
    let hits = fleet.value("fleet.probe_hits").expect("metric") - hits_before;
    let fetches = fleet.value("fleet.remote_fetches").expect("metric") - fetches_before;
    assert!(hits > 0, "larger fleets must hit the shared cache tier");
    assert!(fetches > 0, "every probe hit is followed by a fetch");
    assert!(fetches <= hits, "fetches only happen after hits");

    for handle in handles {
        handle.shutdown();
    }
}
