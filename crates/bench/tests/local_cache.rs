//! Parity for the local content-addressed cell cache
//! (`NOMAD_LOCAL_CACHE`): rows served from the cache must be
//! byte-identical to freshly simulated ones, and collisions /
//! corruption must degrade to a re-run, never a wrong answer.
//!
//! This file holds a single `#[test]` because it mutates the process
//! environment; keeping it alone in its own integration-test binary
//! means no concurrent test can race on `NOMAD_LOCAL_CACHE`.

use nomad_bench::{localcache, run_with_cfg_cell, Scale};
use nomad_serve::JobSpec;
use nomad_sim::{runner, SchemeSpec};
use nomad_trace::WorkloadProfile;
use nomad_types::CancelToken;

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap()
}

#[test]
fn cached_cells_are_byte_identical_to_fresh_runs() {
    let dir = std::env::temp_dir().join(format!("nomad-local-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("NOMAD_LOCAL_CACHE", &dir);
    assert_eq!(localcache::dir().as_deref(), Some(dir.as_path()));

    let scale = Scale {
        instructions: 3_000,
        warmup: 800,
        cores: 2,
        seed: 42,
        jobs: 1,
    };
    let cfg = scale.config();
    let cancel = CancelToken::new();
    let cells = [
        (SchemeSpec::Baseline, WorkloadProfile::tc()),
        (SchemeSpec::Nomad, WorkloadProfile::mcf()),
    ];

    for (spec, profile) in &cells {
        // First pass populates the cache, second pass must hit it;
        // both must equal an uncached reference run byte for byte.
        let first = run_with_cfg_cell(&cfg, &scale, spec, profile, &cancel).unwrap();
        let job = JobSpec {
            cfg: cfg.clone(),
            spec: spec.clone(),
            profile: profile.clone(),
            instructions: scale.instructions,
            warmup: scale.warmup,
            seed: scale.seed,
        };
        assert!(
            localcache::lookup(&job).is_some(),
            "finished cell was not stored"
        );
        let second = run_with_cfg_cell(&cfg, &scale, spec, profile, &cancel).unwrap();
        let fresh = runner::run_one(
            &cfg,
            spec,
            profile,
            scale.instructions,
            scale.warmup,
            scale.seed,
        );
        assert_eq!(json(&first), json(&fresh), "first (miss) pass diverged");
        assert_eq!(json(&second), json(&fresh), "cached pass diverged");
    }

    // A different seed is a different content address: no false hit.
    let other = JobSpec {
        cfg: cfg.clone(),
        spec: SchemeSpec::Baseline,
        profile: WorkloadProfile::tc(),
        instructions: scale.instructions,
        warmup: scale.warmup,
        seed: scale.seed + 1,
    };
    assert!(localcache::lookup(&other).is_none());

    // Corrupt an entry on disk: lookup must degrade to a miss and the
    // sweep must transparently re-simulate the right answer.
    let job = JobSpec {
        cfg: cfg.clone(),
        spec: SchemeSpec::Baseline,
        profile: WorkloadProfile::tc(),
        instructions: scale.instructions,
        warmup: scale.warmup,
        seed: scale.seed,
    };
    let path = dir.join(format!("{:016x}.json", job.content_key()));
    std::fs::write(&path, b"{ not json").unwrap();
    assert!(
        localcache::lookup(&job).is_none(),
        "corrupt entry must miss"
    );
    let recovered = run_with_cfg_cell(
        &cfg,
        &scale,
        &SchemeSpec::Baseline,
        &WorkloadProfile::tc(),
        &cancel,
    )
    .unwrap();
    let fresh = runner::run_one(
        &cfg,
        &SchemeSpec::Baseline,
        &WorkloadProfile::tc(),
        scale.instructions,
        scale.warmup,
        scale.seed,
    );
    assert_eq!(json(&recovered), json(&fresh));

    std::env::remove_var("NOMAD_LOCAL_CACHE");
    let _ = std::fs::remove_dir_all(&dir);
}
