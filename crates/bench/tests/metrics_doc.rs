//! METRICS.md must document exactly the metric names the registries
//! export — no stale rows, no undocumented counters.
//!
//! Runs in its own test process because it force-enables observability
//! ([`nomad_obs::set_enabled`]), which is process-global state.
//!
//! Names with per-instance indices (`cpu.0.instructions`,
//! `serve.worker.3.busy_ns`) are normalized by replacing every
//! all-digit dot-segment with `<i>`, which is how the reference table
//! writes them. Non-numeric segments (`l1`, `l2`, `ddr`) pass through
//! untouched.

use nomad_serve::ServiceStats;
use nomad_sim::{SchemeSpec, System, SystemConfig};
use nomad_trace::{SyntheticTrace, TraceSource, WorkloadProfile};
use std::collections::BTreeSet;

/// Replace all-digit dot-segments with `<i>`.
fn normalize(name: &str) -> String {
    name.split('.')
        .map(|seg| {
            if !seg.is_empty() && seg.bytes().all(|b| b.is_ascii_digit()) {
                "<i>"
            } else {
                seg
            }
        })
        .collect::<Vec<_>>()
        .join(".")
}

/// Every name the simulator's registry exports, for `spec`.
fn sim_names(spec: &SchemeSpec) -> Vec<String> {
    let cfg = SystemConfig::scaled(2);
    let profile = WorkloadProfile::mcf();
    let traces: Vec<Box<dyn TraceSource>> = (0..cfg.cores)
        .map(|i| {
            Box::new(SyntheticTrace::with_scale(
                &profile,
                42 + i as u64,
                cfg.pages_per_gb,
                cfg.l3_reach_pages(),
            )) as Box<dyn TraceSource>
        })
        .collect();
    let scheme = spec.build(&cfg);
    let sys = System::new(cfg, scheme, traces);
    sys.obs_metric_names()
        .expect("obs enabled => registry attached")
}

/// Metric names documented in METRICS.md: the first backtick-quoted
/// token of every table row.
fn documented_names() -> BTreeSet<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS.md");
    let text = std::fs::read_to_string(path).expect("METRICS.md exists at the workspace root");
    let mut names = BTreeSet::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some(end) = rest.find('`') else {
            continue;
        };
        names.insert(rest[..end].to_string());
    }
    names
}

#[test]
fn metrics_md_matches_the_registries() {
    if std::env::var_os("NOMAD_OBS").is_some_and(|v| v == "0") {
        eprintln!("NOMAD_OBS=0 overrides set_enabled; skipping");
        return;
    }
    nomad_obs::set_enabled(true);

    let mut exported: BTreeSet<String> = BTreeSet::new();
    // Union across schemes: the OS-managed schemes register PCSHR and
    // daemon instrumentation the hardware schemes do not.
    for spec in [
        SchemeSpec::Baseline,
        SchemeSpec::Tid,
        SchemeSpec::Tdram,
        SchemeSpec::Banshee,
        SchemeSpec::Tdc,
        SchemeSpec::Nomad,
        SchemeSpec::Ideal,
    ] {
        for name in sim_names(&spec) {
            exported.insert(normalize(&name));
        }
    }
    for name in ServiceStats::new(2).metric_names() {
        exported.insert(normalize(&name));
    }
    for name in nomad_obs::resilience().metric_names() {
        exported.insert(normalize(&name));
    }
    for name in nomad_obs::fleet().metric_names() {
        exported.insert(normalize(&name));
    }
    for name in nomad_obs::overload().metric_names() {
        exported.insert(normalize(&name));
    }
    nomad_obs::set_enabled(false);

    let documented = documented_names();
    assert!(
        !documented.is_empty(),
        "METRICS.md has no parseable `| `name`` rows"
    );

    let undocumented: Vec<_> = exported.difference(&documented).collect();
    let stale: Vec<_> = documented.difference(&exported).collect();
    assert!(
        undocumented.is_empty() && stale.is_empty(),
        "METRICS.md out of sync with the registries.\n\
         Exported but undocumented: {undocumented:#?}\n\
         Documented but not exported: {stale:#?}"
    );
}

#[test]
fn normalization_only_touches_all_digit_segments() {
    assert_eq!(normalize("cpu.0.instructions"), "cpu.<i>.instructions");
    assert_eq!(normalize("cache.l1.3.hits"), "cache.l1.<i>.hits");
    assert_eq!(
        normalize("dram.ddr.ch.12.queue_depth"),
        "dram.ddr.ch.<i>.queue_depth"
    );
    assert_eq!(
        normalize("cache.l3.mshr_occupancy"),
        "cache.l3.mshr_occupancy"
    );
    assert_eq!(
        normalize("serve.worker.7.busy_ns"),
        "serve.worker.<i>.busy_ns"
    );
}
