//! SCHEMES.md must document exactly the schemes the simulator can run
//! — no stale sections, no undocumented schemes — and each section's
//! knob table must match the corresponding `*Spec` struct's serde
//! fields exactly, both directions.
//!
//! Section headings are `` ## `Name` `` where `Name` is the scheme's
//! `name()` string; knob rows are markdown table rows whose first cell
//! is the backtick-quoted field name (`` | `knob` | ... ``). Schemes
//! without a `*Spec` struct (unit `SchemeSpec` variants) must document
//! no knob rows.

use nomad_sim::{BansheeSpec, NomadSpec, SchemeSpec, SystemConfig, TdramSpec, TidSpec};
use serde::Serialize;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};

/// `(heading name, knob keys documented in that section)` for every
/// `` ## `Name` `` section of SCHEMES.md, in file order.
fn documented_sections() -> Vec<(String, BTreeSet<String>)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../SCHEMES.md");
    let text = std::fs::read_to_string(path).expect("SCHEMES.md exists at the workspace root");
    let mut sections: Vec<(String, BTreeSet<String>)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("## `") {
            let end = rest.find('`').expect("unterminated scheme heading");
            sections.push((rest[..end].to_string(), BTreeSet::new()));
            continue;
        }
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some(end) = rest.find('`') else {
            continue;
        };
        let (_, knobs) = sections
            .last_mut()
            .expect("knob row before the first scheme heading");
        knobs.insert(rest[..end].to_string());
    }
    sections
}

/// The serde field names of a `*Spec` struct, via the vendored
/// `serde_json::to_value`.
fn spec_keys<T: Serialize>(spec: &T) -> BTreeSet<String> {
    match serde_json::to_value(spec).expect("spec serializes") {
        Value::Object(fields) => fields.into_iter().map(|(k, _)| k).collect(),
        other => panic!("spec did not serialize to an object: {other:?}"),
    }
}

/// `name() -> expected knob keys` for every scheme in the head-to-head
/// set (empty set = unit variant, no knob table allowed).
fn exported_schemes() -> BTreeMap<String, BTreeSet<String>> {
    let cfg = SystemConfig::scaled(2);
    SchemeSpec::headtohead_set()
        .iter()
        .map(|spec| {
            let name = spec.build(&cfg).name().to_string();
            let knobs = match spec {
                SchemeSpec::Tid | SchemeSpec::TidWith(_) => spec_keys(&TidSpec::default()),
                SchemeSpec::Tdram | SchemeSpec::TdramWith(_) => spec_keys(&TdramSpec::default()),
                SchemeSpec::Banshee | SchemeSpec::BansheeWith(_) => {
                    spec_keys(&BansheeSpec::default())
                }
                SchemeSpec::Nomad | SchemeSpec::NomadWith(_) => spec_keys(&NomadSpec::default()),
                SchemeSpec::Baseline | SchemeSpec::Tdc | SchemeSpec::Ideal => BTreeSet::new(),
            };
            (name, knobs)
        })
        .collect()
}

#[test]
fn schemes_md_matches_the_scheme_set() {
    let exported = exported_schemes();
    let sections = documented_sections();
    let documented: BTreeSet<&String> = sections.iter().map(|(name, _)| name).collect();
    assert_eq!(
        sections.len(),
        documented.len(),
        "SCHEMES.md documents a scheme twice"
    );

    let exported_names: BTreeSet<&String> = exported.keys().collect();
    let undocumented: Vec<_> = exported_names.difference(&documented).collect();
    let stale: Vec<_> = documented.difference(&exported_names).collect();
    assert!(
        undocumented.is_empty() && stale.is_empty(),
        "SCHEMES.md out of sync with SchemeSpec::headtohead_set().\n\
         Schemes without a section: {undocumented:#?}\n\
         Sections without a scheme: {stale:#?}"
    );

    for (name, doc_knobs) in &sections {
        let spec_knobs = &exported[name];
        let undocumented: Vec<_> = spec_knobs.difference(doc_knobs).collect();
        let stale: Vec<_> = doc_knobs.difference(spec_knobs).collect();
        assert!(
            undocumented.is_empty() && stale.is_empty(),
            "SCHEMES.md `{name}` knob table out of sync with its spec struct.\n\
             Spec fields without a row: {undocumented:#?}\n\
             Rows without a spec field: {stale:#?}"
        );
    }
}

#[test]
fn heading_order_matches_headtohead_order() {
    // The reference reads best in the order the figures print columns.
    let cfg = SystemConfig::scaled(2);
    let expected: Vec<String> = SchemeSpec::headtohead_set()
        .iter()
        .map(|s| s.build(&cfg).name().to_string())
        .collect();
    let actual: Vec<String> = documented_sections()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    assert_eq!(
        actual, expected,
        "SCHEMES.md sections are not in head-to-head column order"
    );
}
