//! Observability must not weaken the sweep determinism contract.
//!
//! Two halves:
//!
//! 1. With observability **on**, a grid run at `NOMAD_JOBS=4`
//!    serializes byte-identically — obs series included — to the
//!    `jobs = 1` sequential oracle. Registries are per-`System` and
//!    snapshot timing is simulated-cycle-driven, so a cell's series is
//!    a pure function of the cell no matter which worker ran it.
//! 2. With observability **off**, reports are byte-identical to an
//!    enabled run with the series stripped: instrumentation may
//!    observe, never perturb, and the `obs` field vanishes from the
//!    JSON entirely when absent.
//!
//! Lives in its own integration-test binary because it drives the
//! process-global [`nomad_obs::set_enabled`] toggle.

use nomad_bench::{par, run_cell, Scale};
use nomad_sim::SchemeSpec;
use nomad_trace::WorkloadProfile;
use nomad_types::CancelToken;

fn grid() -> Vec<(WorkloadProfile, SchemeSpec)> {
    [SchemeSpec::Tdc, SchemeSpec::Nomad]
        .into_iter()
        .flat_map(|spec| {
            [WorkloadProfile::tc(), WorkloadProfile::mcf()]
                .into_iter()
                .map(move |w| (w, spec.clone()))
        })
        .collect()
}

fn run_grid(scale: &Scale) -> Vec<String> {
    let token = CancelToken::new();
    par::run_cells(scale.jobs, &token, grid(), |(w, spec), cancel| {
        run_cell(scale, spec, w, cancel).map(|r| r.to_json())
    })
    .expect("uncancelled sweep completes")
}

#[test]
fn obs_series_survive_parallel_sweeps_and_strip_to_disabled_reports() {
    if std::env::var_os("NOMAD_OBS").is_some() {
        eprintln!("NOMAD_OBS is set; skipping (this test drives the toggle itself)");
        return;
    }
    let scale = Scale {
        instructions: 6_000,
        warmup: 1_000,
        cores: 2,
        seed: 11,
        jobs: 1,
    };

    nomad_obs::set_enabled(false);
    let disabled = run_grid(&scale);
    for json in &disabled {
        assert!(
            !json.contains("\"obs\""),
            "disabled reports must not mention obs at all"
        );
    }

    nomad_obs::set_enabled(true);
    let seq = run_grid(&scale);
    let par4 = run_grid(&scale.with_jobs(4));
    nomad_obs::set_enabled(false);

    assert_eq!(
        seq, par4,
        "obs-enabled sweeps must serialize identically at any job count"
    );

    for (enabled_json, disabled_json) in seq.iter().zip(&disabled) {
        assert!(
            enabled_json.contains("\"obs\""),
            "enabled reports must carry a series"
        );
        let mut report: nomad_sim::RunReport =
            serde_json::from_str(enabled_json).expect("round-trip");
        report.obs = None;
        assert_eq!(
            &report.to_json(),
            disabled_json,
            "stripping the series must reproduce the disabled report byte-for-byte"
        );
    }
}
