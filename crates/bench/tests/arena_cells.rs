//! The bench-side arena path (`run_with_cfg_cell` with per-thread
//! [`System`](nomad_sim::System) reuse) must be byte-identical to a
//! fresh uncached run for every cell — the sweep-level counterpart of
//! `nomad-sim`'s `arena_parity` suite.

use nomad_bench::{arena, run_with_cfg_cell, Scale};
use nomad_sim::{runner, SchemeSpec};
use nomad_trace::WorkloadProfile;
use nomad_types::CancelToken;

#[test]
fn arena_cells_match_fresh_runs() {
    let scale = Scale {
        instructions: 3_000,
        warmup: 800,
        cores: 2,
        seed: 42,
        jobs: 1,
    };
    let cfg = scale.config();
    let cancel = CancelToken::new();
    arena::clear();
    // Three consecutive cells on this thread: the second and third
    // recycle the first one's system (unless NOMAD_ARENA=0, in which
    // case this degenerates to the fresh path — equality must hold
    // either way).
    let cells = [
        (SchemeSpec::Baseline, WorkloadProfile::mcf()),
        (SchemeSpec::Nomad, WorkloadProfile::tc()),
        (SchemeSpec::Tdc, WorkloadProfile::mcf()),
    ];
    for (spec, profile) in &cells {
        let pooled = run_with_cfg_cell(&cfg, &scale, spec, profile, &cancel)
            .expect("uncancelled cell completes");
        let fresh = runner::run_one(
            &cfg,
            spec,
            profile,
            scale.instructions,
            scale.warmup,
            scale.seed,
        );
        assert_eq!(
            serde_json::to_string(&pooled).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "arena cell diverged for {spec:?} × {}",
            profile.name
        );
    }
    arena::clear();
}
