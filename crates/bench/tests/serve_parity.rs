//! The figure harness produces identical rows whether it runs its
//! grid in-process or through nomad-serve.

use nomad_bench::figs::{sweep, sweep_via_service};
use nomad_bench::Scale;
use nomad_serve::{serve, ServerConfig};
use nomad_sim::SchemeSpec;
use nomad_trace::WorkloadProfile;

#[test]
fn sweep_rows_match_through_the_service() {
    let scale = Scale {
        instructions: 6_000,
        warmup: 500,
        cores: 2,
        seed: 13,
        jobs: 2,
    };
    let specs = [SchemeSpec::Baseline, SchemeSpec::Nomad];
    let workloads = [WorkloadProfile::tc(), WorkloadProfile::libq()];

    let local = sweep(&scale, &specs, &workloads);

    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let served = sweep_via_service(&handle.local_addr().to_string(), &scale, &specs, &workloads);
    handle.shutdown();

    assert_eq!(local.len(), served.len());
    for (l, s) in local.iter().zip(&served) {
        assert_eq!(l.workload, s.workload);
        assert_eq!(l.scheme, s.scheme);
        assert_eq!(l.class, s.class);
        assert_eq!(
            serde_json::to_string(l).expect("row json"),
            serde_json::to_string(s).expect("row json"),
            "rows must match bit-for-bit"
        );
    }
}
