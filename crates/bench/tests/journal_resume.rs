//! Crash-safe journal + fault-injection acceptance tests over *real*
//! simulation cells: an interrupted sweep resumed from its journal
//! must serialize byte-identically to a clean run (floats included —
//! the vendored JSON round-trips `f64` exactly), and a sweep running
//! under an armed `NOMAD_FAULTS` plan must heal within the retry
//! budget and still produce byte-identical rows at any executor width.
//!
//! Journaling switches and fault plans are process-global, so every
//! test serializes on one mutex.

use nomad_bench::figs::Row;
use nomad_bench::{journal, par, run_cell, Scale};
use nomad_sim::SchemeSpec;
use nomad_trace::WorkloadProfile;
use nomad_types::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn tiny_scale(jobs: usize) -> Scale {
    Scale {
        instructions: 5_000,
        warmup: 500,
        cores: 2,
        seed: 42,
        jobs,
    }
}

fn cells() -> Vec<(WorkloadProfile, SchemeSpec)> {
    [WorkloadProfile::tc(), WorkloadProfile::mcf()]
        .into_iter()
        .flat_map(|w| [SchemeSpec::Nomad, SchemeSpec::Tdc].map(move |spec| (w.clone(), spec)))
        .collect()
}

fn cell_fn(
    scale: Scale,
) -> impl Fn(&(WorkloadProfile, SchemeSpec), &CancelToken) -> Option<Row> + Sync {
    move |(w, spec), cancel| {
        let r = run_cell(&scale, spec, w, cancel)?;
        Some(Row::from_report(&r, w.class.label()))
    }
}

/// The serialized form the figure harnesses write to `results/` — the
/// byte-identity contract is on this string.
fn to_json(rows: &[Row]) -> String {
    serde_json::to_string(&rows.to_vec()).expect("rows serialize")
}

#[test]
fn resumed_sweep_is_byte_identical_to_a_clean_run() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scale = tiny_scale(1);
    let key = "journal_resume:test-grid";

    let clean = par::run_cells(1, &CancelToken::new(), cells(), cell_fn(scale))
        .expect("clean run completes");

    journal::set_enabled(true);
    // Interrupted run: cancel after the first two cells complete.
    let done = AtomicUsize::new(0);
    let interrupted =
        journal::run_cells_journaled(1, &CancelToken::new(), key, cells(), |cell, cancel| {
            if done.fetch_add(1, Ordering::Relaxed) == 2 {
                cancel.cancel();
                return None;
            }
            cell_fn(scale)(cell, cancel)
        });
    assert!(interrupted.is_none(), "the sweep was cancelled mid-grid");
    assert!(
        journal::journal_path(key).exists(),
        "completed cells must be journaled"
    );

    // Resumed run: only the missing cells execute, and the merged rows
    // serialize byte-identically to the clean run.
    journal::set_resume(true);
    let reran = AtomicUsize::new(0);
    let resumed =
        journal::run_cells_journaled(1, &CancelToken::new(), key, cells(), |cell, cancel| {
            reran.fetch_add(1, Ordering::Relaxed);
            cell_fn(scale)(cell, cancel)
        })
        .expect("resumed run completes");
    journal::set_resume(false);
    journal::set_enabled(false);

    assert_eq!(
        reran.load(Ordering::Relaxed),
        2,
        "two of four cells were journaled, two re-ran"
    );
    assert_eq!(
        to_json(&resumed),
        to_json(&clean),
        "resume must be byte-identical — floats round-trip exactly"
    );
    assert!(
        !journal::journal_path(key).exists(),
        "journal deleted after the resumed run completes"
    );
}

/// An armed `bench.cell` panic plan heals inside the retry budget and
/// the rows stay byte-identical to an uninjected run at every width.
/// The plan's injected index-set is fixed by the seed; a generous
/// retry budget makes any schedule's worst-case run of consecutive
/// injections survivable, so this test is deterministic.
#[test]
fn fault_injected_sweep_heals_byte_identical_at_any_width() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Cached on first read by the executor (OnceLock); every test in
    // this binary that arms faults wants the same generous budget.
    std::env::set_var("NOMAD_CELL_RETRIES", "10");
    let scale = tiny_scale(1);
    let clean = par::run_cells(1, &CancelToken::new(), cells(), cell_fn(scale))
        .expect("clean run completes");

    nomad_faults::install(Some(
        nomad_faults::FaultPlan::parse("42:bench.cell=panic@0.3").expect("valid plan"),
    ));
    for jobs in [1usize, 4] {
        let injected_before = nomad_faults::injected_total();
        let chaotic = par::run_cells(
            jobs,
            &CancelToken::new(),
            cells(),
            cell_fn(tiny_scale(jobs)),
        )
        .expect("sweep heals within the retry budget");
        assert_eq!(
            to_json(&chaotic),
            to_json(&clean),
            "jobs={jobs}: healed rows must match the uninjected run"
        );
        assert!(
            nomad_faults::injected_total() >= injected_before,
            "monotonic injection counter"
        );
    }
    nomad_faults::install(None);
}
