//! The parallel sweep executor must be invisible in the artifacts:
//! whatever `NOMAD_JOBS` is, every harness row comes back in
//! submission order with byte-identical content. This suite holds a
//! small-scale Fig. 9 grid at several worker counts against the
//! `jobs = 1` sequential oracle.

use nomad_bench::figs::sweep;
use nomad_bench::Scale;
use nomad_sim::SchemeSpec;
use nomad_trace::WorkloadProfile;

fn small_scale() -> Scale {
    Scale {
        instructions: 4_000,
        warmup: 400,
        cores: 2,
        seed: 7,
        jobs: 1,
    }
}

#[test]
fn parallel_sweep_rows_match_sequential_oracle() {
    let scale = small_scale();
    // A small head-to-head grid: all seven schemes (including Banshee
    // and TDRAM) over one low-RMHB and one bursty workload (2 × 7 = 14
    // cells).
    let specs = SchemeSpec::headtohead_set();
    let workloads = [WorkloadProfile::tc(), WorkloadProfile::libq()];

    let oracle = sweep(&scale.with_jobs(1), &specs, &workloads);
    assert_eq!(oracle.len(), specs.len() * workloads.len());
    let oracle_json = serde_json::to_string(&oracle).expect("rows json");

    for jobs in [2usize, 8] {
        let rows = sweep(&scale.with_jobs(jobs), &specs, &workloads);
        assert_eq!(
            serde_json::to_string(&rows).expect("rows json"),
            oracle_json,
            "NOMAD_JOBS={jobs} must produce byte-identical rows"
        );
    }
}

#[test]
fn parallel_sweep_keeps_submission_order() {
    let scale = small_scale();
    let specs = [SchemeSpec::Baseline, SchemeSpec::Nomad];
    let workloads = [WorkloadProfile::tc(), WorkloadProfile::libq()];
    let rows = sweep(&scale.with_jobs(4), &specs, &workloads);
    let got: Vec<(String, String)> = rows
        .iter()
        .map(|r| (r.workload.clone(), r.scheme.clone()))
        .collect();
    let want: Vec<(String, String)> = workloads
        .iter()
        .flat_map(|w| {
            specs
                .iter()
                .map(move |s| (w.name.clone(), s.label().to_string()))
        })
        .collect();
    assert_eq!(got, want, "rows must stay in workloads × specs order");
}
