//! Process-wide overload-protection counters.
//!
//! The overload layer (deadline admission, CoDel-style queue-delay
//! shedding, per-node circuit breakers) spans nomad-serve, nomad-fleet
//! and nomad-bench, so — exactly like [`crate::fleet()`] — its
//! counters live in one process-global registry rather than in any
//! per-server instance. A sweep or a load-generator run wants one
//! answer to "how much work was shed, and where", no matter which
//! queue or router absorbed the event.
//!
//! Like the resilience and fleet counters these are **not** gated on
//! [`enabled`](crate::enabled): sheds and breaker transitions are rare
//! relative to the request rate and each is one relaxed atomic add, so
//! they always count. Documented in `METRICS.md` and held against this
//! registry by the two-way `metrics_doc` test.

use crate::metric::Counter;
use crate::registry::Registry;
use std::sync::OnceLock;

/// Handles to the process-wide overload counters.
pub struct Overload {
    registry: Registry,
    /// Submissions shed at admission: the deadline budget cannot be
    /// met by the estimated queue wait, or an injected `serve.admit`
    /// fault forced a rejection (`overload.admit_shed`).
    pub admit_shed: Counter,
    /// Jobs shed at dequeue because their deadline expired while they
    /// waited in the queue (`overload.queue_shed`).
    pub queue_shed: Counter,
    /// Jobs shed by the pre-execute recheck: the deadline expired
    /// between dequeue and the execution attempt
    /// (`overload.exec_shed`).
    pub exec_shed: Counter,
    /// Jobs shed by the CoDel-style queue-delay controller: sojourn
    /// time exceeded the target while a backlog remained
    /// (`overload.codel_shed`).
    pub codel_shed: Counter,
    /// Executions started *after* the job's deadline had already
    /// expired. With shedding enabled this is structurally zero — it
    /// is the SLO witness the load generator asserts on
    /// (`overload.expired_executions`).
    pub expired_executions: Counter,
    /// Circuit breakers tripped from closed (or re-tripped from a
    /// failed half-open probe) into open (`overload.breaker_trips`).
    pub breaker_trips: Counter,
    /// Half-open probe requests admitted through an open breaker after
    /// its cooldown (`overload.breaker_probes`).
    pub breaker_probes: Counter,
    /// Breakers closed again by a successful half-open probe
    /// (`overload.breaker_closes`).
    pub breaker_closes: Counter,
    /// Requests rerouted around a node whose breaker refused traffic,
    /// without declaring the node dead
    /// (`overload.breaker_reroutes`).
    pub breaker_reroutes: Counter,
}

impl Overload {
    fn new() -> Self {
        let registry = Registry::new();
        Overload {
            admit_shed: registry.counter(
                "overload.admit_shed",
                "jobs",
                "overload",
                "Submissions shed at admission (deadline unmeetable or injected serve.admit fault)",
            ),
            queue_shed: registry.counter(
                "overload.queue_shed",
                "jobs",
                "overload",
                "Jobs shed at dequeue because their deadline expired while queued",
            ),
            exec_shed: registry.counter(
                "overload.exec_shed",
                "jobs",
                "overload",
                "Jobs shed by the pre-execute deadline recheck",
            ),
            codel_shed: registry.counter(
                "overload.codel_shed",
                "jobs",
                "overload",
                "Jobs shed by the CoDel-style queue-delay controller",
            ),
            expired_executions: registry.counter(
                "overload.expired_executions",
                "jobs",
                "overload",
                "Executions started past an expired deadline (zero while shedding is enabled)",
            ),
            breaker_trips: registry.counter(
                "overload.breaker_trips",
                "transitions",
                "overload",
                "Circuit breakers tripped into the open state",
            ),
            breaker_probes: registry.counter(
                "overload.breaker_probes",
                "probes",
                "overload",
                "Half-open probe requests admitted through an open breaker",
            ),
            breaker_closes: registry.counter(
                "overload.breaker_closes",
                "transitions",
                "overload",
                "Breakers closed again by a successful half-open probe",
            ),
            breaker_reroutes: registry.counter(
                "overload.breaker_reroutes",
                "requests",
                "overload",
                "Requests rerouted around a breaker-refused node without declaring it dead",
            ),
            registry,
        }
    }

    /// Sorted base names of every overload metric (for the
    /// `metrics_doc` two-way diff).
    pub fn metric_names(&self) -> Vec<String> {
        self.registry.names()
    }

    /// Sorted `(name, value)` rows of the live counters.
    pub fn rows(&self) -> Vec<(String, u64)> {
        self.registry.snapshot(0).values
    }

    /// The live value of one counter by its registered name; `None`
    /// for names this registry does not export.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.rows()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

/// The process-wide [`Overload`] counters.
pub fn overload() -> &'static Overload {
    static GLOBAL: OnceLock<Overload> = OnceLock::new();
    GLOBAL.get_or_init(Overload::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_under_documented_names() {
        let names = overload().metric_names();
        assert_eq!(
            names,
            vec![
                "overload.admit_shed",
                "overload.breaker_closes",
                "overload.breaker_probes",
                "overload.breaker_reroutes",
                "overload.breaker_trips",
                "overload.codel_shed",
                "overload.exec_shed",
                "overload.expired_executions",
                "overload.queue_shed",
            ]
        );
    }

    #[test]
    fn rows_track_increments() {
        let before = overload().value("overload.admit_shed").expect("row");
        overload().admit_shed.inc();
        let after = overload().value("overload.admit_shed").expect("row");
        assert_eq!(after, before + 1);
    }
}
