//! The [`Registry`]: named metric registration and interval snapshots.

use crate::metric::{Counter, Gauge, Histo};
use std::sync::Mutex;

/// Metadata recorded at registration time; `METRICS.md` documents one
/// row per (normalized) name.
#[derive(Debug, Clone)]
pub struct MetricDesc {
    /// Dot-separated metric name. Instance indices (core number,
    /// channel number) appear as their own all-digit segments, e.g.
    /// `cpu.0.instructions`, so docs and tests can normalize them to
    /// `cpu.<i>.instructions`.
    pub name: String,
    /// Unit of the exported value (`count`, `cycles`, `bytes`, `ns`,
    /// `ms`, `entries`, …).
    pub unit: &'static str,
    /// Owning component (`cpu`, `cache`, `dcache`, `dram`, `sim`,
    /// `serve`).
    pub component: &'static str,
    /// What the metric measures, one line.
    pub help: &'static str,
    /// Kind of metric registered under this name.
    pub kind: MetricKind,
}

/// The shape of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter ([`Counter`]).
    Counter,
    /// Point-in-time value ([`Gauge`]).
    Gauge,
    /// Log2 histogram ([`Histo`]); snapshots expand it into
    /// `<name>.count`, `<name>.p50` and `<name>.p99`.
    Histogram,
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

/// A point-in-time reading of every registered metric, keyed by the
/// simulation cycle (or, for the serve registry, a wall-clock stamp).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Cycle (or timestamp) the snapshot was taken at.
    pub cycle: u64,
    /// `(name, value)` pairs, sorted by name. Histograms contribute
    /// three derived entries (`.count`, `.p50`, `.p99`).
    pub values: Vec<(String, u64)>,
}

/// An append-only sequence of [`Snapshot`]s — the backing store of the
/// snapshot-JSON exporter ([`crate::export::snapshot_json`]).
#[derive(Debug, Clone, Default)]
pub struct SnapshotLog {
    rows: Vec<Snapshot>,
}

impl SnapshotLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one snapshot.
    pub fn push(&mut self, snap: Snapshot) {
        self.rows.push(snap);
    }

    /// All snapshots, in append order.
    pub fn rows(&self) -> &[Snapshot] {
        &self.rows
    }

    /// Forget every snapshot (end of warm-up).
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// The time series of one metric: `(cycle, value)` per snapshot
    /// that contains `name`.
    pub fn series(&self, name: &str) -> Vec<(u64, u64)> {
        self.rows
            .iter()
            .filter_map(|s| {
                s.values
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| (s.cycle, *v))
            })
            .collect()
    }
}

/// A named collection of metrics, shared by every instrumented
/// component of one simulated system (or one serve process).
///
/// Registration returns a cheap handle; the registry keeps a clone of
/// the same atomic cell, so [`snapshot`](Registry::snapshot) reads
/// exactly what the component wrote. Names must be unique — a
/// duplicate registration panics, because it means two components
/// would silently share a cell.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Vec<(MetricDesc, Handle)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, desc: MetricDesc, handle: Handle) {
        let mut inner = self.inner.lock().expect("registry lock");
        assert!(
            !inner.iter().any(|(d, _)| d.name == desc.name),
            "duplicate metric name {:?}",
            desc.name
        );
        inner.push((desc, handle));
    }

    /// Register a monotonic counter under `name`.
    pub fn counter(
        &self,
        name: impl Into<String>,
        unit: &'static str,
        component: &'static str,
        help: &'static str,
    ) -> Counter {
        let c = Counter::new();
        self.register(
            MetricDesc {
                name: name.into(),
                unit,
                component,
                help,
                kind: MetricKind::Counter,
            },
            Handle::Counter(c.clone()),
        );
        c
    }

    /// Register a gauge under `name`.
    pub fn gauge(
        &self,
        name: impl Into<String>,
        unit: &'static str,
        component: &'static str,
        help: &'static str,
    ) -> Gauge {
        let g = Gauge::new();
        self.register(
            MetricDesc {
                name: name.into(),
                unit,
                component,
                help,
                kind: MetricKind::Gauge,
            },
            Handle::Gauge(g.clone()),
        );
        g
    }

    /// Register a log2 histogram under `name`.
    pub fn histogram(
        &self,
        name: impl Into<String>,
        unit: &'static str,
        component: &'static str,
        help: &'static str,
    ) -> Histo {
        let h = Histo::new();
        self.register(
            MetricDesc {
                name: name.into(),
                unit,
                component,
                help,
                kind: MetricKind::Histogram,
            },
            Handle::Histo(h.clone()),
        );
        h
    }

    /// Sorted list of registered base names (histograms appear once,
    /// without their derived `.count`/`.p50`/`.p99` suffixes).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(d, _)| d.name.clone())
            .collect();
        names.sort();
        names
    }

    /// Metadata of every registered metric, sorted by name.
    pub fn descs(&self) -> Vec<MetricDesc> {
        let mut descs: Vec<MetricDesc> = self
            .inner
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(d, _)| d.clone())
            .collect();
        descs.sort_by(|a, b| a.name.cmp(&b.name));
        descs
    }

    /// Read every metric into a [`Snapshot`] keyed by `cycle`.
    pub fn snapshot(&self, cycle: u64) -> Snapshot {
        let inner = self.inner.lock().expect("registry lock");
        let mut values = Vec::with_capacity(inner.len());
        for (desc, handle) in inner.iter() {
            match handle {
                Handle::Counter(c) => values.push((desc.name.clone(), c.get())),
                Handle::Gauge(g) => values.push((desc.name.clone(), g.get())),
                Handle::Histo(h) => {
                    values.push((format!("{}.count", desc.name), h.count()));
                    values.push((format!("{}.p50", desc.name), h.quantile(0.5)));
                    values.push((format!("{}.p99", desc.name), h.quantile(0.99)));
                }
            }
        }
        values.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { cycle, values }
    }

    /// Zero every registered metric (end of warm-up); registrations
    /// are preserved.
    pub fn reset_values(&self) {
        for (_, handle) in self.inner.lock().expect("registry lock").iter() {
            match handle {
                Handle::Counter(c) => c.reset(),
                Handle::Gauge(g) => g.reset(),
                Handle::Histo(h) => h.reset(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        let c = reg.counter("b.count", "count", "test", "a counter");
        let g = reg.gauge("a.depth", "entries", "test", "a gauge");
        let h = reg.histogram("c.lat", "cycles", "test", "a histogram");
        c.add(3);
        g.set(9);
        h.record(100);
        let snap = reg.snapshot(42);
        assert_eq!(snap.cycle, 42);
        let names: Vec<&str> = snap.values.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "a.depth",
                "b.count",
                "c.lat.count",
                "c.lat.p50",
                "c.lat.p99"
            ]
        );
        assert_eq!(snap.values[0].1, 9);
        assert_eq!(snap.values[1].1, 3);
        assert_eq!(snap.values[2].1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_panic() {
        let reg = Registry::new();
        let _ = reg.counter("x", "count", "test", "first");
        let _ = reg.counter("x", "count", "test", "second");
    }

    #[test]
    fn reset_preserves_registrations() {
        let reg = Registry::new();
        let c = reg.counter("x", "count", "test", "c");
        c.add(5);
        reg.reset_values();
        assert_eq!(c.get(), 0);
        assert_eq!(reg.names(), vec!["x".to_string()]);
    }

    #[test]
    fn log_series_extracts_one_metric() {
        let reg = Registry::new();
        let c = reg.counter("x", "count", "test", "c");
        let mut log = SnapshotLog::new();
        c.add(1);
        log.push(reg.snapshot(10));
        c.add(2);
        log.push(reg.snapshot(20));
        assert_eq!(log.series("x"), vec![(10, 1), (20, 3)]);
        assert!(log.series("missing").is_empty());
    }
}
