//! Minimal JSON writer used by both exporters.
//!
//! nomad-obs is deliberately dependency-free (it sits below every other
//! workspace crate), so instead of pulling in the vendored serde it
//! emits JSON through this small push-style writer. Only the shapes the
//! exporters need are supported: objects, arrays, strings, and u64/f64
//! numbers.

/// Append `s` to `out` as a JSON string literal, escaping quotes,
/// backslashes and control characters.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A comma-managing helper for building one JSON object or array.
///
/// ```
/// let mut out = String::new();
/// let mut obj = nomad_obs::json::Ctx::object(&mut out);
/// obj.key("cycle").u64(100);
/// obj.key("name").str("fig09");
/// obj.finish();
/// assert_eq!(out, r#"{"cycle":100,"name":"fig09"}"#);
/// ```
pub struct Ctx<'a> {
    out: &'a mut String,
    close: char,
    first: bool,
}

impl<'a> Ctx<'a> {
    /// Open a JSON object (`{`).
    pub fn object(out: &'a mut String) -> Self {
        out.push('{');
        Ctx {
            out,
            close: '}',
            first: true,
        }
    }

    /// Open a JSON array (`[`).
    pub fn array(out: &'a mut String) -> Self {
        out.push('[');
        Ctx {
            out,
            close: ']',
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }

    /// Write an object key (with its separating comma/colon) and
    /// return `self` for the value call.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.sep();
        write_str(self.out, k);
        self.out.push(':');
        self
    }

    /// Begin a new array element (emits the separating comma only).
    pub fn elem(&mut self) -> &mut Self {
        self.sep();
        self
    }

    /// Write a string value.
    pub fn str(&mut self, v: &str) {
        write_str(self.out, v);
    }

    /// Write an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    /// Write a raw, pre-serialized JSON fragment.
    pub fn raw(&mut self, v: &str) {
        self.out.push_str(v);
    }

    /// Close the object/array.
    pub fn finish(self) {
        self.out.push(self.close);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nested_structures() {
        let mut out = String::new();
        {
            let mut obj = Ctx::object(&mut out);
            obj.key("xs");
            {
                let mut inner = String::new();
                let mut arr = Ctx::array(&mut inner);
                arr.elem().u64(1);
                arr.elem().u64(2);
                arr.finish();
                obj.raw(&inner);
            }
            obj.key("s").str("hi");
            obj.finish();
        }
        assert_eq!(out, r#"{"xs":[1,2],"s":"hi"}"#);
    }
}
