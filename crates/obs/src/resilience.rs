//! Process-wide resilience counters.
//!
//! The self-healing layer (fault injection, cell retries, serve
//! reconnects, local fallbacks, journal resume) spans three crates —
//! nomad-faults, nomad-serve and nomad-bench — so its counters live in
//! one shared registry here rather than in any per-`System` or
//! per-server registry. They are process-global by design: a sweep
//! wants one answer to "how many faults were injected / cells retried
//! / cells resumed this run", no matter which layer absorbed the
//! damage.
//!
//! Unlike the simulator's metrics these are **not** gated on
//! [`enabled`](crate::enabled): the events they count are rare (a
//! retry, a reconnect) and the counters are one relaxed atomic add, so
//! they always count. They are documented in `METRICS.md` and held
//! against this registry by the two-way `metrics_doc` test.

use crate::metric::Counter;
use crate::registry::Registry;
use std::sync::OnceLock;

/// Handles to the process-wide resilience counters.
pub struct Resilience {
    registry: Registry,
    /// Faults injected by the `NOMAD_FAULTS` plan
    /// (`resilience.faults_injected`). Mirrored from nomad-faults'
    /// injection observer.
    pub faults_injected: Counter,
    /// Sweep cells re-run after a panic (`resilience.cell_retries`).
    pub cell_retries: Counter,
    /// Connections re-established to nomad-serve after a transport
    /// error (`resilience.serve_reconnects`).
    pub serve_reconnects: Counter,
    /// Cells executed in-process because the server stayed unreachable
    /// past the reconnect budget (`resilience.local_fallbacks`).
    pub local_fallbacks: Counter,
    /// Cells restored from a sweep journal instead of re-run
    /// (`resilience.journal_cells_resumed`).
    pub journal_cells_resumed: Counter,
}

impl Resilience {
    fn new() -> Self {
        let registry = Registry::new();
        Resilience {
            faults_injected: registry.counter(
                "resilience.faults_injected",
                "faults",
                "resilience",
                "Faults injected by the NOMAD_FAULTS plan (all sites)",
            ),
            cell_retries: registry.counter(
                "resilience.cell_retries",
                "cells",
                "resilience",
                "Sweep cells re-run after a panicking attempt",
            ),
            serve_reconnects: registry.counter(
                "resilience.serve_reconnects",
                "connections",
                "resilience",
                "Connections re-established to nomad-serve after a transport error",
            ),
            local_fallbacks: registry.counter(
                "resilience.local_fallbacks",
                "cells",
                "resilience",
                "Cells executed locally because the server stayed unreachable",
            ),
            journal_cells_resumed: registry.counter(
                "resilience.journal_cells_resumed",
                "cells",
                "resilience",
                "Cells restored from a sweep journal instead of re-run",
            ),
            registry,
        }
    }

    /// Sorted base names of every resilience metric (for the
    /// `metrics_doc` two-way diff).
    pub fn metric_names(&self) -> Vec<String> {
        self.registry.names()
    }

    /// Sorted `(name, value)` rows of the live counters.
    pub fn rows(&self) -> Vec<(String, u64)> {
        self.registry.snapshot(0).values
    }
}

/// The process-wide [`Resilience`] counters.
pub fn resilience() -> &'static Resilience {
    static GLOBAL: OnceLock<Resilience> = OnceLock::new();
    GLOBAL.get_or_init(Resilience::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_under_documented_names() {
        let names = resilience().metric_names();
        assert_eq!(
            names,
            vec![
                "resilience.cell_retries",
                "resilience.faults_injected",
                "resilience.journal_cells_resumed",
                "resilience.local_fallbacks",
                "resilience.serve_reconnects",
            ]
        );
    }

    #[test]
    fn rows_track_increments() {
        let before = resilience()
            .rows()
            .into_iter()
            .find(|(n, _)| n == "resilience.cell_retries")
            .expect("row present")
            .1;
        resilience().cell_retries.inc();
        let after = resilience()
            .rows()
            .into_iter()
            .find(|(n, _)| n == "resilience.cell_retries")
            .expect("row present")
            .1;
        assert_eq!(after, before + 1);
    }
}
