//! Chrome Trace Event Format exporter.
//!
//! Produces the JSON object format (`{"traceEvents":[…]}`) consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). One
//! simulated cycle is exported as one microsecond, so the timeline
//! ruler reads directly in cycles.

use crate::json::{write_str, Ctx};
use crate::registry::SnapshotLog;
use crate::ring::{Span, SpanKind, SpanRing};

/// A named track (Trace Event `tid`) with a human-readable label shown
/// on the left edge of the timeline.
#[derive(Debug, Clone)]
pub struct Track {
    /// Track id; matches [`Span::track`].
    pub id: u32,
    /// Label rendered by the viewer (`thread_name` metadata).
    pub label: &'static str,
}

/// Track for DRAM-cache page-fill copy spans.
pub const TRACK_FILL: u32 = 0;
/// Track for DRAM-cache writeback copy spans.
pub const TRACK_WRITEBACK: u32 = 1;
/// Track for eviction-daemon instant events.
pub const TRACK_EVICT: u32 = 2;
/// Track for LLC MSHR structural-stall spans.
pub const TRACK_LLC_MSHR: u32 = 3;

/// The simulator's standard track set (shared by every harness so
/// traces from different cells line up row-for-row in the viewer).
pub const SIM_TRACKS: &[Track] = &[
    Track {
        id: TRACK_FILL,
        label: "DC fills",
    },
    Track {
        id: TRACK_WRITEBACK,
        label: "DC writebacks",
    },
    Track {
        id: TRACK_EVICT,
        label: "eviction daemon",
    },
    Track {
        id: TRACK_LLC_MSHR,
        label: "LLC MSHR stalls",
    },
];

fn push_event(out: &mut String, pid: u32, span: &Span) {
    let mut ev = Ctx::object(out);
    ev.key("name").str(span.name);
    ev.key("cat").str(span.cat);
    match span.kind {
        SpanKind::Complete => {
            ev.key("ph").str("X");
            ev.key("ts").u64(span.ts);
            ev.key("dur").u64(span.dur);
        }
        SpanKind::Instant => {
            ev.key("ph").str("i");
            ev.key("ts").u64(span.ts);
            ev.key("s").str("t");
        }
    }
    ev.key("pid").u64(pid as u64);
    ev.key("tid").u64(span.track as u64);
    if let Some(arg_name) = span.arg_name {
        ev.key("args");
        let mut args = String::new();
        let mut a = Ctx::object(&mut args);
        a.key(arg_name).u64(span.arg);
        a.finish();
        ev.raw(&args);
    }
    ev.finish();
}

fn push_meta(out: &mut String, pid: u32, name: &str, key: &str, label: &str) {
    let mut ev = Ctx::object(out);
    ev.key("name").str(name);
    ev.key("ph").str("M");
    ev.key("pid").u64(pid as u64);
    if name == "thread_name" {
        // `key` carries the tid for thread metadata.
        ev.key("tid").raw(key);
    }
    ev.key("args");
    let mut args = String::new();
    let mut a = Ctx::object(&mut args);
    a.key("name").str(label);
    a.finish();
    ev.raw(&args);
    ev.finish();
}

/// Serialize `ring` (and optional `"C"` counter events derived from
/// `snapshots`) into a Trace Event Format JSON string.
///
/// * `process_name` labels the single exported process (e.g.
///   `"fig09 mix nomad"`).
/// * `tracks` provides `thread_name` metadata so span rows have
///   readable labels; spans on tracks not listed still render, with a
///   numeric label.
/// * `counter_names`: for each of these metric names present in
///   `snapshots`, a Trace Event counter series (`ph:"C"`) is emitted,
///   which Perfetto renders as a stacked area chart above the spans.
pub fn chrome_trace(
    process_name: &str,
    tracks: &[Track],
    ring: &SpanRing,
    snapshots: Option<&SnapshotLog>,
    counter_names: &[&str],
) -> String {
    const PID: u32 = 1;
    let mut events: Vec<String> = Vec::new();

    let mut pn = String::new();
    push_meta(&mut pn, PID, "process_name", "0", process_name);
    events.push(pn);
    for t in tracks {
        let mut tn = String::new();
        push_meta(&mut tn, PID, "thread_name", &t.id.to_string(), t.label);
        events.push(tn);
    }

    for span in ring.sorted_spans() {
        let mut ev = String::new();
        push_event(&mut ev, PID, &span);
        events.push(ev);
    }

    if let Some(log) = snapshots {
        for name in counter_names {
            for (cycle, value) in log.series(name) {
                let mut ev = String::new();
                let mut c = Ctx::object(&mut ev);
                c.key("name").str(name);
                c.key("ph").str("C");
                c.key("ts").u64(cycle);
                c.key("pid").u64(PID as u64);
                c.key("args");
                let mut args = String::new();
                let mut a = Ctx::object(&mut args);
                a.key("value").u64(value);
                a.finish();
                c.raw(&args);
                c.finish();
                events.push(ev);
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(ev);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":");
    write_str(&mut out, "1 cycle = 1 us");
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Registry, SnapshotLog};

    #[test]
    fn trace_contains_spans_and_counters() {
        let ring = SpanRing::new(16);
        ring.push(Span::complete("fill", "dcache", 10, 5, 0).with_arg("page", 7));
        ring.push(Span::instant("evict", "dcache", 12, 2));

        let reg = Registry::new();
        let g = reg.gauge("dcache.pcshr_occupancy", "entries", "dcache", "t");
        let mut log = SnapshotLog::new();
        g.set(3);
        log.push(reg.snapshot(100));

        let json = chrome_trace(
            "test run",
            &[Track {
                id: 0,
                label: "fills",
            }],
            &ring,
            Some(&log),
            &["dcache.pcshr_occupancy"],
        );
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"page\":7"));
        assert!(json.contains("\"value\":3"));
        assert!(json.ends_with("}}"));
    }
}
