//! Snapshot-JSON exporter: interval snapshots keyed by cycle.
//!
//! The output is a single JSON object with metric metadata and a
//! row-per-snapshot time series, written next to the harness's
//! `results/*.json`:
//!
//! ```json
//! {
//!   "interval": 5000,
//!   "metrics": [{"name": "...", "unit": "...", "component": "...", "kind": "...", "help": "..."}],
//!   "snapshots": [{"cycle": 5000, "values": [["name", 42], ...]}]
//! }
//! ```
//!
//! Values are `[name, value]` pairs (sorted by name) rather than an
//! object, so the same name ordering guarantees byte-identical output
//! for identical runs — the property the `obs_parity` suite asserts
//! across `NOMAD_JOBS` settings.

use crate::json::Ctx;
use crate::registry::{MetricDesc, MetricKind, SnapshotLog};

fn kind_str(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

/// Serialize `log` plus the registry metadata in `descs` into the
/// snapshot-JSON document described in the module docs.
pub fn snapshot_json(interval: u64, descs: &[MetricDesc], log: &SnapshotLog) -> String {
    let mut out = String::new();
    let mut root = Ctx::object(&mut out);
    root.key("interval").u64(interval);

    root.key("metrics");
    let mut metrics = String::new();
    {
        let mut arr = Ctx::array(&mut metrics);
        for d in descs {
            arr.elem();
            let mut row = String::new();
            let mut m = Ctx::object(&mut row);
            m.key("name").str(&d.name);
            m.key("unit").str(d.unit);
            m.key("component").str(d.component);
            m.key("kind").str(kind_str(d.kind));
            m.key("help").str(d.help);
            m.finish();
            arr.raw(&row);
        }
        arr.finish();
    }
    root.raw(&metrics);

    root.key("snapshots");
    let mut snaps = String::new();
    {
        let mut arr = Ctx::array(&mut snaps);
        for snap in log.rows() {
            arr.elem();
            let mut row = String::new();
            let mut s = Ctx::object(&mut row);
            s.key("cycle").u64(snap.cycle);
            s.key("values");
            let mut vals = String::new();
            {
                let mut varr = Ctx::array(&mut vals);
                for (name, value) in &snap.values {
                    varr.elem();
                    let mut pair = String::new();
                    let mut p = Ctx::array(&mut pair);
                    p.elem().str(name);
                    p.elem().u64(*value);
                    p.finish();
                    varr.raw(&pair);
                }
                varr.finish();
            }
            s.raw(&vals);
            s.finish();
            arr.raw(&row);
        }
        arr.finish();
    }
    root.raw(&snaps);
    root.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn snapshot_json_round_shape() {
        let reg = Registry::new();
        let c = reg.counter("a.hits", "count", "test", "hits");
        let mut log = SnapshotLog::new();
        c.add(2);
        log.push(reg.snapshot(5000));
        c.add(1);
        log.push(reg.snapshot(10000));

        let json = snapshot_json(5000, &reg.descs(), &log);
        assert!(json.starts_with("{\"interval\":5000,\"metrics\":["));
        assert!(json.contains("\"name\":\"a.hits\""));
        assert!(json.contains("\"kind\":\"counter\""));
        assert!(json.contains("{\"cycle\":5000,\"values\":[[\"a.hits\",2]]}"));
        assert!(json.contains("{\"cycle\":10000,\"values\":[[\"a.hits\",3]]}"));
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let build = || {
            let reg = Registry::new();
            let c = reg.counter("x", "count", "test", "x");
            let g = reg.gauge("y", "entries", "test", "y");
            let mut log = SnapshotLog::new();
            c.add(4);
            g.set(9);
            log.push(reg.snapshot(100));
            snapshot_json(100, &reg.descs(), &log)
        };
        assert_eq!(build(), build());
    }
}
