//! Metric primitives: atomic counters, gauges and log2 histograms.
//!
//! All handles are cheap `Arc` clones of shared atomic state, so a
//! component can keep a handle while the owning
//! [`Registry`](crate::registry::Registry) snapshots the same cells. Relaxed
//! ordering is used throughout: metrics are monotone accumulators and
//! point samples, never synchronization edges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter (end of warm-up).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time value, overwritten on every sample.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the gauge with `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Last value set.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the gauge (end of warm-up).
    pub fn reset(&self) {
        self.set(0);
    }
}

/// Number of power-of-two buckets in a [`Histo`]: bucket `i` counts
/// samples in `[2^i, 2^(i+1))` (bucket 0 counts 0 and 1), which covers
/// any plausible cycle or millisecond magnitude.
pub const HISTO_BUCKETS: usize = 48;

#[derive(Debug)]
pub(crate) struct HistoCore {
    buckets: [AtomicU64; HISTO_BUCKETS],
}

/// A log2-bucketed histogram for latency/size distributions.
///
/// Mirrors `nomad_types::stats::LogHistogram` but is atomic so clones
/// of one handle can record from instrumentation sites while the
/// registry reads quantiles.
#[derive(Debug, Clone)]
pub struct Histo(Arc<HistoCore>);

impl Default for Histo {
    fn default() -> Self {
        Self::new()
    }
}

impl Histo {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histo(Arc::new(HistoCore {
            buckets: [ZERO; HISTO_BUCKETS],
        }))
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, sample: u64) {
        let idx = (64 - sample.max(1).leading_zeros() as usize - 1).min(HISTO_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Approximate quantile `q` in `[0, 1]`, reported as the lower
    /// bound of the bucket containing it. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= threshold.max(1) {
                return 1u64 << i;
            }
        }
        1u64 << (HISTO_BUCKETS - 1)
    }

    /// Forget all samples (end of warm-up).
    pub fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_clones_share_state() {
        let c = Counter::new();
        let d = c.clone();
        c.inc();
        d.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(d.get(), 0);
    }

    #[test]
    fn gauge_overwrites() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histo_buckets_and_quantiles() {
        let h = Histo::new();
        for s in [0u64, 1, 2, 3, 1024] {
            h.record(s);
        }
        assert_eq!(h.count(), 5);
        assert!(h.quantile(0.1) <= h.quantile(0.99));
        assert_eq!(h.quantile(1.0), 1024);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
