//! nomad-obs: the unified observability layer of the NOMAD workspace.
//!
//! Every crate in the workspace instruments its hot paths through this
//! crate: monotonic [`Counter`]s, point-in-time [`Gauge`]s,
//! log2-bucketed [`Histo`]grams and a fixed-capacity [`SpanRing`] of
//! timed events. Components register their metrics **by name** into a
//! [`Registry`]; two exporters turn the registered state into
//! artifacts:
//!
//! * [`export::snapshot_json`] — periodic interval snapshots keyed by
//!   simulation cycle, written alongside `results/*.json`;
//! * [`trace::chrome_trace`] — Trace Event Format spans (page copies,
//!   evictions, MSHR stalls, serve jobs) viewable in `chrome://tracing`
//!   or [Perfetto](https://ui.perfetto.dev).
//!
//! # Design constraints
//!
//! * **Zero dependencies.** JSON is emitted by a small hand-rolled
//!   writer ([`json`]); nothing here pulls in serde or any other crate,
//!   so every workspace crate can depend on it without cycles.
//! * **Allocation-light.** Registration (startup) allocates; the hot
//!   path does not. Metric handles are `Arc`-backed atomics — one
//!   relaxed RMW per event — and the span ring is a pre-sized vector
//!   that drops (and counts) overflow instead of growing.
//! * **Off by default, free when off.** Instrumented components hold
//!   `Option<…>` handle bundles that are `None` unless observability
//!   was enabled at construction time, so a `NOMAD_OBS=0` run executes
//!   the exact pre-instrumentation code path and produces byte-identical
//!   `RunReport`s (the `obs_overhead` harness and the `obs_parity`
//!   suite in `nomad-bench` hold this).
//!
//! # Enabling
//!
//! The process-wide switch is [`enabled`]. It is controlled by the
//! `NOMAD_OBS` environment variable (`0`/`false`/empty disables,
//! anything else enables; the variable always wins) and, when the
//! variable is unset, by [`set_enabled`] (which the bench harnesses'
//! `--obs` flag calls). The snapshot cadence is `NOMAD_OBS_INTERVAL`
//! cycles ([`sample_interval`], default 5000).
//!
//! Every metric name exported by this registry is documented in the
//! repository-level `METRICS.md`; the `metrics_doc` test in
//! `nomad-bench` diffs the registry's name list against that file.

#![warn(missing_docs)]

pub mod export;
pub mod fleet;
pub mod json;
pub mod metric;
pub mod overload;
pub mod registry;
pub mod resilience;
pub mod ring;
pub mod trace;

pub use fleet::{fleet, Fleet};
pub use metric::{Counter, Gauge, Histo};
pub use overload::{overload, Overload};
pub use registry::{MetricDesc, MetricKind, Registry, Snapshot, SnapshotLog};
pub use resilience::{resilience, Resilience};
pub use ring::{Span, SpanKind, SpanRing};
pub use trace::{Track, SIM_TRACKS, TRACK_EVICT, TRACK_FILL, TRACK_LLC_MSHR, TRACK_WRITEBACK};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Programmatic override used when `NOMAD_OBS` is unset:
/// 0 = untouched (off), 1 = forced off, 2 = forced on.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// `NOMAD_OBS` parsed once: `Some(false)` for `0`/`false`/empty,
/// `Some(true)` for any other value, `None` when unset.
fn env_state() -> Option<bool> {
    static STATE: OnceLock<Option<bool>> = OnceLock::new();
    *STATE.get_or_init(|| match std::env::var("NOMAD_OBS") {
        Ok(v) => {
            let v = v.trim();
            Some(!(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false")))
        }
        Err(_) => None,
    })
}

/// Whether observability is enabled for this process.
///
/// `NOMAD_OBS` always wins; with the variable unset, the last
/// [`set_enabled`] call decides (default: disabled). Components consult
/// this once, at construction time — toggling mid-run affects only
/// systems built afterwards.
pub fn enabled() -> bool {
    match env_state() {
        Some(forced) => forced,
        None => OVERRIDE.load(Ordering::Relaxed) == 2,
    }
}

/// Programmatically enable or disable observability (e.g. from a
/// harness `--obs` flag). An explicit `NOMAD_OBS` environment variable
/// overrides this in either direction.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Snapshot sampling interval in simulated cycles, from
/// `NOMAD_OBS_INTERVAL` (default 5000; zero and garbage fall back to
/// the default).
pub fn sample_interval() -> u64 {
    static INTERVAL: OnceLock<u64> = OnceLock::new();
    *INTERVAL.get_or_init(|| {
        std::env::var("NOMAD_OBS_INTERVAL")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(5000)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_round_trips_when_env_unset() {
        // The test environment does not set NOMAD_OBS (CI runs these
        // with a clean env); guard anyway so an exported variable does
        // not turn this into a false failure.
        if env_state().is_some() {
            return;
        }
        assert!(!enabled(), "default is off");
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn interval_is_positive() {
        assert!(sample_interval() > 0);
    }
}
