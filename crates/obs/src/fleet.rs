//! Process-wide fleet-router counters.
//!
//! The fleet tier (consistent-hash routing, shared cache probes,
//! work stealing, membership failover) spans nomad-fleet, nomad-serve
//! and nomad-bench, so — exactly like [`crate::resilience()`] — its
//! counters live in one process-global registry rather than in any
//! per-router instance: a sweep wants one answer to "how many cells
//! were stolen / nodes failed over this run", no matter which router
//! call absorbed the event.
//!
//! Like the resilience counters these are **not** gated on
//! [`enabled`](crate::enabled): the events are rare (a steal, a node
//! death) and each is one relaxed atomic add, so they always count.
//! They are documented in `METRICS.md` and held against this registry
//! by the two-way `metrics_doc` test.

use crate::metric::Counter;
use crate::registry::Registry;
use std::sync::OnceLock;

/// Handles to the process-wide fleet counters.
pub struct Fleet {
    registry: Registry,
    /// Cells assigned to a node's arc by the hash ring
    /// (`fleet.cells_routed`).
    pub cells_routed: Counter,
    /// Peer-cache probes that found a completed result on a non-owner
    /// node (`fleet.probe_hits`).
    pub probe_hits: Counter,
    /// Cells answered by fetching a cached report from a non-owner
    /// node instead of computing (`fleet.remote_fetches`).
    pub remote_fetches: Counter,
    /// Cells re-dispatched from a straggler node's queue tail to an
    /// idle peer (`fleet.steals`).
    pub steals: Counter,
    /// Nodes declared dead with their ring arc reassigned live
    /// (`fleet.failovers`).
    pub failovers: Counter,
    /// Heartbeat probes that failed or were injected as failures
    /// (`fleet.heartbeat_misses`).
    pub heartbeat_misses: Counter,
}

impl Fleet {
    fn new() -> Self {
        let registry = Registry::new();
        Fleet {
            cells_routed: registry.counter(
                "fleet.cells_routed",
                "cells",
                "fleet",
                "Cells assigned to a node's arc by the consistent-hash ring",
            ),
            probe_hits: registry.counter(
                "fleet.probe_hits",
                "cells",
                "fleet",
                "Peer-cache probes that found a completed result on a non-owner node",
            ),
            remote_fetches: registry.counter(
                "fleet.remote_fetches",
                "cells",
                "fleet",
                "Cells answered from a non-owner node's cache instead of computing",
            ),
            steals: registry.counter(
                "fleet.steals",
                "cells",
                "fleet",
                "Cells re-dispatched from a straggler's queue tail to an idle peer",
            ),
            failovers: registry.counter(
                "fleet.failovers",
                "nodes",
                "fleet",
                "Nodes declared dead with their ring arc reassigned live",
            ),
            heartbeat_misses: registry.counter(
                "fleet.heartbeat_misses",
                "probes",
                "fleet",
                "Heartbeat probes that failed (or were injected as failures)",
            ),
            registry,
        }
    }

    /// Sorted base names of every fleet metric (for the `metrics_doc`
    /// two-way diff).
    pub fn metric_names(&self) -> Vec<String> {
        self.registry.names()
    }

    /// Sorted `(name, value)` rows of the live counters.
    pub fn rows(&self) -> Vec<(String, u64)> {
        self.registry.snapshot(0).values
    }

    /// The live value of one counter by its registered name; `None`
    /// for names this registry does not export. Convenience for tests
    /// asserting before/after deltas on the cumulative counters.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.rows()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

/// The process-wide [`Fleet`] counters.
pub fn fleet() -> &'static Fleet {
    static GLOBAL: OnceLock<Fleet> = OnceLock::new();
    GLOBAL.get_or_init(Fleet::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_under_documented_names() {
        let names = fleet().metric_names();
        assert_eq!(
            names,
            vec![
                "fleet.cells_routed",
                "fleet.failovers",
                "fleet.heartbeat_misses",
                "fleet.probe_hits",
                "fleet.remote_fetches",
                "fleet.steals",
            ]
        );
    }

    #[test]
    fn rows_track_increments() {
        let before = fleet().value("fleet.steals").expect("row present");
        fleet().steals.inc();
        let after = fleet().value("fleet.steals").expect("row present");
        assert_eq!(after, before + 1);
    }
}
