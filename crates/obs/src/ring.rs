//! Fixed-capacity ring of timed spans feeding the Chrome-trace exporter.

use std::sync::{Arc, Mutex};

/// Default span capacity: enough for every page copy and eviction of a
/// bench-scale run, small enough (≈1.5 MB) to never matter.
pub const DEFAULT_SPAN_CAPACITY: usize = 32_768;

/// How a span renders in the Trace Event Format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration event (`ph:"X"`): something that started at `ts` and
    /// took `dur` cycles (page copy, MSHR stall, serve job).
    Complete,
    /// A point event (`ph:"i"`): something that happened at `ts`
    /// (eviction, TLB shootdown).
    Instant,
}

/// One timed event. Names and categories are `&'static str` so pushing
/// a span never allocates.
#[derive(Debug, Clone)]
pub struct Span {
    /// Event name shown on the timeline slice.
    pub name: &'static str,
    /// Comma-free category string (Trace Event `cat` field).
    pub cat: &'static str,
    /// Duration vs instant.
    pub kind: SpanKind,
    /// Start cycle (exported as microseconds, 1 cycle = 1 µs).
    pub ts: u64,
    /// Duration in cycles; ignored for [`SpanKind::Instant`].
    pub dur: u64,
    /// Track (exported as `tid`) grouping related spans into one row.
    pub track: u32,
    /// Optional argument key shown in the event detail pane.
    pub arg_name: Option<&'static str>,
    /// Argument value for `arg_name`.
    pub arg: u64,
}

impl Span {
    /// A duration span on `track` covering `[ts, ts + dur)`.
    pub fn complete(name: &'static str, cat: &'static str, ts: u64, dur: u64, track: u32) -> Self {
        Span {
            name,
            cat,
            kind: SpanKind::Complete,
            ts,
            dur,
            track,
            arg_name: None,
            arg: 0,
        }
    }

    /// An instant event on `track` at `ts`.
    pub fn instant(name: &'static str, cat: &'static str, ts: u64, track: u32) -> Self {
        Span {
            name,
            cat,
            kind: SpanKind::Instant,
            ts,
            dur: 0,
            track,
            arg_name: None,
            arg: 0,
        }
    }

    /// Attach a `key: value` argument shown in the detail pane.
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Self {
        self.arg_name = Some(key);
        self.arg = value;
        self
    }
}

#[derive(Debug)]
struct RingInner {
    spans: Vec<Span>,
    capacity: usize,
    dropped: u64,
}

/// A bounded, shared buffer of [`Span`]s.
///
/// Once `capacity` spans are held, further pushes are counted in
/// [`dropped`](SpanRing::dropped) and discarded — a long run degrades
/// to a truncated trace, never to unbounded memory. Handles are `Arc`
/// clones of one buffer, so instrumentation sites and the exporter see
/// the same spans.
#[derive(Debug, Clone)]
pub struct SpanRing(Arc<Mutex<RingInner>>);

impl Default for SpanRing {
    fn default() -> Self {
        Self::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanRing {
    /// A ring holding at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        SpanRing(Arc::new(Mutex::new(RingInner {
            spans: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
        })))
    }

    /// Record a span; silently counted as dropped once full.
    pub fn push(&self, span: Span) {
        let mut inner = self.0.lock().expect("span ring lock");
        if inner.spans.len() < inner.capacity {
            inner.spans.push(span);
        } else {
            inner.dropped += 1;
        }
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.0.lock().expect("span ring lock").spans.len()
    }

    /// Whether no spans are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spans discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.0.lock().expect("span ring lock").dropped
    }

    /// Discard all held spans and the drop counter (end of warm-up).
    pub fn clear(&self) {
        let mut inner = self.0.lock().expect("span ring lock");
        inner.spans.clear();
        inner.dropped = 0;
    }

    /// Copy out every held span, sorted by `(ts, track)` so exports are
    /// deterministic regardless of instrumentation interleaving.
    pub fn sorted_spans(&self) -> Vec<Span> {
        let mut spans = self.0.lock().expect("span ring lock").spans.clone();
        spans.sort_by(|a, b| {
            a.ts.cmp(&b.ts)
                .then(a.track.cmp(&b.track))
                .then(a.name.cmp(b.name))
        });
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_past_capacity() {
        let ring = SpanRing::new(2);
        ring.push(Span::complete("a", "t", 5, 1, 0));
        ring.push(Span::instant("b", "t", 3, 0));
        ring.push(Span::instant("c", "t", 1, 0));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let spans = ring.sorted_spans();
        assert_eq!(spans[0].name, "b");
        assert_eq!(spans[1].name, "a");
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn with_arg_sets_detail() {
        let s = Span::complete("copy", "dcache", 0, 10, 1).with_arg("bytes", 4096);
        assert_eq!(s.arg_name, Some("bytes"));
        assert_eq!(s.arg, 4096);
    }
}
