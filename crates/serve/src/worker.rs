//! Worker pool: shards queued jobs across OS threads.
//!
//! Each job attempt runs on a dedicated *attempt thread* so the worker
//! can enforce a wall-clock timeout: the worker waits on a channel
//! with `recv_timeout`, and when an attempt overruns the worker cancels
//! its [`CancelToken`] and *joins* the thread — the simulation polls
//! the token at event boundaries, so the attempt unwinds promptly
//! instead of finishing detached in the background. Panics inside the
//! simulator are caught with `catch_unwind` and retried up to the
//! configured budget; timeouts are not retried — a deterministic
//! simulation that exceeded the budget once will exceed it again.

use crate::cache::{JobFailure, JobResult, ResultCache};
use crate::proto::JobSpec;
use crate::queue::BoundedQueue;
use crate::stats::ServiceStats;
use nomad_types::CancelToken;
use std::panic::AssertUnwindSafe;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued unit of work.
pub struct Job {
    /// The job to run.
    pub spec: JobSpec,
    /// Where the result goes.
    pub resolve: Resolve,
    /// When the job was accepted, for latency accounting.
    pub submitted: Instant,
}

/// How a finished job reaches its submitter(s).
pub enum Resolve {
    /// Resolve through the cache under this content key (wakes the
    /// flight registered by [`ResultCache::claim`]).
    Cache(u64),
    /// Content-key collision bypass: complete this unregistered
    /// flight directly, leaving the cache untouched.
    Direct(Arc<crate::cache::Flight>),
}

/// The worker threads of one server.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `count` workers draining `queue` until it is closed and
    /// empty.
    pub fn spawn(
        count: usize,
        queue: Arc<BoundedQueue<Job>>,
        cache: Arc<ResultCache>,
        stats: Arc<ServiceStats>,
        job_timeout: Duration,
        retry_budget: u32,
    ) -> Self {
        let handles = (0..count)
            .map(|id| {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("nomad-serve-worker-{id}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            let t0 = Instant::now();
                            let result = execute(&job.spec, job_timeout, retry_budget);
                            stats.add_worker_busy(id, t0.elapsed());
                            stats.record_job_span(id, t0, result.is_ok());
                            match &result {
                                Ok(_) => stats.completed.inc(),
                                Err(_) => stats.failed.inc(),
                            };
                            stats.record_latency(job.submitted.elapsed());
                            match job.resolve {
                                Resolve::Cache(key) => cache.complete(key, result),
                                Resolve::Direct(flight) => flight.complete(result),
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Wait for every worker to exit (the queue must be closed first).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Run one job with retries: panics consume the retry budget, a
/// timeout cancels the attempt (cooperatively, via its
/// [`CancelToken`]) and fails immediately. In every outcome the
/// attempt thread is joined before this function returns — timeouts do
/// not leak a busy background thread.
pub fn execute(spec: &JobSpec, timeout: Duration, retry_budget: u32) -> JobResult {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let (tx, rx) = mpsc::channel();
        let job = spec.clone();
        let cancel = CancelToken::new();
        let attempt_cancel = cancel.clone();
        let handle = std::thread::Builder::new()
            .name("nomad-serve-attempt".into())
            .spawn(move || {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    // Fault site `serve.worker.execute`: inside the
                    // catch_unwind so an injected panic consumes the
                    // retry budget exactly like a simulator panic.
                    nomad_faults::panic_point("serve.worker.execute");
                    job.run_local_cancellable(&attempt_cancel)
                }));
                // The worker may have stopped listening; a dead
                // receiver just drops the result.
                let _ = tx.send(outcome);
            })
            .expect("spawn attempt");
        let timed_out = |attempts| {
            Err(JobFailure {
                error: format!("job timed out after {} ms", timeout.as_millis()),
                attempts,
            })
        };
        match rx.recv_timeout(timeout) {
            Ok(Ok(Some(report))) => {
                let _ = handle.join();
                return Ok(Arc::new(report));
            }
            Ok(Ok(None)) => {
                // The attempt observed cancellation; only the timeout
                // arm below cancels, so report it as a timeout.
                let _ = handle.join();
                return timed_out(attempts);
            }
            Ok(Err(panic)) => {
                let _ = handle.join();
                if attempts > retry_budget {
                    // `&*panic` so the downcast sees the payload, not
                    // the `Box<dyn Any>` itself.
                    return Err(JobFailure {
                        error: format!("job panicked: {}", panic_message(&*panic)),
                        attempts,
                    });
                }
            }
            Err(_) => {
                // Cancel the attempt and wait for it to actually exit:
                // the simulation polls the token at event boundaries,
                // so the join returns promptly.
                cancel.cancel();
                let _ = handle.join();
                return timed_out(attempts);
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_sim::{SchemeSpec, SystemConfig};
    use nomad_trace::WorkloadProfile;

    fn tiny_job() -> JobSpec {
        let mut cfg = SystemConfig::scaled(1);
        cfg.dc_capacity = 4 * 1024 * 1024;
        JobSpec {
            cfg,
            spec: SchemeSpec::Baseline,
            profile: WorkloadProfile::tc(),
            instructions: 2_000,
            warmup: 0,
            seed: 1,
        }
    }

    /// A profile whose `derive()` asserts: `spatial_run` far beyond
    /// any blocks-per-page budget.
    fn poisoned_job() -> JobSpec {
        let mut job = tiny_job();
        job.profile.spatial_run = 1_000_000;
        job
    }

    #[test]
    fn healthy_job_succeeds_first_attempt() {
        let r = execute(&tiny_job(), Duration::from_secs(30), 2).expect("success");
        assert!(r.cycles > 0);
    }

    #[test]
    fn panicking_job_consumes_retry_budget() {
        let err = execute(&poisoned_job(), Duration::from_secs(30), 2).expect_err("fails");
        assert_eq!(err.attempts, 3, "1 attempt + 2 retries");
        assert!(err.error.contains("panicked"), "{}", err.error);
        assert!(
            err.error.contains("spatial_run"),
            "panic message surfaced: {}",
            err.error
        );
    }

    #[test]
    fn overrunning_job_times_out_without_retry() {
        let mut job = tiny_job();
        job.instructions = 2_000_000;
        let err = execute(&job, Duration::from_millis(5), 3).expect_err("times out");
        assert_eq!(err.attempts, 1, "timeouts are not retried");
        assert!(err.error.contains("timed out"), "{}", err.error);
    }

    /// Live threads whose name starts with the attempt-thread prefix
    /// (`/proc` truncates thread names to 15 bytes, so match on that).
    #[cfg(target_os = "linux")]
    fn live_attempt_threads() -> usize {
        let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
            return 0;
        };
        tasks
            .flatten()
            .filter(|t| {
                std::fs::read_to_string(t.path().join("comm"))
                    .map(|comm| comm.trim_end().starts_with("nomad-serve-att"))
                    .unwrap_or(false)
            })
            .count()
    }

    /// The point of cooperative cancellation: a timed-out attempt's
    /// simulation thread must exit (be joined), not keep burning a CPU
    /// detached in the background.
    #[test]
    #[cfg(target_os = "linux")]
    fn timed_out_attempt_thread_is_joined_not_leaked() {
        let before = live_attempt_threads();
        let mut job = tiny_job();
        job.instructions = 50_000_000;
        let err = execute(&job, Duration::from_millis(10), 0).expect_err("times out");
        assert!(err.error.contains("timed out"), "{}", err.error);
        // Our attempt thread is joined by the time `execute` returns;
        // sibling tests may spawn their own attempt threads
        // concurrently, so wait (briefly) for the count to settle
        // back instead of comparing an instantaneous snapshot.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let now = live_attempt_threads();
            if now <= before {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "timed-out attempt thread leaked ({now} live, {before} before)"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
