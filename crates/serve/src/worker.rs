//! Worker pool: shards queued jobs across OS threads.
//!
//! Each job attempt runs on a dedicated *attempt thread* so the worker
//! can enforce a wall-clock timeout: the worker waits on a channel
//! with `recv_timeout`, and when an attempt overruns the worker cancels
//! its [`CancelToken`] and *joins* the thread — the simulation polls
//! the token at event boundaries, so the attempt unwinds promptly
//! instead of finishing detached in the background. Panics inside the
//! simulator are caught with `catch_unwind` and retried up to the
//! configured budget; timeouts are not retried — a deterministic
//! simulation that exceeded the budget once will exceed it again.

use crate::cache::{JobFailure, JobResult, ResultCache};
use crate::overload::{self, OverloadConfig};
use crate::proto::JobSpec;
use crate::queue::BoundedQueue;
use crate::stats::ServiceStats;
use nomad_types::CancelToken;
use std::panic::AssertUnwindSafe;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued unit of work.
pub struct Job {
    /// The job to run.
    pub spec: JobSpec,
    /// Where the result goes.
    pub resolve: Resolve,
    /// When the job was accepted, for latency accounting.
    pub submitted: Instant,
    /// Absolute deadline for deadline-budgeted submissions; `None`
    /// means no deadline (classic `Submit`).
    pub deadline: Option<Instant>,
}

/// How a finished job reaches its submitter(s).
pub enum Resolve {
    /// Resolve through the cache under this content key (wakes the
    /// flight registered by [`ResultCache::claim`]).
    Cache(u64),
    /// Content-key collision bypass: complete this unregistered
    /// flight directly, leaving the cache untouched.
    Direct(Arc<crate::cache::Flight>),
}

/// The worker threads of one server.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `count` workers draining `queue` until it is closed and
    /// empty.
    pub fn spawn(
        count: usize,
        queue: Arc<BoundedQueue<Job>>,
        cache: Arc<ResultCache>,
        stats: Arc<ServiceStats>,
        job_timeout: Duration,
        retry_budget: u32,
        overload_cfg: OverloadConfig,
    ) -> Self {
        let handles = (0..count)
            .map(|id| {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let stats = Arc::clone(&stats);
                let ocfg = overload_cfg.clone();
                std::thread::Builder::new()
                    .name(format!("nomad-serve-worker-{id}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            // Dequeue checkpoint: shed instead of
                            // executing work whose budget died in the
                            // queue, or whose sojourn blew the CoDel
                            // target while a backlog waits behind it.
                            if let Some(shed) = dequeue_shed(&job, &ocfg, queue.depth()) {
                                match job.resolve {
                                    Resolve::Cache(key) => cache.complete(key, Err(shed)),
                                    Resolve::Direct(flight) => flight.complete(Err(shed)),
                                }
                                continue;
                            }
                            let t0 = Instant::now();
                            let result = execute_with_deadline(
                                &job.spec,
                                job_timeout,
                                retry_budget,
                                job.deadline,
                                ocfg.shed,
                            );
                            stats.add_worker_busy(id, t0.elapsed());
                            stats.record_job_span(id, t0, result.is_ok());
                            match &result {
                                Ok(_) => {
                                    stats.completed.inc();
                                    stats.record_service_time(t0.elapsed());
                                }
                                // Sheds are counted by their overload
                                // counter, not as job failures.
                                Err(f) if f.is_shed() => {}
                                Err(_) => stats.failed.inc(),
                            };
                            stats.record_latency(job.submitted.elapsed());
                            match job.resolve {
                                Resolve::Cache(key) => cache.complete(key, result),
                                Resolve::Direct(flight) => flight.complete(result),
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Wait for every worker to exit (the queue must be closed first).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// The dequeue checkpoint: decide whether a just-popped job should be
/// shed. Returns the shed failure, or `None` to execute. `backlog` is
/// the queue depth *behind* this job (it was already popped).
fn dequeue_shed(job: &Job, cfg: &OverloadConfig, backlog: usize) -> Option<JobFailure> {
    if !cfg.shed {
        return None;
    }
    let sojourn_ms = job.submitted.elapsed().as_millis() as u64;
    if let Some(deadline) = job.deadline {
        if Instant::now() >= deadline {
            nomad_obs::overload().queue_shed.inc();
            return Some(JobFailure::expired("dequeue", sojourn_ms));
        }
    }
    let target_ms = cfg.codel_target.as_millis() as u64;
    if overload::codel_should_shed(sojourn_ms, target_ms, backlog) {
        nomad_obs::overload().codel_shed.inc();
        return Some(JobFailure::codel_shed(sojourn_ms, target_ms));
    }
    None
}

/// Run one job with retries: panics consume the retry budget, a
/// timeout cancels the attempt (cooperatively, via its
/// [`CancelToken`]) and fails immediately. In every outcome the
/// attempt thread is joined before this function returns — timeouts do
/// not leak a busy background thread.
pub fn execute(spec: &JobSpec, timeout: Duration, retry_budget: u32) -> JobResult {
    execute_with_deadline(spec, timeout, retry_budget, None, true)
}

/// [`execute`] with the pre-execute deadline checkpoint: immediately
/// before each attempt (including retries after a panic), an expired
/// deadline sheds the job (`overload.exec_shed`). With `shed` false
/// the expired job is **executed anyway** and
/// `overload.expired_executions` is incremented — the invariant
/// counter the load generator asserts stays zero under shedding.
pub fn execute_with_deadline(
    spec: &JobSpec,
    timeout: Duration,
    retry_budget: u32,
    deadline: Option<Instant>,
    shed: bool,
) -> JobResult {
    let mut attempts = 0u32;
    loop {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                if shed {
                    nomad_obs::overload().exec_shed.inc();
                    return Err(JobFailure::expired(
                        "pre-execute",
                        d.elapsed().as_millis() as u64,
                    ));
                }
                nomad_obs::overload().expired_executions.inc();
            }
        }
        attempts += 1;
        let (tx, rx) = mpsc::channel();
        let job = spec.clone();
        let cancel = CancelToken::new();
        let attempt_cancel = cancel.clone();
        let handle = std::thread::Builder::new()
            .name("nomad-serve-attempt".into())
            .spawn(move || {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    // Fault site `serve.worker.execute`: inside the
                    // catch_unwind so an injected panic consumes the
                    // retry budget exactly like a simulator panic.
                    nomad_faults::panic_point("serve.worker.execute");
                    job.run_local_cancellable(&attempt_cancel)
                }));
                // The worker may have stopped listening; a dead
                // receiver just drops the result.
                let _ = tx.send(outcome);
            })
            .expect("spawn attempt");
        let timed_out = |attempts| {
            Err(JobFailure {
                error: format!("job timed out after {} ms", timeout.as_millis()),
                attempts,
            })
        };
        match rx.recv_timeout(timeout) {
            Ok(Ok(Some(report))) => {
                let _ = handle.join();
                return Ok(Arc::new(report));
            }
            Ok(Ok(None)) => {
                // The attempt observed cancellation; only the timeout
                // arm below cancels, so report it as a timeout.
                let _ = handle.join();
                return timed_out(attempts);
            }
            Ok(Err(panic)) => {
                let _ = handle.join();
                if attempts > retry_budget {
                    // `&*panic` so the downcast sees the payload, not
                    // the `Box<dyn Any>` itself.
                    return Err(JobFailure {
                        error: format!("job panicked: {}", panic_message(&*panic)),
                        attempts,
                    });
                }
            }
            Err(_) => {
                // Cancel the attempt and wait for it to actually exit:
                // the simulation polls the token at event boundaries,
                // so the join returns promptly.
                cancel.cancel();
                let _ = handle.join();
                return timed_out(attempts);
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_sim::{SchemeSpec, SystemConfig};
    use nomad_trace::WorkloadProfile;

    fn tiny_job() -> JobSpec {
        let mut cfg = SystemConfig::scaled(1);
        cfg.dc_capacity = 4 * 1024 * 1024;
        JobSpec {
            cfg,
            spec: SchemeSpec::Baseline,
            profile: WorkloadProfile::tc(),
            instructions: 2_000,
            warmup: 0,
            seed: 1,
        }
    }

    /// A profile whose `derive()` asserts: `spatial_run` far beyond
    /// any blocks-per-page budget.
    fn poisoned_job() -> JobSpec {
        let mut job = tiny_job();
        job.profile.spatial_run = 1_000_000;
        job
    }

    #[test]
    fn healthy_job_succeeds_first_attempt() {
        let r = execute(&tiny_job(), Duration::from_secs(30), 2).expect("success");
        assert!(r.cycles > 0);
    }

    #[test]
    fn panicking_job_consumes_retry_budget() {
        let err = execute(&poisoned_job(), Duration::from_secs(30), 2).expect_err("fails");
        assert_eq!(err.attempts, 3, "1 attempt + 2 retries");
        assert!(err.error.contains("panicked"), "{}", err.error);
        assert!(
            err.error.contains("spatial_run"),
            "panic message surfaced: {}",
            err.error
        );
    }

    #[test]
    fn overrunning_job_times_out_without_retry() {
        let mut job = tiny_job();
        job.instructions = 2_000_000;
        let err = execute(&job, Duration::from_millis(5), 3).expect_err("times out");
        assert_eq!(err.attempts, 1, "timeouts are not retried");
        assert!(err.error.contains("timed out"), "{}", err.error);
    }

    #[test]
    fn expired_deadline_is_shed_before_execution() {
        let before = nomad_obs::overload()
            .value("overload.exec_shed")
            .expect("row");
        let already_past = Instant::now() - Duration::from_millis(5);
        let err = execute_with_deadline(
            &tiny_job(),
            Duration::from_secs(30),
            2,
            Some(already_past),
            true,
        )
        .expect_err("shed, not executed");
        assert!(err.is_shed(), "{}", err.error);
        assert_eq!(err.attempts, 0, "nothing ran");
        assert!(nomad_obs::overload().value("overload.exec_shed").unwrap() > before);
    }

    #[test]
    fn shedding_disabled_executes_anyway_and_counts_the_violation() {
        let before = nomad_obs::overload()
            .value("overload.expired_executions")
            .expect("row");
        let already_past = Instant::now() - Duration::from_millis(5);
        let r = execute_with_deadline(
            &tiny_job(),
            Duration::from_secs(30),
            2,
            Some(already_past),
            false,
        )
        .expect("runs to completion with shedding off");
        assert!(r.cycles > 0);
        assert!(
            nomad_obs::overload()
                .value("overload.expired_executions")
                .unwrap()
                > before,
            "the expired execution must be witnessed"
        );
    }

    #[test]
    fn dequeue_shed_honors_deadline_codel_and_the_last_job_rule() {
        let job = |deadline, age_ms| Job {
            spec: tiny_job(),
            resolve: Resolve::Direct(crate::cache::Flight::new()),
            submitted: Instant::now() - Duration::from_millis(age_ms),
            deadline,
        };
        let mut cfg = OverloadConfig::default();
        // No deadline, no CoDel target: never shed.
        assert!(dequeue_shed(&job(None, 500), &cfg, 10).is_none());
        // Expired deadline: shed regardless of backlog.
        let past = Some(Instant::now() - Duration::from_millis(1));
        assert!(dequeue_shed(&job(past, 10), &cfg, 0).is_some());
        // CoDel: over-target sojourn sheds only while a backlog waits.
        cfg.codel_target = Duration::from_millis(100);
        assert!(dequeue_shed(&job(None, 500), &cfg, 3).is_some());
        assert!(
            dequeue_shed(&job(None, 500), &cfg, 0).is_none(),
            "the last waiting job always executes"
        );
        // Master switch off: nothing is shed.
        cfg.shed = false;
        assert!(dequeue_shed(&job(past, 500), &cfg, 3).is_none());
    }

    /// Live threads whose name starts with the attempt-thread prefix
    /// (`/proc` truncates thread names to 15 bytes, so match on that).
    #[cfg(target_os = "linux")]
    fn live_attempt_threads() -> usize {
        let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
            return 0;
        };
        tasks
            .flatten()
            .filter(|t| {
                std::fs::read_to_string(t.path().join("comm"))
                    .map(|comm| comm.trim_end().starts_with("nomad-serve-att"))
                    .unwrap_or(false)
            })
            .count()
    }

    /// The point of cooperative cancellation: a timed-out attempt's
    /// simulation thread must exit (be joined), not keep burning a CPU
    /// detached in the background.
    #[test]
    #[cfg(target_os = "linux")]
    fn timed_out_attempt_thread_is_joined_not_leaked() {
        let before = live_attempt_threads();
        let mut job = tiny_job();
        job.instructions = 50_000_000;
        let err = execute(&job, Duration::from_millis(10), 0).expect_err("times out");
        assert!(err.error.contains("timed out"), "{}", err.error);
        // Our attempt thread is joined by the time `execute` returns;
        // sibling tests may spawn their own attempt threads
        // concurrently, so wait (briefly) for the count to settle
        // back instead of comparing an instantaneous snapshot.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let now = live_attempt_threads();
            if now <= before {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "timed-out attempt thread leaked ({now} live, {before} before)"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
