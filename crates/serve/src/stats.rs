//! Service counters backing the `/stats` request.
//!
//! Everything is registered by name in a [`nomad_obs::Registry`], so a
//! `Stats` response reports exactly the metric names the simulator's
//! snapshot-JSON exporter uses (`serve.jobs.submitted`,
//! `serve.job.latency_ms.p99`, …) and `METRICS.md` documents the
//! service and the simulator in one table. Job executions additionally
//! push one span per attempt into a [`SpanRing`], exportable as a
//! Chrome trace via [`ServiceStats::trace_json`].

use crate::proto::MetricRow;
use nomad_obs::{Counter, Gauge, Histo, Registry, Span, SpanRing};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared mutable service counters. Everything here is updated by
/// connection handlers and workers and read by `Stats` requests.
pub struct ServiceStats {
    registry: Registry,
    started: Instant,
    /// Total `Submit` requests received (`serve.jobs.submitted`).
    pub submitted: Counter,
    /// Jobs that ran to completion (`serve.jobs.completed`).
    pub completed: Counter,
    /// Jobs that failed (`serve.jobs.failed`).
    pub failed: Counter,
    /// Submissions rejected for backpressure (`serve.jobs.rejected`).
    pub rejected: Counter,
    /// Jobs waiting in the queue, sampled at snapshot time
    /// (`serve.queue.depth`).
    queue_depth: Gauge,
    /// Age of the oldest queued job in milliseconds, sampled at
    /// snapshot time (`serve.queue.oldest_ms`).
    queue_oldest_ms: Gauge,
    /// EWMA of execution time in milliseconds (alpha 1/8) — the
    /// admission controller's service-time estimate.
    service_ewma_ms: AtomicU64,
    /// Result-cache hit/miss/occupancy mirrors, sampled at snapshot
    /// time (`serve.cache.*`).
    cache_hits: Gauge,
    cache_misses: Gauge,
    cache_entries: Gauge,
    /// Busy nanoseconds per worker (`serve.worker.<i>.busy_ns`).
    worker_busy_ns: Vec<Counter>,
    /// Submit-to-completion latency in milliseconds
    /// (`serve.job.latency_ms`).
    latency_ms: Histo,
    /// One span per executed job, on the owning worker's track.
    ring: SpanRing,
}

impl ServiceStats {
    /// Counters for a pool of `workers` threads, starting now.
    pub fn new(workers: usize) -> Self {
        let registry = Registry::new();
        ServiceStats {
            started: Instant::now(),
            submitted: registry.counter(
                "serve.jobs.submitted",
                "requests",
                "serve",
                "Total Submit requests received",
            ),
            completed: registry.counter(
                "serve.jobs.completed",
                "jobs",
                "serve",
                "Jobs that ran to completion",
            ),
            failed: registry.counter(
                "serve.jobs.failed",
                "jobs",
                "serve",
                "Jobs that failed (panic past budget, timeout, shutdown)",
            ),
            rejected: registry.counter(
                "serve.jobs.rejected",
                "requests",
                "serve",
                "Submissions rejected for backpressure",
            ),
            queue_depth: registry.gauge(
                "serve.queue.depth",
                "jobs",
                "serve",
                "Jobs waiting in the queue at snapshot time",
            ),
            queue_oldest_ms: registry.gauge(
                "serve.queue.oldest_ms",
                "ms",
                "serve",
                "Age of the oldest queued job at snapshot time",
            ),
            service_ewma_ms: AtomicU64::new(0),
            cache_hits: registry.gauge(
                "serve.cache.hits",
                "requests",
                "serve",
                "Submissions served from the result cache or coalesced",
            ),
            cache_misses: registry.gauge(
                "serve.cache.misses",
                "requests",
                "serve",
                "Submissions that required running a new simulation",
            ),
            cache_entries: registry.gauge(
                "serve.cache.entries",
                "reports",
                "serve",
                "Completed reports currently cached",
            ),
            worker_busy_ns: (0..workers)
                .map(|i| {
                    registry.counter(
                        format!("serve.worker.{i}.busy_ns"),
                        "ns",
                        "serve",
                        "Wall-clock nanoseconds this worker spent executing jobs",
                    )
                })
                .collect(),
            latency_ms: registry.histogram(
                "serve.job.latency_ms",
                "ms",
                "serve",
                "Submit-to-completion latency",
            ),
            ring: SpanRing::default(),
            registry,
        }
    }

    /// Credit `busy` execution time to worker `id`.
    pub fn add_worker_busy(&self, id: usize, busy: Duration) {
        self.worker_busy_ns[id].add(busy.as_nanos() as u64);
    }

    /// Record one job's submit-to-completion latency.
    pub fn record_latency(&self, latency: Duration) {
        self.latency_ms.record(latency.as_millis() as u64);
    }

    /// Fold one execution duration into the EWMA service-time
    /// estimate. A racy read-modify-write is fine here: the estimate
    /// feeds an admission heuristic, not an invariant.
    pub fn record_service_time(&self, took: Duration) {
        let sample = took.as_millis() as u64;
        let current = self.service_ewma_ms.load(Ordering::Relaxed);
        self.service_ewma_ms.store(
            crate::overload::ewma_step(current, sample),
            Ordering::Relaxed,
        );
    }

    /// The EWMA execution-time estimate in milliseconds (0 before the
    /// first completion).
    pub fn service_ewma_ms(&self) -> u64 {
        self.service_ewma_ms.load(Ordering::Relaxed)
    }

    /// Record one executed job as a span on worker `id`'s trace track.
    /// `job_started` must be an `Instant` taken after the server
    /// started (the worker's execution start).
    pub fn record_job_span(&self, id: usize, job_started: Instant, ok: bool) {
        let start_us = job_started
            .saturating_duration_since(self.started)
            .as_micros() as u64;
        let dur_us = job_started.elapsed().as_micros() as u64;
        self.ring.push(Span::complete(
            if ok { "job" } else { "job_failed" },
            "serve",
            start_us,
            dur_us,
            id as u32,
        ));
    }

    /// Per-worker busy fraction since the server started.
    pub fn worker_utilization(&self) -> Vec<f64> {
        let elapsed_ns = self.started.elapsed().as_nanos().max(1) as f64;
        self.worker_busy_ns
            .iter()
            .map(|b| (b.get() as f64 / elapsed_ns).min(1.0))
            .collect()
    }

    /// `(p50, p99)` completion latency in milliseconds (log-bucket
    /// lower bounds).
    pub fn latency_quantiles_ms(&self) -> (u64, u64) {
        (
            self.latency_ms.quantile(0.5),
            self.latency_ms.quantile(0.99),
        )
    }

    /// Refresh the sampled gauges from their live sources and read the
    /// whole registry as sorted `(name, value)` rows — the `counters`
    /// section of a `/stats` response. Histograms expand to `.count`,
    /// `.p50` and `.p99` rows, exactly like the snapshot-JSON exporter.
    pub fn counter_rows(
        &self,
        queue_depth: usize,
        queue_oldest_ms: u64,
        cache_hits: u64,
        cache_misses: u64,
        cache_entries: usize,
    ) -> Vec<MetricRow> {
        self.queue_depth.set(queue_depth as u64);
        self.queue_oldest_ms.set(queue_oldest_ms);
        self.cache_hits.set(cache_hits);
        self.cache_misses.set(cache_misses);
        self.cache_entries.set(cache_entries as u64);
        let stamp = self.started.elapsed().as_millis() as u64;
        self.registry
            .snapshot(stamp)
            .values
            .into_iter()
            .map(|(name, value)| MetricRow { name, value })
            .collect()
    }

    /// Sorted base names of every metric this service registers (the
    /// `metrics_doc` test diffs these against `METRICS.md`).
    pub fn metric_names(&self) -> Vec<String> {
        self.registry.names()
    }

    /// Render the recorded job spans as a Chrome Trace Event JSON
    /// document (one track per worker, timestamps in microseconds since
    /// server start).
    pub fn trace_json(&self) -> String {
        nomad_obs::trace::chrome_trace("nomad-serve", &[], &self.ring, None, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_bounded_and_per_worker() {
        let s = ServiceStats::new(2);
        s.add_worker_busy(1, Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(2));
        let u = s.worker_utilization();
        assert_eq!(u.len(), 2);
        assert_eq!(u[0], 0.0);
        assert!(u[1] > 0.0 && u[1] <= 1.0);
    }

    #[test]
    fn latency_quantiles_track_samples() {
        let s = ServiceStats::new(1);
        for ms in [2u64, 2, 2, 2, 300] {
            s.record_latency(Duration::from_millis(ms));
        }
        let (p50, p99) = s.latency_quantiles_ms();
        assert!(p50 <= 2);
        assert!(p99 >= 256, "p99 bucket {p99}");
    }

    #[test]
    fn counter_rows_carry_registry_names() {
        let s = ServiceStats::new(2);
        s.submitted.add(3);
        s.completed.inc();
        let rows = s.counter_rows(5, 40, 2, 1, 1);
        let find = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("row {name} missing"))
                .value
        };
        assert_eq!(find("serve.jobs.submitted"), 3);
        assert_eq!(find("serve.jobs.completed"), 1);
        assert_eq!(find("serve.queue.depth"), 5);
        assert_eq!(find("serve.queue.oldest_ms"), 40);
        assert_eq!(find("serve.cache.hits"), 2);
        assert_eq!(find("serve.cache.entries"), 1);
        assert_eq!(find("serve.job.latency_ms.count"), 0);
        assert!(rows.iter().any(|r| r.name == "serve.worker.1.busy_ns"));
        let mut sorted = rows.clone();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(rows, sorted, "rows are name-sorted");
    }

    #[test]
    fn service_ewma_seeds_then_smooths() {
        let s = ServiceStats::new(1);
        assert_eq!(s.service_ewma_ms(), 0);
        s.record_service_time(Duration::from_millis(40));
        assert_eq!(s.service_ewma_ms(), 40, "first sample seeds directly");
        s.record_service_time(Duration::from_millis(120));
        let est = s.service_ewma_ms();
        assert!(est > 40 && est < 120, "EWMA moved toward the sample: {est}");
    }

    #[test]
    fn job_spans_export_as_chrome_trace() {
        let s = ServiceStats::new(1);
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        s.record_job_span(0, t0, true);
        s.record_job_span(0, t0, false);
        let json = s.trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"job\""));
        assert!(json.contains("\"name\":\"job_failed\""));
    }
}
