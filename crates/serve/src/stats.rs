//! Service counters backing the `/stats` request.

use nomad_types::stats::LogHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared mutable service counters. Everything here is updated by
/// connection handlers and workers and read by `Stats` requests.
pub struct ServiceStats {
    started: Instant,
    /// Total `Submit` requests received.
    pub submitted: AtomicU64,
    /// Jobs that ran to completion.
    pub completed: AtomicU64,
    /// Jobs that failed.
    pub failed: AtomicU64,
    /// Submissions rejected for backpressure.
    pub rejected: AtomicU64,
    /// Busy nanoseconds per worker.
    worker_busy_ns: Vec<AtomicU64>,
    /// Submit-to-completion latency in milliseconds.
    latency_ms: Mutex<LogHistogram>,
}

impl ServiceStats {
    /// Counters for a pool of `workers` threads, starting now.
    pub fn new(workers: usize) -> Self {
        ServiceStats {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            worker_busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            latency_ms: Mutex::new(LogHistogram::new()),
        }
    }

    /// Credit `busy` execution time to worker `id`.
    pub fn add_worker_busy(&self, id: usize, busy: Duration) {
        self.worker_busy_ns[id].fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record one job's submit-to-completion latency.
    pub fn record_latency(&self, latency: Duration) {
        self.latency_ms
            .lock()
            .expect("latency lock")
            .record(latency.as_millis() as u64);
    }

    /// Per-worker busy fraction since the server started.
    pub fn worker_utilization(&self) -> Vec<f64> {
        let elapsed_ns = self.started.elapsed().as_nanos().max(1) as f64;
        self.worker_busy_ns
            .iter()
            .map(|b| (b.load(Ordering::Relaxed) as f64 / elapsed_ns).min(1.0))
            .collect()
    }

    /// `(p50, p99)` completion latency in milliseconds (log-bucket
    /// lower bounds).
    pub fn latency_quantiles_ms(&self) -> (u64, u64) {
        let h = self.latency_ms.lock().expect("latency lock");
        (h.quantile(0.5), h.quantile(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_bounded_and_per_worker() {
        let s = ServiceStats::new(2);
        s.add_worker_busy(1, Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(2));
        let u = s.worker_utilization();
        assert_eq!(u.len(), 2);
        assert_eq!(u[0], 0.0);
        assert!(u[1] > 0.0 && u[1] <= 1.0);
    }

    #[test]
    fn latency_quantiles_track_samples() {
        let s = ServiceStats::new(1);
        for ms in [2u64, 2, 2, 2, 300] {
            s.record_latency(Duration::from_millis(ms));
        }
        let (p50, p99) = s.latency_quantiles_ms();
        assert!(p50 <= 2);
        assert!(p99 >= 256, "p99 bucket {p99}");
    }
}
