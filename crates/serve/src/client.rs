//! Thin synchronous client for the nomad-serve protocol, plus the
//! self-healing grid runner built on it.
//!
//! # Timeouts and reconnection
//!
//! Connections are opened with a connect timeout and carry read/write
//! timeouts, so a hung or unreachable server fails a request instead
//! of parking a sweep thread forever. The grid runner
//! ([`run_grid_via_jobs`]) treats every transport error as transient:
//! it reconnects with capped exponential backoff (plus deterministic
//! jitter) and resubmits the job — safe because jobs are idempotent
//! and content-addressed, so a resubmission of work the server already
//! finished is a cache hit. Only when the server stays unreachable
//! past the reconnect budget does the runner degrade: it flips a
//! grid-wide flag and runs the remaining cells in-process, so a dead
//! `NOMAD_SERVE_ADDR` costs one backoff budget, not one per cell.
//!
//! All budgets come from [`ClientConfig`] (environment-overridable;
//! see its field docs).

use crate::proto::{self, JobSpec, Request, Response, StatsSnapshot};
use nomad_sim::runner::Cell;
use nomad_sim::RunReport;
use nomad_types::CancelToken;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Longest single backpressure sleep [`Client::submit_retrying`] will
/// honour, so a hostile or buggy `retry_after_ms` cannot park a client
/// thread for minutes.
const MAX_REJECTED_SLEEP_MS: u64 = 1_000;

/// Connection and recovery budgets for [`Client`] and the grid runner.
///
/// [`ClientConfig::from_env`] reads each field from an environment
/// variable (falling back to the default on unset or garbage), so
/// sweeps can tune the budgets without code changes.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout (`NOMAD_SERVE_CONNECT_TIMEOUT_MS`, default
    /// 5000).
    pub connect_timeout: Duration,
    /// Per-request read/write timeout (`NOMAD_SERVE_IO_TIMEOUT_MS`,
    /// default 600 000 — simulations are slow, transport stalls are
    /// not; `0` disables). `None` blocks forever.
    pub io_timeout: Option<Duration>,
    /// Reconnect attempts per job before the runner degrades to local
    /// execution (`NOMAD_SERVE_RECONNECTS`, default 4).
    pub reconnect_attempts: u32,
    /// Base reconnect backoff (`NOMAD_SERVE_BACKOFF_MS`, default 50);
    /// attempt `n` sleeps `base · 2^(n-1)` + jitter, capped by
    /// [`backoff_cap`](Self::backoff_cap).
    pub backoff_base: Duration,
    /// Ceiling on a single backoff sleep (2 s; not env-tunable).
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_millis(5_000),
            io_timeout: Some(Duration::from_millis(600_000)),
            reconnect_attempts: 4,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(2_000),
        }
    }
}

impl ClientConfig {
    /// The defaults, overridden by any of the documented
    /// `NOMAD_SERVE_*` environment variables that are set and parse
    /// (shared semantics in [`nomad_types::env`]: garbage warns and
    /// falls back, out-of-range clamps).
    pub fn from_env() -> Self {
        use nomad_types::env;
        let d = ClientConfig::default();
        let io_default = d.io_timeout.map_or(0, |t| t.as_millis() as u64);
        let io_ms = env::u64_or("NOMAD_SERVE_IO_TIMEOUT_MS", io_default);
        ClientConfig {
            connect_timeout: env::ms_clamped(
                "NOMAD_SERVE_CONNECT_TIMEOUT_MS",
                d.connect_timeout.as_millis() as u64,
                1,
                u64::MAX,
            ),
            // 0 disables the I/O timeout entirely.
            io_timeout: (io_ms > 0).then(|| Duration::from_millis(io_ms)),
            reconnect_attempts: env::u64_clamped(
                "NOMAD_SERVE_RECONNECTS",
                u64::from(d.reconnect_attempts),
                0,
                u64::from(u32::MAX),
            ) as u32,
            backoff_base: env::ms_clamped(
                "NOMAD_SERVE_BACKOFF_MS",
                d.backoff_base.as_millis() as u64,
                1,
                u64::MAX,
            ),
            backoff_cap: d.backoff_cap,
        }
    }

    /// Backoff before reconnect attempt `attempt` (1-based):
    /// exponential from [`backoff_base`](Self::backoff_base), capped,
    /// plus deterministic jitter drawn from `(salt, attempt)` — two
    /// threads hammering a recovering server spread out, yet a rerun
    /// of the same sweep sleeps identically.
    pub fn backoff(&self, salt: u64, attempt: u32) -> Duration {
        let base = self.backoff_base.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(16));
        let capped = exp.min(self.backoff_cap.as_millis() as u64);
        let jitter = nomad_faults::splitmix64(salt ^ u64::from(attempt)) % base.max(1);
        Duration::from_millis(capped + jitter)
    }
}

/// One connection to a nomad-serve instance. Requests on a connection
/// are synchronous; open one client per concurrent job.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server with the environment-derived
    /// [`ClientConfig`] budgets (connect timeout, I/O timeouts).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_with(addr, &ClientConfig::from_env())
    }

    /// Connect with explicit budgets: every resolved address is tried
    /// with `cfg.connect_timeout`, and the stream carries
    /// `cfg.io_timeout` as its read and write timeout so a hung server
    /// errors out instead of blocking a sweep thread forever.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, cfg: &ClientConfig) -> io::Result<Self> {
        let mut last_err = None;
        let mut stream = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, cfg.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = stream.ok_or_else(|| {
            last_err.unwrap_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
            })
        })?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(cfg.io_timeout)?;
        stream.set_write_timeout(cfg.io_timeout)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        proto::write_frame(&mut self.writer, request)?;
        proto::read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            )
        })
    }

    /// Submit one job (no backpressure retry; see
    /// [`submit_retrying`](Self::submit_retrying)).
    pub fn submit(&mut self, job: &JobSpec) -> io::Result<Response> {
        self.request(&Request::Submit(job.clone()))
    }

    /// Submit one job with a relative deadline budget (milliseconds
    /// from server receipt); the server sheds it — `Expired` — instead
    /// of executing it once the budget cannot be met. No backpressure
    /// retry; see [`submit_within_deadline`] for the budget-splitting
    /// retry/reconnect driver.
    pub fn submit_with_deadline(
        &mut self,
        job: &JobSpec,
        budget: Duration,
    ) -> io::Result<Response> {
        self.request(&Request::SubmitDeadline {
            job: job.clone(),
            deadline_ms: budget.as_millis() as u64,
        })
    }

    /// Submit, honouring `Overloaded { retry_after_ms }` backpressure
    /// up to `max_attempts` total tries. The advertised sleep is capped
    /// at 1 s per attempt (a buggy or hostile server cannot park this
    /// thread for minutes), and the final failed attempt returns
    /// immediately instead of sleeping a backoff nobody will use.
    pub fn submit_retrying(&mut self, job: &JobSpec, max_attempts: u32) -> io::Result<Response> {
        let max_attempts = max_attempts.max(1);
        let mut last = None;
        for attempt in 1..=max_attempts {
            match self.submit(job)? {
                Response::Overloaded { retry_after_ms } => {
                    last = Some(Response::Overloaded { retry_after_ms });
                    if attempt < max_attempts {
                        std::thread::sleep(Duration::from_millis(
                            retry_after_ms.min(MAX_REJECTED_SLEEP_MS),
                        ));
                    }
                }
                other => return Ok(other),
            }
        }
        Ok(last.expect("at least one attempt"))
    }

    /// Ask whether the server's cache holds a completed result for
    /// this `(key, canonical)` identity. A pure read — never executes
    /// or coalesces (see [`Request::Probe`]).
    pub fn probe(&mut self, key: u64, canonical: &str) -> io::Result<bool> {
        match self.request(&Request::Probe {
            key,
            canonical: canonical.to_string(),
        })? {
            Response::ProbeResult { hit } => Ok(hit),
            other => Err(unexpected("ProbeResult", &other)),
        }
    }

    /// Fetch the cached report for this `(key, canonical)` identity
    /// without executing anything; `Ok(None)` when the server has no
    /// completed entry (see [`Request::Fetch`]).
    pub fn fetch(&mut self, key: u64, canonical: &str) -> io::Result<Option<RunReport>> {
        match self.request(&Request::Fetch {
            key,
            canonical: canonical.to_string(),
        })? {
            Response::Report { report, .. } => Ok(Some(report)),
            Response::NotCached => Ok(None),
            other => Err(unexpected("Report or NotCached", &other)),
        }
    }

    /// Fetch service statistics.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.request(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected {wanted}, got {got:?}"),
    )
}

/// Submit one job under a hard **client-side** deadline, splitting the
/// remaining budget across backpressure retries and reconnects: every
/// sleep (backoff or retry-after) is capped by the time left, every
/// reconnect uses a connect timeout capped by the time left, and each
/// submission hands the server only the *remaining* budget — so the
/// total spent across all attempts never exceeds `budget`.
///
/// `conn` is the caller's reusable connection slot (dropped on
/// transport errors, re-established lazily, exactly like the grid
/// runner's). When the budget runs out client-side the call returns a
/// fabricated `Response::Expired` — the caller cannot distinguish who
/// shed first, and does not need to. Transport errors past
/// `cfg.reconnect_attempts` surface as the underlying `io::Error`.
pub fn submit_within_deadline(
    conn: &mut Option<Client>,
    addr: &str,
    job: &JobSpec,
    budget: Duration,
    cfg: &ClientConfig,
) -> io::Result<Response> {
    let deadline = std::time::Instant::now() + budget;
    let salt = job.content_key();
    let mut attempt = 0u32;
    let expired = || {
        Ok(Response::Expired {
            error: "deadline expired client-side: budget exhausted across retries".to_string(),
        })
    };
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return expired();
        }
        if conn.is_none() {
            let mut connect_cfg = cfg.clone();
            connect_cfg.connect_timeout = cfg.connect_timeout.min(remaining);
            match Client::connect_with(addr, &connect_cfg) {
                Ok(c) => {
                    if attempt > 0 {
                        nomad_obs::resilience().serve_reconnects.inc();
                    }
                    *conn = Some(c);
                }
                Err(e) => {
                    attempt += 1;
                    if attempt > cfg.reconnect_attempts {
                        return Err(e);
                    }
                    std::thread::sleep(cfg.backoff(salt, attempt).min(remaining));
                    continue;
                }
            }
        }
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return expired();
        }
        let client = conn.as_mut().expect("connection established above");
        match client.submit_with_deadline(job, remaining) {
            Ok(Response::Overloaded { retry_after_ms }) => {
                let sleep = Duration::from_millis(retry_after_ms.min(MAX_REJECTED_SLEEP_MS));
                if sleep >= deadline.saturating_duration_since(std::time::Instant::now()) {
                    // The advertised backoff alone outlives the budget.
                    return expired();
                }
                std::thread::sleep(sleep);
            }
            Ok(other) => return Ok(other),
            Err(e) => {
                // Transport error mid-request: unknown connection
                // state, drop it and go around the ladder.
                *conn = None;
                attempt += 1;
                if attempt > cfg.reconnect_attempts {
                    return Err(e);
                }
                std::thread::sleep(cfg.backoff(salt, attempt).min(remaining));
            }
        }
    }
}

/// Drop-in replacement for [`nomad_sim::runner::run_grid`]
/// that submits the grid through a
/// running nomad-serve instance: one connection per client thread,
/// results in input order. Fails on the first job the service reports
/// as failed.
pub fn run_grid_via(addr: &str, cells: Vec<Cell>) -> io::Result<Vec<RunReport>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    run_grid_via_jobs(addr, cells, threads, &CancelToken::new())
}

/// [`run_grid_via`] with an explicit client-connection count and a
/// cancellation token, using the environment-derived [`ClientConfig`].
pub fn run_grid_via_jobs(
    addr: &str,
    cells: Vec<Cell>,
    jobs: usize,
    cancel: &CancelToken,
) -> io::Result<Vec<RunReport>> {
    run_grid_via_jobs_with(addr, cells, jobs, cancel, &ClientConfig::from_env())
}

/// The self-healing grid runner. `jobs` (clamped ≥ 1) bounds how many
/// connections — and therefore in-flight submissions — the client
/// opens; the server's own worker pool still decides how many cells
/// simulate concurrently.
///
/// Recovery ladder, per cell:
///
/// 1. **Transport errors are transient.** A failed connect, send or
///    receive drops the connection, sleeps a capped exponential
///    backoff with deterministic jitter ([`ClientConfig::backoff`]),
///    reconnects and resubmits — safe because jobs are idempotent and
///    content-addressed (a resubmission of finished work is a cache
///    hit). Each re-established connection counts one
///    `resilience.serve_reconnects`.
/// 2. **Unreachable past the budget degrades the grid.** After
///    `cfg.reconnect_attempts` consecutive failures the runner flips a
///    grid-wide *degraded* flag: this cell and every remaining cell
///    run in-process via [`JobSpec::run_local_cancellable`] (each
///    counting one `resilience.local_fallbacks`), so a dead
///    `NOMAD_SERVE_ADDR` costs one backoff budget total — the sweep
///    degrades instead of failing.
/// 3. **A server-side `Failed` gets one local retry.** The server
///    exhausted its own attempt budget; the cell is retried in-process
///    once (panics caught). Only if that also fails does the grid
///    fail: the error latches `cancel`, sibling threads stop
///    submitting, and unsubmitted cells surface as `cancelled` errors.
pub fn run_grid_via_jobs_with(
    addr: &str,
    cells: Vec<Cell>,
    jobs: usize,
    cancel: &CancelToken,
    cfg: &ClientConfig,
) -> io::Result<Vec<RunReport>> {
    crate::mirror_faults_to_obs();
    let threads = jobs.max(1).min(cells.len().max(1));
    let work: Vec<(usize, Cell)> = cells.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let results = std::sync::Mutex::new(Vec::new());
    // Set once the server has proven unreachable past the reconnect
    // budget; every thread then skips straight to local execution
    // instead of re-paying the backoff budget per cell.
    let degraded = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut conn: Option<Client> = None;
                loop {
                    let item = queue.lock().expect("work lock").pop();
                    let Some((idx, cell)) = item else { return };
                    if cancel.is_cancelled() {
                        results
                            .lock()
                            .expect("results lock")
                            .push((idx, Err("cancelled before submission".to_string())));
                        continue;
                    }
                    let job = JobSpec::from_cell(&cell);
                    let outcome = run_cell_healing(&mut conn, addr, &job, cancel, cfg, &degraded);
                    if outcome.is_err() {
                        // Fail fast: an unrecoverable cell dooms the
                        // whole grid, so stop feeding the server.
                        cancel.cancel();
                    }
                    results.lock().expect("results lock").push((idx, outcome));
                }
            });
        }
    });
    let mut collected = results.into_inner().expect("threads joined");
    collected.sort_by_key(|(i, _)| *i);
    collected
        .into_iter()
        .map(|(_, r)| r.map_err(io::Error::other))
        .collect()
}

/// Run one cell through the recovery ladder documented on
/// [`run_grid_via_jobs_with`]. `conn` is this thread's reusable
/// connection slot (dropped on transport errors, re-established
/// lazily).
fn run_cell_healing(
    conn: &mut Option<Client>,
    addr: &str,
    job: &JobSpec,
    cancel: &CancelToken,
    cfg: &ClientConfig,
    degraded: &AtomicBool,
) -> Result<RunReport, String> {
    let salt = job.content_key();
    let mut attempt = 0u32;
    while !degraded.load(Ordering::Relaxed) {
        if cancel.is_cancelled() {
            return Err("cancelled during recovery".to_string());
        }
        if conn.is_none() {
            match Client::connect_with(addr, cfg) {
                Ok(c) => {
                    if attempt > 0 {
                        nomad_obs::resilience().serve_reconnects.inc();
                    }
                    *conn = Some(c);
                }
                Err(e) => {
                    attempt += 1;
                    if attempt > cfg.reconnect_attempts {
                        eprintln!(
                            "nomad-serve client: {addr} unreachable after {attempt} attempts \
                             ({e}); degrading to local execution"
                        );
                        degraded.store(true, Ordering::Relaxed);
                        break;
                    }
                    std::thread::sleep(cfg.backoff(salt, attempt));
                    continue;
                }
            }
        }
        let client = conn.as_mut().expect("connection established above");
        match client.submit_retrying(job, 1000) {
            Ok(Response::Report { report, .. }) => return Ok(report),
            Ok(Response::Failed { error, attempts }) => {
                // The server ran out of attempts on this job; give it
                // one in-process try before dooming the grid (counted
                // below as a local fallback).
                eprintln!(
                    "nomad-serve client: job failed server-side after {attempts} attempts \
                     ({error}); retrying locally"
                );
                return run_cell_locally(job, cancel);
            }
            Ok(Response::Overloaded { .. }) => {
                return Err("job rejected past retry budget".to_string())
            }
            Ok(Response::Expired { error }) => {
                // The server shed the job (CoDel queue-delay drop —
                // this runner submits without deadlines); the cell is
                // still needed, so run it here.
                eprintln!("nomad-serve client: job shed server-side ({error}); running locally");
                return run_cell_locally(job, cancel);
            }
            Ok(other) => return Err(format!("unexpected response: {other:?}")),
            Err(e) => {
                // Transport error mid-request: the connection is in an
                // unknown state, so drop it and go around the ladder.
                *conn = None;
                attempt += 1;
                if attempt > cfg.reconnect_attempts {
                    eprintln!(
                        "nomad-serve client: transport to {addr} failed {attempt} times \
                         ({e}); degrading to local execution"
                    );
                    degraded.store(true, Ordering::Relaxed);
                    break;
                }
                std::thread::sleep(cfg.backoff(salt, attempt));
            }
        }
    }
    run_cell_locally(job, cancel)
}

/// Degraded-mode execution: run the job in this process, catching
/// panics so one bad cell reports an error instead of tearing down the
/// sweep thread.
fn run_cell_locally(job: &JobSpec, cancel: &CancelToken) -> Result<RunReport, String> {
    nomad_obs::resilience().local_fallbacks.inc();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job.run_local_cancellable(cancel)
    })) {
        Ok(Some(report)) => Ok(report),
        Ok(None) => Err("cancelled during local fallback".to_string()),
        Err(_) => Err("local fallback panicked".to_string()),
    }
}
