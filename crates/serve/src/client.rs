//! Thin synchronous client for the nomad-serve protocol.

use crate::proto::{self, JobSpec, Request, Response, StatsSnapshot};
use nomad_sim::runner::Cell;
use nomad_sim::RunReport;
use nomad_types::CancelToken;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a nomad-serve instance. Requests on a connection
/// are synchronous; open one client per concurrent job.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        proto::write_frame(&mut self.writer, request)?;
        proto::read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            )
        })
    }

    /// Submit one job (no backpressure retry; see
    /// [`submit_retrying`](Self::submit_retrying)).
    pub fn submit(&mut self, job: &JobSpec) -> io::Result<Response> {
        self.request(&Request::Submit(job.clone()))
    }

    /// Submit, honouring `Rejected { retry_after_ms }` backoff up to
    /// `max_attempts` total tries.
    pub fn submit_retrying(&mut self, job: &JobSpec, max_attempts: u32) -> io::Result<Response> {
        let mut last = None;
        for _ in 0..max_attempts.max(1) {
            match self.submit(job)? {
                Response::Rejected { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                    last = Some(Response::Rejected { retry_after_ms });
                }
                other => return Ok(other),
            }
        }
        Ok(last.expect("at least one attempt"))
    }

    /// Fetch service statistics.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.request(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected {wanted}, got {got:?}"),
    )
}

/// Drop-in replacement for [`nomad_sim::runner::run_grid`]
/// that submits the grid through a
/// running nomad-serve instance: one connection per client thread,
/// results in input order. Fails on the first job the service reports
/// as failed.
pub fn run_grid_via(addr: &str, cells: Vec<Cell>) -> io::Result<Vec<RunReport>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    run_grid_via_jobs(addr, cells, threads, &CancelToken::new())
}

/// [`run_grid_via`] with an explicit client-connection count and a
/// cancellation token. `jobs` (clamped ≥ 1) bounds how many
/// connections — and therefore in-flight submissions — the client
/// opens; the server's own worker pool still decides how many cells
/// simulate concurrently. The first job the service reports as failed
/// (e.g. a serve-side wall-clock timeout) latches `cancel`, so sibling
/// threads stop submitting the rest of a doomed grid; cells never
/// submitted surface as `cancelled` errors in the returned result.
pub fn run_grid_via_jobs(
    addr: &str,
    cells: Vec<Cell>,
    jobs: usize,
    cancel: &CancelToken,
) -> io::Result<Vec<RunReport>> {
    let threads = jobs.max(1).min(cells.len().max(1));
    let work: Vec<(usize, Cell)> = cells.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        let msg = e.to_string();
                        // Without a connection this thread can do
                        // nothing; record the error for every cell it
                        // would have claimed as they come up, and tell
                        // the siblings the grid is doomed.
                        cancel.cancel();
                        loop {
                            let item = queue.lock().expect("work lock").pop();
                            let Some((idx, _)) = item else { return };
                            results
                                .lock()
                                .expect("results lock")
                                .push((idx, Err(format!("connect failed: {msg}"))));
                        }
                    }
                };
                loop {
                    let item = queue.lock().expect("work lock").pop();
                    let Some((idx, cell)) = item else { return };
                    if cancel.is_cancelled() {
                        results
                            .lock()
                            .expect("results lock")
                            .push((idx, Err("cancelled before submission".to_string())));
                        continue;
                    }
                    let job = JobSpec::from_cell(&cell);
                    let outcome = match client.submit_retrying(&job, 1000) {
                        Ok(Response::Report { report, .. }) => Ok(report),
                        Ok(Response::Failed { error, attempts }) => {
                            Err(format!("job failed after {attempts} attempts: {error}"))
                        }
                        Ok(Response::Rejected { .. }) => {
                            Err("job rejected past retry budget".to_string())
                        }
                        Ok(other) => Err(format!("unexpected response: {other:?}")),
                        Err(e) => Err(format!("transport error: {e}")),
                    };
                    if outcome.is_err() {
                        // Fail fast: one lost cell dooms the whole
                        // grid, so stop feeding the server.
                        cancel.cancel();
                    }
                    results.lock().expect("results lock").push((idx, outcome));
                }
            });
        }
    });
    let mut collected = results.into_inner().expect("threads joined");
    collected.sort_by_key(|(i, _)| *i);
    collected
        .into_iter()
        .map(|(_, r)| r.map_err(io::Error::other))
        .collect()
}
