//! Stable content hashing for cache keys.
//!
//! Re-exported from [`nomad_types::hash`] — the serve result cache,
//! the bench journal's grid hash and the fleet router's hash ring all
//! key off the *same* FNV-1a 64 function, so "the same experiment"
//! means the same digest in every layer. FNV is not cryptographic —
//! the cache stores the canonical string alongside the key and
//! verifies it on every lookup, so a 64-bit collision degrades to a
//! cache bypass, never to a wrong result.

pub use nomad_types::hash::{fnv1a, FNV_OFFSET, FNV_PRIME};

#[cfg(test)]
mod tests {
    use super::*;

    /// The serve cache's keys are nomad-types' digests, bit for bit
    /// (spill files on disk are named by them).
    #[test]
    fn reexport_is_the_workspace_hash() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(FNV_PRIME, 0x0000_0100_0000_01b3);
    }
}
