//! Stable content hashing for cache keys.
//!
//! FNV-1a over the canonical JSON encoding of a job. FNV is not
//! cryptographic — the cache stores the canonical string alongside the
//! key and verifies it on every lookup, so a 64-bit collision degrades
//! to a cache bypass, never to a wrong result.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for the standard FNV-1a 64 test strings.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn sensitive_to_every_byte() {
        assert_ne!(fnv1a(b"job-1"), fnv1a(b"job-2"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
