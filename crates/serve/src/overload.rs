//! Overload-protection policy: admission estimates, deadline checks,
//! the CoDel-style queue-delay rule, and the retry-after curve.
//!
//! Everything here is a **pure function of integers** — no clocks, no
//! atomics, no I/O — so the exact decision logic the live server runs
//! is also what the deterministic load generator in `nomad-bench`
//! replays under virtual time. The server's three checkpoints
//! (admission in `server.rs`, dequeue in `worker.rs`, pre-execute in
//! `worker.rs`) all call into this module; the byte-identical
//! `results/loadgen.json` artifact is the proof the policy itself is
//! deterministic.
//!
//! The model follows the paper's theme one layer up: NOMAD removes
//! the blocking tag-check from the DRAM-cache critical path; the serve
//! tier removes blocking admission from the request path. Work that
//! cannot meet its deadline is shed *early* — at admission if the
//! estimated queue wait already exceeds the budget, at dequeue if the
//! budget died in the queue, and immediately before execution as a
//! last line — so a burst degrades goodput gracefully instead of
//! executing answers nobody is still waiting for.

use std::time::Duration;

/// Retry-after hint when the queue is empty (milliseconds).
pub const BASE_RETRY_AFTER_MS: u64 = 25;

/// Retry-after hint when the queue is full (milliseconds).
pub const MAX_RETRY_AFTER_MS: u64 = 1_000;

/// Tunable overload-protection knobs, carried in
/// [`ServerConfig`](crate::server::ServerConfig).
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// CoDel-style queue-delay target. When a dequeued job's sojourn
    /// exceeds this *and* a backlog remains behind it, the job is shed
    /// (`overload.codel_shed`) so the queue drains toward the target.
    /// Zero disables the controller (the default: batch sweeps care
    /// about completion, not tail latency).
    pub codel_target: Duration,
    /// Master switch for shedding. With shedding off, deadline-expired
    /// jobs are *executed anyway* and counted in
    /// `overload.expired_executions` — the counter the load generator
    /// asserts is zero when shedding is on.
    pub shed: bool,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            codel_target: Duration::ZERO,
            shed: true,
        }
    }
}

impl OverloadConfig {
    /// Read the knobs from the environment:
    /// `NOMAD_SERVE_CODEL_TARGET_MS` (default 0 = disabled) and
    /// `NOMAD_SERVE_SHED` (default on).
    pub fn from_env() -> Self {
        OverloadConfig {
            codel_target: nomad_types::env::ms_or("NOMAD_SERVE_CODEL_TARGET_MS", 0),
            shed: nomad_types::env::bool_or("NOMAD_SERVE_SHED", true),
        }
    }
}

/// The retry-after hint for an [`Overloaded`](crate::proto::Response)
/// frame: [`BASE_RETRY_AFTER_MS`] with an empty queue, scaling
/// linearly to [`MAX_RETRY_AFTER_MS`] at capacity. Backing off harder
/// as the queue fills spreads the retry herd out instead of
/// synchronizing it.
pub fn retry_after_ms(depth: usize, capacity: usize) -> u64 {
    let cap = capacity.max(1) as u64;
    let depth = depth.min(capacity) as u64;
    BASE_RETRY_AFTER_MS + (MAX_RETRY_AFTER_MS - BASE_RETRY_AFTER_MS) * depth / cap
}

/// Estimated queue wait for a newly admitted job, in milliseconds:
/// `depth` jobs ahead, drained by `workers` threads, each taking the
/// EWMA service time. `u64::MAX` with zero workers — nothing will
/// ever drain, so any finite deadline is hopeless.
pub fn estimated_wait_ms(depth: usize, workers: usize, service_ewma_ms: u64) -> u64 {
    if workers == 0 {
        return u64::MAX;
    }
    (depth as u64).saturating_mul(service_ewma_ms) / workers as u64
}

/// Admission verdict: shed now when the budget is already zero or the
/// estimated wait alone would consume it. Erring optimistic is fine —
/// the dequeue and pre-execute checks catch what admission lets
/// through.
pub fn admit_would_expire(deadline_ms: u64, estimated_wait_ms: u64) -> bool {
    deadline_ms == 0 || estimated_wait_ms > deadline_ms
}

/// CoDel-style dequeue rule: shed the job whose queue sojourn exceeds
/// `target_ms` **only while a backlog remains** (`backlog` = jobs
/// still queued behind it). The last waiting job is always executed —
/// shedding it would trade a late answer for no answer without
/// protecting anyone behind it. `target_ms == 0` disables the rule.
pub fn codel_should_shed(sojourn_ms: u64, target_ms: u64, backlog: usize) -> bool {
    target_ms > 0 && backlog > 0 && sojourn_ms > target_ms
}

/// One exponentially-weighted moving average step over millisecond
/// samples (alpha = 1/8, integer arithmetic). The first sample seeds
/// the average directly so early estimates are not dragged toward
/// zero.
pub fn ewma_step(current: u64, sample_ms: u64) -> u64 {
    if current == 0 {
        sample_ms
    } else {
        (current * 7 + sample_ms) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_scales_with_queue_fill() {
        assert_eq!(retry_after_ms(0, 32), BASE_RETRY_AFTER_MS);
        assert_eq!(retry_after_ms(32, 32), MAX_RETRY_AFTER_MS);
        assert_eq!(retry_after_ms(64, 32), MAX_RETRY_AFTER_MS);
        let half = retry_after_ms(16, 32);
        assert!(half > BASE_RETRY_AFTER_MS && half < MAX_RETRY_AFTER_MS);
        // Degenerate capacity never divides by zero.
        assert_eq!(retry_after_ms(0, 0), BASE_RETRY_AFTER_MS);
    }

    #[test]
    fn estimated_wait_is_depth_times_service_over_workers() {
        assert_eq!(estimated_wait_ms(8, 2, 40), 160);
        assert_eq!(estimated_wait_ms(0, 2, 40), 0);
        assert_eq!(estimated_wait_ms(8, 0, 40), u64::MAX);
        assert_eq!(estimated_wait_ms(usize::MAX, 1, u64::MAX), u64::MAX);
    }

    #[test]
    fn admission_sheds_zero_and_hopeless_budgets() {
        assert!(admit_would_expire(0, 0), "zero budget is already expired");
        assert!(admit_would_expire(100, 101));
        assert!(!admit_would_expire(100, 100), "exact fit is admitted");
        assert!(!admit_would_expire(100, 0));
    }

    #[test]
    fn codel_never_sheds_the_last_job_and_honors_disable() {
        assert!(codel_should_shed(250, 200, 3));
        assert!(!codel_should_shed(250, 200, 0), "last job always runs");
        assert!(!codel_should_shed(150, 200, 3), "under target");
        assert!(!codel_should_shed(9_999, 0, 3), "target 0 disables");
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        assert_eq!(ewma_step(0, 40), 40);
        let next = ewma_step(40, 120);
        assert!(next > 40 && next < 120);
        assert_eq!(ewma_step(8, 8), 8, "stable at the fixed point");
    }
}
