//! nomad-serve: a sharded simulation service over the NOMAD
//! experiment runner.
//!
//! Long parameter sweeps re-run many identical (config × scheme ×
//! workload × seed) cells — across figures, across sessions, across
//! collaborators. This crate turns the in-process
//! [`runner`](nomad_sim::runner) into a small network service that
//! runs each distinct experiment at most once:
//!
//! * **Protocol** ([`proto`]) — line-delimited JSON over TCP; a
//!   connection is a lane of synchronous request/response pairs.
//! * **Job queue** ([`queue`]) — bounded MPMC with backpressure:
//!   submissions beyond capacity are rejected with a retry-after hint
//!   instead of queueing unboundedly.
//! * **Worker pool** ([`worker`]) — shards jobs across OS threads;
//!   every attempt runs under `catch_unwind` with a wall-clock
//!   timeout, and panics are retried up to a budget so one poisoned
//!   job cannot take the service down.
//! * **Result cache** ([`cache`]) — content-addressed by the FNV-1a 64
//!   hash of the job's canonical JSON, with single-flight coalescing:
//!   identical concurrent submissions ride on one execution. The
//!   `Probe`/`Fetch` protocol frames expose it read-only over the
//!   wire, so a fleet router (`nomad-fleet`) can treat every node's
//!   cache as one shared tier — any node can answer any previously
//!   computed cell regardless of ring placement.
//! * **Overload protection** ([`overload`]) — per-job deadline
//!   budgets carried on the wire (`Request::SubmitDeadline`), an
//!   admission controller that sheds work whose estimated wait exceeds
//!   its budget, a CoDel-style queue-delay shedder, and dynamic
//!   `Overloaded { retry_after_ms }` backpressure hints scaled by
//!   queue depth. Expired work is shed at admission, dequeue, and
//!   pre-execute; with shedding disabled the `overload.expired_executions`
//!   counter witnesses every deadline violation that ran anyway.
//! * **Stats** ([`stats`], `Request::Stats`) — queue depth, cache hit
//!   rate, per-worker utilization, p50/p99 job latency. Backed by a
//!   [`nomad_obs::Registry`], so responses carry the same `serve.*`
//!   metric names the snapshot-JSON exporter uses (documented in
//!   `METRICS.md`), and executed jobs leave Chrome-trace spans
//!   ([`ServerHandle::trace_json`]).
//!
//! Simulations are deterministic, so cached reports never go stale and
//! a cache hit is byte-identical to re-running the job.
//!
//! # Quick start
//!
//! ```no_run
//! use nomad_serve::{serve, Client, JobSpec, ServerConfig};
//!
//! let handle = serve(ServerConfig::default()).expect("bind");
//! let mut client = Client::connect(handle.local_addr()).expect("connect");
//! # let job: JobSpec = todo!();
//! let response = client.submit(&job).expect("submit");
//! ```

pub mod cache;
pub mod client;
pub mod hash;
pub mod overload;
pub mod proto;
pub mod queue;
pub mod server;
pub mod stats;
pub mod worker;

pub use cache::{JobFailure, ResultCache};
pub use client::{
    run_grid_via, run_grid_via_jobs, run_grid_via_jobs_with, submit_within_deadline, Client,
    ClientConfig,
};
pub use overload::OverloadConfig;
pub use proto::{JobSpec, MetricRow, Request, Response, StatsSnapshot};
pub use server::{serve, ServerConfig, ServerHandle};
pub use stats::ServiceStats;

/// Mirror every fault the `NOMAD_FAULTS` plan injects into the
/// process-wide `resilience.faults_injected` counter. Idempotent;
/// called by [`serve`] and the grid runner so both sides of the wire
/// count their own injections. (nomad-faults itself is
/// zero-dependency, so the mirroring lives here.)
pub fn mirror_faults_to_obs() {
    nomad_faults::set_observer(|_site, _fault| nomad_obs::resilience().faults_injected.inc());
}
