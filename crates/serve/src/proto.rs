//! Wire protocol: line-delimited JSON over TCP.
//!
//! Every request and response is one compact JSON document followed by
//! `\n`. A connection carries a synchronous request/response stream —
//! the server answers requests in order, and a `Submit` holds the
//! connection until its job resolves. Clients wanting parallelism open
//! one connection per in-flight job (see
//! [`run_grid_via`](crate::client::run_grid_via)).
//!
//! # Cache key
//!
//! A job's identity is the FNV-1a 64 hash of its *canonical JSON*: the
//! compact serialization of [`JobSpec`] with fields in declaration
//! order (the derive preserves declaration order, and the vendored
//! `serde_json` prints numbers deterministically). Two jobs are the
//! same experiment iff their `(SystemConfig, SchemeSpec,
//! WorkloadProfile, instructions, warmup, seed)` tuples serialize
//! identically.

use crate::hash::fnv1a;
use nomad_sim::runner::{self, Cell};
use nomad_sim::{RunReport, SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;
use nomad_types::CancelToken;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// One simulation job: the full input tuple of
/// [`runner::run_one`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// System configuration.
    pub cfg: SystemConfig,
    /// Scheme to run.
    pub spec: SchemeSpec,
    /// Workload to run.
    pub profile: WorkloadProfile,
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warm-up instructions per core.
    pub warmup: u64,
    /// RNG seed.
    pub seed: u64,
}

impl JobSpec {
    /// Build a job from a [`run_grid`](runner::run_grid) cell.
    pub fn from_cell(cell: &Cell) -> Self {
        JobSpec {
            cfg: cell.cfg.clone(),
            spec: cell.spec.clone(),
            profile: cell.profile.clone(),
            instructions: cell.instructions,
            warmup: cell.warmup,
            seed: cell.seed,
        }
    }

    /// The canonical (compact, field-declaration-ordered) JSON
    /// encoding this job is cached under.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("JobSpec serializes")
    }

    /// Content-address of this job: FNV-1a 64 of
    /// [`canonical_json`](Self::canonical_json).
    pub fn content_key(&self) -> u64 {
        fnv1a(self.canonical_json().as_bytes())
    }

    /// Run this job in-process (what the service's workers execute).
    pub fn run_local(&self) -> RunReport {
        runner::run_one(
            &self.cfg,
            &self.spec,
            &self.profile,
            self.instructions,
            self.warmup,
            self.seed,
        )
    }

    /// [`run_local`](Self::run_local) with cooperative cancellation:
    /// the simulation polls `cancel` at event boundaries and returns
    /// `None` promptly once it is cancelled (used by the worker pool's
    /// timeout path so an overrunning attempt does not keep burning a
    /// CPU in the background).
    pub fn run_local_cancellable(&self, cancel: &CancelToken) -> Option<RunReport> {
        runner::run_one_cancellable(
            &self.cfg,
            &self.spec,
            &self.profile,
            self.instructions,
            self.warmup,
            self.seed,
            cancel,
        )
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Request {
    /// Run (or fetch the cached result of) one job.
    Submit(JobSpec),
    /// [`Submit`](Request::Submit) with a deadline budget. The budget
    /// is *relative* (milliseconds from the server receiving the
    /// frame), so it survives clock skew between client and server.
    /// The server sheds the job — [`Response::Expired`] — instead of
    /// executing it once the budget cannot be met: at admission (the
    /// estimated queue wait already exceeds it), at dequeue, and
    /// immediately before each execution attempt. Cache hits are
    /// always served: they cost no queue time.
    ///
    /// The deadline is deliberately **not** part of [`JobSpec`]: the
    /// same experiment submitted with different budgets must keep one
    /// content key, or caching and fleet placement would fracture.
    SubmitDeadline {
        /// The job itself (content-addressed exactly like `Submit`).
        job: JobSpec,
        /// Deadline budget in milliseconds from frame receipt. Zero
        /// means "already expired" and is shed at admission.
        deadline_ms: u64,
    },
    /// Does this node's cache hold a completed result for the job
    /// with this `(key, canonical)` identity? A pure read: never
    /// executes, never coalesces, never perturbs the hit/miss
    /// counters. The fleet router uses this to find which node can
    /// answer a cell before asking any node to compute it.
    Probe {
        /// FNV-1a 64 of the canonical JSON ([`JobSpec::content_key`]).
        key: u64,
        /// The canonical JSON itself, verified against the cached
        /// entry so a 64-bit collision reads as a miss, never as a
        /// wrong report.
        canonical: String,
    },
    /// Return the cached report for this `(key, canonical)` identity
    /// without executing anything: `Report { cached: true, .. }` on a
    /// hit, [`Response::NotCached`] otherwise (in-flight jobs also
    /// answer `NotCached` — a fetch never blocks).
    Fetch {
        /// FNV-1a 64 of the canonical JSON.
        key: u64,
        /// The canonical JSON, verified like in `Probe`.
        canonical: String,
    },
    /// Report service statistics.
    Stats,
    /// Liveness check.
    Ping,
    /// Ask the service to shut down gracefully.
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Response {
    /// The job's result. `cached` is true when the report was served
    /// without running a new simulation for this request (a cache hit,
    /// or coalescing onto an identical in-flight job).
    Report {
        /// Served from the result cache (or coalesced).
        cached: bool,
        /// The simulation report.
        report: RunReport,
    },
    /// The server refused the submission for load: the queue was full,
    /// or an injected `serve.admit` fault forced a rejection. Nothing
    /// was executed; the job is safe to retry after the hint.
    Overloaded {
        /// Suggested client backoff in milliseconds. Scales with how
        /// full the queue is, so a deeply overloaded server pushes
        /// retries further out instead of inviting a thundering herd.
        retry_after_ms: u64,
    },
    /// The job was shed instead of executed: its deadline budget
    /// expired (at admission, in the queue, or just before execution),
    /// or the CoDel queue-delay controller dropped it to protect the
    /// queue's sojourn target. Distinct from [`Response::Failed`] —
    /// nothing ran, and retrying with a larger budget may succeed.
    Expired {
        /// Human-readable description of where the job was shed.
        error: String,
    },
    /// The job ran and failed (panicked past its retry budget, timed
    /// out, or the server shut down while it was queued).
    Failed {
        /// Human-readable failure description.
        error: String,
        /// Execution attempts consumed (0 if the job never started).
        attempts: u32,
    },
    /// Answer to a [`Request::Probe`].
    ProbeResult {
        /// Whether a completed, identity-verified result is cached.
        hit: bool,
    },
    /// Answer to a [`Request::Fetch`] whose identity is not in the
    /// cache (or still in flight): the caller should compute the job
    /// elsewhere — a fetch never triggers execution.
    NotCached,
    /// Service statistics.
    Stats(StatsSnapshot),
    /// Liveness reply.
    Pong,
    /// Acknowledgement of a [`Request::Shutdown`].
    ShuttingDown,
    /// The request could not be understood.
    Error(String),
}

/// One `(name, value)` row of a [`StatsSnapshot`]'s registry dump.
/// A struct rather than a tuple so the vendored serde can derive it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRow {
    /// Registry metric name (e.g. `serve.jobs.submitted`); histogram
    /// rows carry derived `.count`/`.p50`/`.p99` suffixes.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// A point-in-time view of the service counters, as returned by
/// [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Queue capacity (submissions beyond this are rejected).
    pub queue_capacity: usize,
    /// Age in milliseconds of the oldest job still waiting in the
    /// queue (0 when the queue is empty) — the live sojourn the CoDel
    /// controller compares against its target.
    pub queue_oldest_ms: u64,
    /// Worker threads.
    pub workers: usize,
    /// Total `Submit` requests received.
    pub jobs_submitted: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Jobs that failed (panic past budget, timeout, shutdown).
    pub jobs_failed: u64,
    /// Submissions rejected for backpressure.
    pub jobs_rejected: u64,
    /// Submissions served from the cache or coalesced onto an
    /// in-flight identical job.
    pub cache_hits: u64,
    /// Submissions that required running a new simulation.
    pub cache_misses: u64,
    /// Completed reports currently cached.
    pub cache_entries: usize,
    /// Fraction of wall-clock time each worker spent executing jobs,
    /// since the server started.
    pub worker_utilization: Vec<f64>,
    /// Median submit-to-completion latency (ms, log-bucket lower
    /// bound).
    pub latency_p50_ms: u64,
    /// 99th-percentile submit-to-completion latency (ms, log-bucket
    /// lower bound).
    pub latency_p99_ms: u64,
    /// Full name-sorted dump of the service's metric registry — the
    /// same names (`serve.*`) the simulator's snapshot-JSON exporter
    /// uses, documented in `METRICS.md`. The convenience fields above
    /// are projections of these rows.
    pub counters: Vec<MetricRow>,
}

impl StatsSnapshot {
    /// Look up one registry row by metric name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.value)
    }
}

/// Write one message as a JSON line and flush it.
///
/// Fault site `serve.proto.write_frame`: an injected `Torn` fault
/// writes only the first half of the line (simulating a connection cut
/// mid-frame — the peer sees an unterminated line) and then fails;
/// any other injected fault fails before writing a byte.
pub fn write_frame<T: Serialize, W: Write>(w: &mut W, msg: &T) -> io::Result<()> {
    let line = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if let Some(fault) = nomad_faults::inject("serve.proto.write_frame") {
        if matches!(fault, nomad_faults::Fault::Torn) {
            let bytes = line.as_bytes();
            w.write_all(&bytes[..bytes.len() / 2])?;
            w.flush()?;
        }
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            format!(
                "nomad-faults: injected {} at serve.proto.write_frame",
                fault.label()
            ),
        ));
    }
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Read one JSON-line message. Returns `Ok(None)` on a clean EOF;
/// malformed JSON maps to [`io::ErrorKind::InvalidData`].
///
/// Fault site `serve.proto.read_frame`: any injected fault surfaces as
/// a `ConnectionReset` error before the read (as if the peer vanished).
pub fn read_frame<T: Deserialize, R: BufRead>(r: &mut R) -> io::Result<Option<T>> {
    nomad_faults::fail_point("serve.proto.read_frame")?;
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    serde_json::from_str(line.trim_end())
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_job() -> JobSpec {
        JobSpec {
            cfg: SystemConfig::scaled(1),
            spec: SchemeSpec::Nomad,
            profile: WorkloadProfile::tc(),
            instructions: 5_000,
            warmup: 500,
            seed: 7,
        }
    }

    #[test]
    fn requests_round_trip_the_wire() {
        let reqs = vec![
            Request::Submit(demo_job()),
            Request::SubmitDeadline {
                job: demo_job(),
                deadline_ms: 400,
            },
            Request::Probe {
                key: demo_job().content_key(),
                canonical: demo_job().canonical_json(),
            },
            Request::Fetch {
                key: demo_job().content_key(),
                canonical: demo_job().canonical_json(),
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).expect("write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for want in &reqs {
            let got: Request = read_frame(&mut cursor).expect("read").expect("present");
            assert_eq!(&got, want);
        }
        assert!(read_frame::<Request, _>(&mut cursor)
            .expect("eof")
            .is_none());
    }

    #[test]
    fn responses_round_trip_the_wire() {
        let resps = vec![
            Response::Overloaded { retry_after_ms: 25 },
            Response::Expired {
                error: "deadline expired after 12 ms in queue".into(),
            },
            Response::Failed {
                error: "panicked: boom".into(),
                attempts: 3,
            },
            Response::ProbeResult { hit: true },
            Response::ProbeResult { hit: false },
            Response::NotCached,
            Response::Pong,
            Response::ShuttingDown,
            Response::Error("bad request".into()),
        ];
        let mut buf = Vec::new();
        for r in &resps {
            write_frame(&mut buf, r).expect("write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for want in &resps {
            let got: Response = read_frame(&mut cursor).expect("read").expect("present");
            // `RunReport` (inside `Response::Report`) has no
            // `PartialEq`; canonical JSON equality is the protocol's
            // own notion of identity anyway.
            assert_eq!(
                serde_json::to_string(&got).expect("json"),
                serde_json::to_string(want).expect("json"),
            );
        }
    }

    #[test]
    fn content_key_is_stable_and_input_sensitive() {
        let a = demo_job();
        let b = demo_job();
        assert_eq!(a.content_key(), b.content_key());
        assert_eq!(a.canonical_json(), b.canonical_json());

        let mut c = demo_job();
        c.seed += 1;
        assert_ne!(a.content_key(), c.content_key());
        let mut d = demo_job();
        d.spec = SchemeSpec::Baseline;
        assert_ne!(a.content_key(), d.content_key());
    }

    #[test]
    fn malformed_frame_is_invalid_data_not_panic() {
        let mut cursor = std::io::Cursor::new(b"{not json}\n".to_vec());
        let err = read_frame::<Request, _>(&mut cursor).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
