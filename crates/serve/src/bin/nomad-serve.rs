//! The nomad-serve daemon.
//!
//! ```text
//! nomad-serve [--addr HOST:PORT] [--port N] [--workers N] [--queue N]
//!             [--timeout-ms N] [--retries N]
//!             [--cache-dir PATH | --no-cache-dir]
//! ```
//!
//! Binds (default `127.0.0.1:7979`), prints the bound address, and
//! serves until a client sends `"Shutdown"`. `--port N` overrides just
//! the port of the bind address; `--port 0` asks the OS for an
//! ephemeral port. Whatever was bound, the first stdout line is
//! machine-parseable —
//!
//! ```text
//! NOMAD_SERVE_ADDR=127.0.0.1:41231
//! ```
//!
//! — so scripts (and the fleet harnesses) can launch a server on
//! `--port 0` and scrape the address they should export. Completed
//! results are spilled to `results/cache/` by default (override with
//! `--cache-dir`, disable with `--no-cache-dir`) so a restarted
//! daemon keeps serving hits for experiments it already ran.
//!
//! With observability enabled (`NOMAD_OBS=1`), a Chrome trace of every
//! executed job is written to `results/serve.trace.json` on shutdown.

use nomad_serve::{serve, OverloadConfig, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7979".to_string(),
        cache_dir: Some(PathBuf::from("results/cache")),
        overload: OverloadConfig::from_env(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--port" => {
                let port: u16 = parse(&value("--port"), "--port");
                let host = cfg.addr.rsplit_once(':').map_or("127.0.0.1", |(h, _)| h);
                cfg.addr = format!("{host}:{port}");
            }
            "--workers" => cfg.workers = parse(&value("--workers"), "--workers"),
            "--queue" => cfg.queue_capacity = parse(&value("--queue"), "--queue"),
            "--timeout-ms" => {
                cfg.job_timeout =
                    Duration::from_millis(parse(&value("--timeout-ms"), "--timeout-ms"))
            }
            "--retries" => cfg.retry_budget = parse(&value("--retries"), "--retries"),
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--no-cache-dir" => cfg.cache_dir = None,
            "--help" | "-h" => {
                println!(
                    "usage: nomad-serve [--addr HOST:PORT] [--port N] [--workers N] [--queue N] \
                     [--timeout-ms N] [--retries N] [--cache-dir PATH | --no-cache-dir]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    let workers = cfg.workers;
    let handle = match serve(cfg) {
        Ok(h) => h,
        Err(e) => die(&format!("bind failed: {e}")),
    };
    // Machine-parseable first: scripts launching `--port 0` scrape
    // this line to learn the ephemeral address.
    println!("NOMAD_SERVE_ADDR={}", handle.local_addr());
    eprintln!(
        "nomad-serve listening on {} ({} workers)",
        handle.local_addr(),
        workers
    );
    let stats = handle.stats();
    handle.join();
    if nomad_obs::enabled() {
        let path = "results/serve.trace.json";
        let _ = std::fs::create_dir_all("results");
        match std::fs::write(path, stats.trace_json()) {
            Ok(()) => println!("nomad-serve: job trace written to {path}"),
            Err(e) => eprintln!("nomad-serve: failed to write {path}: {e}"),
        }
    }
    println!("nomad-serve: shut down");
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("invalid value `{s}` for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("nomad-serve: {msg}");
    std::process::exit(2);
}
