//! Content-addressed result cache with single-flight coalescing.
//!
//! Results are keyed by the FNV-1a 64 hash of the job's canonical JSON
//! (see [`crate::proto::JobSpec::content_key`]). Because 64-bit
//! hashes can collide, every slot stores the canonical string and
//! verifies it on lookup: a collision degrades to
//! [`Claim::RunUncached`] (run the job, skip the cache), never to a
//! wrong report.
//!
//! The first claimant of a key becomes its *runner*
//! ([`Claim::Run`]); identical jobs claimed while the first is still
//! executing coalesce onto the same [`Flight`] ([`Claim::Wait`]) and
//! are counted as cache hits — they are served without a new
//! simulation. Successful results are cached forever (simulations are
//! deterministic, so entries never go stale); failures are *not*
//! cached — the next identical submission retries from scratch.
//!
//! # Persistence
//!
//! With [`ResultCache::with_dir`], every `Ready` entry is spilled to
//! `<dir>/<key:016x>.json` as a `{canonical, report}` document and
//! reloaded on the next startup, so a restarted server keeps serving
//! hits for experiments it has already run. Spills are best-effort
//! (I/O failures are ignored) and happen outside the map lock; on
//! reload, corrupt or partially written files are silently skipped —
//! a bad spill degrades to a cache miss, never to a crash or a wrong
//! report. Reloaded entries are re-keyed by hashing their canonical
//! string, so a hit still verifies the full job identity.

use nomad_sim::RunReport;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Why a job did not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub struct JobFailure {
    /// Human-readable description (panic message, timeout, shutdown).
    pub error: String,
    /// Execution attempts consumed (0 if the job never started).
    pub attempts: u32,
}

/// The outcome of one job execution.
pub type JobResult = Result<Arc<RunReport>, JobFailure>;

/// Error prefix marking a deadline-expired shed (see
/// [`JobFailure::expired`]).
const EXPIRED_PREFIX: &str = "deadline expired";

/// Error prefix marking a CoDel queue-delay shed (see
/// [`JobFailure::codel_shed`]).
const CODEL_PREFIX: &str = "shed by queue-delay controller";

impl JobFailure {
    /// A deadline-expired shed: the job was dropped without running
    /// because its budget could not be (or was not) met. `where_` names
    /// the checkpoint (admission, queue, pre-execute) for the error
    /// text.
    pub fn expired(where_: &str, waited_ms: u64) -> Self {
        JobFailure {
            error: format!("{EXPIRED_PREFIX} at {where_} after {waited_ms} ms"),
            attempts: 0,
        }
    }

    /// An admission-time shed: the estimated queue wait alone already
    /// exceeds the job's deadline budget, so enqueueing it would only
    /// manufacture expired work.
    pub fn admit_expired(estimated_wait_ms: u64, deadline_ms: u64) -> Self {
        JobFailure {
            error: format!(
                "{EXPIRED_PREFIX} at admission: estimated {estimated_wait_ms} ms wait \
                 exceeds the {deadline_ms} ms budget"
            ),
            attempts: 0,
        }
    }

    /// A CoDel shed: sojourn time exceeded the queue-delay target while
    /// a backlog remained.
    pub fn codel_shed(sojourn_ms: u64, target_ms: u64) -> Self {
        JobFailure {
            error: format!("{CODEL_PREFIX}: {sojourn_ms} ms sojourn over {target_ms} ms target"),
            attempts: 0,
        }
    }

    /// Whether this failure is a shed (deadline-expired or CoDel) —
    /// i.e. the job never ran and a retry with more budget (or less
    /// load) may succeed. The server maps shed failures to
    /// [`Response::Expired`](crate::proto::Response::Expired) instead
    /// of `Failed`.
    pub fn is_shed(&self) -> bool {
        self.error.starts_with(EXPIRED_PREFIX) || self.error.starts_with(CODEL_PREFIX)
    }
}

/// A rendezvous between one running job and any coalesced waiters.
pub struct Flight {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

impl Flight {
    /// A fresh, unresolved flight.
    pub fn new() -> Arc<Self> {
        Arc::new(Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// Publish the result and wake all waiters. Idempotent: the first
    /// completion wins.
    pub fn complete(&self, result: JobResult) {
        let mut slot = self.slot.lock().expect("flight lock");
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
        }
    }

    /// Block until the result is published.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.slot.lock().expect("flight lock");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).expect("flight lock");
        }
    }

    /// [`wait`](Self::wait) with an optional deadline: returns `None`
    /// once `deadline` passes with no result published. The flight
    /// itself stays valid — a coalesced waiter giving up does not
    /// disturb the runner or other waiters. `deadline: None` waits
    /// forever, exactly like [`wait`](Self::wait).
    pub fn wait_until(&self, deadline: Option<std::time::Instant>) -> Option<JobResult> {
        let Some(deadline) = deadline else {
            return Some(self.wait());
        };
        let mut slot = self.slot.lock().expect("flight lock");
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timeout) = self
                .done
                .wait_timeout(slot, deadline - now)
                .expect("flight lock");
            slot = guard;
            if timeout.timed_out() && slot.is_none() {
                return None;
            }
        }
    }
}

enum Slot {
    /// A completed result.
    Ready {
        canonical: String,
        report: Arc<RunReport>,
    },
    /// A job currently executing (or queued).
    InFlight {
        canonical: String,
        flight: Arc<Flight>,
    },
}

/// What a submission should do, as decided by [`ResultCache::claim`].
pub enum Claim {
    /// Cached result; respond immediately.
    Hit(Arc<RunReport>),
    /// An identical job is already in flight; wait for it.
    Wait(Arc<Flight>),
    /// This submission is the runner: execute, then
    /// [`complete`](ResultCache::complete) the key.
    Run(Arc<Flight>),
    /// Key collision with a *different* job (canonical strings
    /// differ): execute without touching the cache.
    RunUncached,
}

/// On-disk form of one completed cache entry.
#[derive(Serialize, Deserialize)]
struct PersistedEntry {
    canonical: String,
    report: RunReport,
}

/// The shared result cache.
#[derive(Default)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Spill directory for completed entries; `None` = memory-only.
    dir: Option<PathBuf>,
}

impl ResultCache {
    /// An empty, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that spills completed entries to `dir` (see the
    /// module-level *Persistence* section) and starts out warmed with
    /// whatever valid entries `dir` already holds. `None` behaves like
    /// [`new`](Self::new).
    pub fn with_dir(dir: Option<PathBuf>) -> Self {
        let cache = ResultCache {
            dir,
            ..Self::default()
        };
        cache.reload();
        cache
    }

    /// Load every parseable spill file from the directory. Corrupt,
    /// partial, or foreign files are skipped, not fatal.
    fn reload(&self) {
        let Some(dir) = &self.dir else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut map = self.map.lock().expect("cache lock");
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            // Fault site `serve.cache.reload`: any injected fault
            // skips this file, exactly like an unreadable spill.
            if nomad_faults::inject("serve.cache.reload").is_some() {
                continue;
            }
            let Ok(bytes) = std::fs::read_to_string(&path) else {
                continue;
            };
            let Ok(persisted) = serde_json::from_str::<PersistedEntry>(&bytes) else {
                continue;
            };
            // Re-key from the canonical string (not the file name) so
            // a renamed or mislabeled spill still lands under the key
            // `claim` will actually probe.
            let key = crate::hash::fnv1a(persisted.canonical.as_bytes());
            map.entry(key).or_insert(Slot::Ready {
                canonical: persisted.canonical,
                report: Arc::new(persisted.report),
            });
        }
    }

    /// Best-effort spill of one completed entry (called outside the
    /// map lock). Written to a temp file and renamed so readers never
    /// observe a partial document under the final name.
    fn spill(&self, key: u64, canonical: &str, report: &RunReport) {
        let Some(dir) = &self.dir else { return };
        let entry = PersistedEntry {
            canonical: canonical.to_string(),
            report: report.clone(),
        };
        let Ok(json) = serde_json::to_string(&entry) else {
            return;
        };
        // Fault site `serve.cache.spill`: `Torn` simulates a crash
        // mid-write by leaving half a document *at the final path*
        // (deliberately defeating the tmp+rename discipline, so reload
        // tolerance gets exercised); `Io`/`Panic` drop the spill.
        match nomad_faults::inject("serve.cache.spill") {
            Some(nomad_faults::Fault::Torn) => {
                let _ = std::fs::write(
                    dir.join(format!("{key:016x}.json")),
                    &json.as_bytes()[..json.len() / 2],
                );
                return;
            }
            Some(_) => return,
            None => {}
        }
        let tmp = dir.join(format!("{key:016x}.json.tmp"));
        if std::fs::write(&tmp, json).is_ok() {
            let _ = std::fs::rename(&tmp, dir.join(format!("{key:016x}.json")));
        }
    }

    /// Decide how to serve a job with this `(key, canonical)`
    /// identity, registering an in-flight slot when this submission
    /// becomes the runner.
    pub fn claim(&self, key: u64, canonical: &str) -> Claim {
        let mut map = self.map.lock().expect("cache lock");
        match map.get(&key) {
            Some(Slot::Ready {
                canonical: c,
                report,
            }) if c == canonical => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Claim::Hit(Arc::clone(report))
            }
            Some(Slot::InFlight {
                canonical: c,
                flight,
            }) if c == canonical => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Claim::Wait(Arc::clone(flight))
            }
            Some(_) => {
                // 64-bit collision between distinct jobs.
                self.misses.fetch_add(1, Ordering::Relaxed);
                Claim::RunUncached
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let flight = Flight::new();
                map.insert(
                    key,
                    Slot::InFlight {
                        canonical: canonical.to_string(),
                        flight: Arc::clone(&flight),
                    },
                );
                Claim::Run(flight)
            }
        }
    }

    /// A pure read for the `Probe`/`Fetch` protocol frames: the
    /// completed report cached under this `(key, canonical)` identity,
    /// or `None` (in-flight jobs are `None` too — a probe never
    /// blocks). Unlike [`claim`](Self::claim) this touches neither
    /// the hit/miss counters nor the map shape, so fleet probes do not
    /// skew a node's submission statistics.
    pub fn lookup(&self, key: u64, canonical: &str) -> Option<Arc<RunReport>> {
        let map = self.map.lock().expect("cache lock");
        match map.get(&key) {
            Some(Slot::Ready {
                canonical: c,
                report,
            }) if c == canonical => Some(Arc::clone(report)),
            _ => None,
        }
    }

    /// Resolve the in-flight slot for `key`: successes become cached
    /// entries, failures are forgotten (retried on next submission).
    /// Waiters are woken either way.
    pub fn complete(&self, key: u64, result: JobResult) {
        let mut map = self.map.lock().expect("cache lock");
        let Some(Slot::InFlight { canonical, flight }) = map.remove(&key) else {
            return;
        };
        let spilled = if let Ok(report) = &result {
            map.insert(
                key,
                Slot::Ready {
                    canonical: canonical.clone(),
                    report: Arc::clone(report),
                },
            );
            Some((canonical, Arc::clone(report)))
        } else {
            None
        };
        drop(map);
        // Wake waiters before touching the disk: persistence must not
        // add latency to coalesced submissions.
        flight.complete(result);
        if let Some((canonical, report)) = spilled {
            self.spill(key, &canonical, &report);
        }
    }

    /// Submissions served from cache or coalesced.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Submissions that required a new simulation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Completed reports currently cached.
    pub fn entries(&self) -> usize {
        let map = self.map.lock().expect("cache lock");
        map.values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Arc<RunReport> {
        use nomad_sim::{runner, SchemeSpec, SystemConfig};
        use nomad_trace::WorkloadProfile;
        let mut cfg = SystemConfig::scaled(1);
        cfg.dc_capacity = 4 * 1024 * 1024;
        Arc::new(runner::run_one(
            &cfg,
            &SchemeSpec::Baseline,
            &WorkloadProfile::tc(),
            2_000,
            0,
            1,
        ))
    }

    #[test]
    fn first_claim_runs_second_hits_after_completion() {
        let cache = ResultCache::new();
        let r = report();
        let Claim::Run(flight) = cache.claim(42, "job-a") else {
            panic!("first claim must run");
        };
        cache.complete(42, Ok(Arc::clone(&r)));
        assert_eq!(flight.wait().expect("success").cycles, r.cycles);
        let Claim::Hit(hit) = cache.claim(42, "job-a") else {
            panic!("second claim must hit");
        };
        assert_eq!(hit.cycles, r.cycles);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn concurrent_claims_coalesce_onto_one_flight() {
        let cache = ResultCache::new();
        let Claim::Run(_runner) = cache.claim(7, "job") else {
            panic!("runner");
        };
        let Claim::Wait(waiter) = cache.claim(7, "job") else {
            panic!("waiter");
        };
        let r = report();
        cache.complete(7, Ok(Arc::clone(&r)));
        assert_eq!(waiter.wait().expect("success").cycles, r.cycles);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn failures_are_not_cached() {
        let cache = ResultCache::new();
        let Claim::Run(flight) = cache.claim(9, "job") else {
            panic!("runner");
        };
        cache.complete(
            9,
            Err(JobFailure {
                error: "panicked".into(),
                attempts: 3,
            }),
        );
        assert_eq!(flight.wait().expect_err("failure").attempts, 3);
        assert_eq!(cache.entries(), 0);
        // The next identical submission runs again.
        assert!(matches!(cache.claim(9, "job"), Claim::Run(_)));
    }

    /// A fresh scratch directory under the system temp dir, unique to
    /// this process and test.
    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nomad-serve-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ready_entries_survive_reload() {
        let dir = scratch_dir("reload");
        let canonical = "job-a";
        let key = crate::hash::fnv1a(canonical.as_bytes());
        let r = report();
        {
            let cache = ResultCache::with_dir(Some(dir.clone()));
            let Claim::Run(_) = cache.claim(key, canonical) else {
                panic!("runner");
            };
            cache.complete(key, Ok(Arc::clone(&r)));
            assert_eq!(cache.entries(), 1);
        }
        // A brand-new cache over the same directory serves the hit.
        let cache = ResultCache::with_dir(Some(dir.clone()));
        assert_eq!(cache.entries(), 1);
        let Claim::Hit(hit) = cache.claim(key, canonical) else {
            panic!("reloaded entry must hit");
        };
        assert_eq!(hit.cycles, r.cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_are_not_spilled() {
        let dir = scratch_dir("failures");
        {
            let cache = ResultCache::with_dir(Some(dir.clone()));
            let Claim::Run(_) = cache.claim(5, "job") else {
                panic!("runner");
            };
            cache.complete(
                5,
                Err(JobFailure {
                    error: "boom".into(),
                    attempts: 1,
                }),
            );
        }
        let cache = ResultCache::with_dir(Some(dir.clone()));
        assert_eq!(cache.entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_files_are_ignored() {
        let dir = scratch_dir("corrupt");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(dir.join("0000000000000bad.json"), "{not json").expect("write");
        std::fs::write(dir.join("wrong-shape.json"), "[1,2,3]").expect("write");
        std::fs::write(dir.join("partial.json.tmp"), "{\"canonical\":").expect("write");
        let cache = ResultCache::with_dir(Some(dir.clone()));
        assert_eq!(cache.entries(), 0, "garbage must not become entries");
        // The cache still works normally on top of the garbage.
        let Claim::Run(_) = cache.claim(3, "job") else {
            panic!("runner");
        };
        cache.complete(3, Ok(report()));
        assert_eq!(cache.entries(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn collision_bypasses_cache() {
        let cache = ResultCache::new();
        let Claim::Run(_) = cache.claim(1, "job-a") else {
            panic!("runner");
        };
        // Same key, different canonical string: must not coalesce.
        assert!(matches!(cache.claim(1, "job-b"), Claim::RunUncached));
        cache.complete(1, Ok(report()));
        assert!(matches!(cache.claim(1, "job-b"), Claim::RunUncached));
    }
}
