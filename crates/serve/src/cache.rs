//! Content-addressed result cache with single-flight coalescing.
//!
//! Results are keyed by the FNV-1a 64 hash of the job's canonical JSON
//! (see [`crate::proto::JobSpec::content_key`]). Because 64-bit
//! hashes can collide, every slot stores the canonical string and
//! verifies it on lookup: a collision degrades to
//! [`Claim::RunUncached`] (run the job, skip the cache), never to a
//! wrong report.
//!
//! The first claimant of a key becomes its *runner*
//! ([`Claim::Run`]); identical jobs claimed while the first is still
//! executing coalesce onto the same [`Flight`] ([`Claim::Wait`]) and
//! are counted as cache hits — they are served without a new
//! simulation. Successful results are cached forever (simulations are
//! deterministic, so entries never go stale); failures are *not*
//! cached — the next identical submission retries from scratch.

use nomad_sim::RunReport;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Why a job did not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub struct JobFailure {
    /// Human-readable description (panic message, timeout, shutdown).
    pub error: String,
    /// Execution attempts consumed (0 if the job never started).
    pub attempts: u32,
}

/// The outcome of one job execution.
pub type JobResult = Result<Arc<RunReport>, JobFailure>;

/// A rendezvous between one running job and any coalesced waiters.
pub struct Flight {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

impl Flight {
    /// A fresh, unresolved flight.
    pub fn new() -> Arc<Self> {
        Arc::new(Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// Publish the result and wake all waiters. Idempotent: the first
    /// completion wins.
    pub fn complete(&self, result: JobResult) {
        let mut slot = self.slot.lock().expect("flight lock");
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
        }
    }

    /// Block until the result is published.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.slot.lock().expect("flight lock");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).expect("flight lock");
        }
    }
}

enum Slot {
    /// A completed result.
    Ready {
        canonical: String,
        report: Arc<RunReport>,
    },
    /// A job currently executing (or queued).
    InFlight {
        canonical: String,
        flight: Arc<Flight>,
    },
}

/// What a submission should do, as decided by [`ResultCache::claim`].
pub enum Claim {
    /// Cached result; respond immediately.
    Hit(Arc<RunReport>),
    /// An identical job is already in flight; wait for it.
    Wait(Arc<Flight>),
    /// This submission is the runner: execute, then
    /// [`complete`](ResultCache::complete) the key.
    Run(Arc<Flight>),
    /// Key collision with a *different* job (canonical strings
    /// differ): execute without touching the cache.
    RunUncached,
}

/// The shared result cache.
#[derive(Default)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide how to serve a job with this `(key, canonical)`
    /// identity, registering an in-flight slot when this submission
    /// becomes the runner.
    pub fn claim(&self, key: u64, canonical: &str) -> Claim {
        let mut map = self.map.lock().expect("cache lock");
        match map.get(&key) {
            Some(Slot::Ready {
                canonical: c,
                report,
            }) if c == canonical => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Claim::Hit(Arc::clone(report))
            }
            Some(Slot::InFlight {
                canonical: c,
                flight,
            }) if c == canonical => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Claim::Wait(Arc::clone(flight))
            }
            Some(_) => {
                // 64-bit collision between distinct jobs.
                self.misses.fetch_add(1, Ordering::Relaxed);
                Claim::RunUncached
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let flight = Flight::new();
                map.insert(
                    key,
                    Slot::InFlight {
                        canonical: canonical.to_string(),
                        flight: Arc::clone(&flight),
                    },
                );
                Claim::Run(flight)
            }
        }
    }

    /// Resolve the in-flight slot for `key`: successes become cached
    /// entries, failures are forgotten (retried on next submission).
    /// Waiters are woken either way.
    pub fn complete(&self, key: u64, result: JobResult) {
        let mut map = self.map.lock().expect("cache lock");
        let Some(Slot::InFlight { canonical, flight }) = map.remove(&key) else {
            return;
        };
        if let Ok(report) = &result {
            map.insert(
                key,
                Slot::Ready {
                    canonical,
                    report: Arc::clone(report),
                },
            );
        }
        drop(map);
        flight.complete(result);
    }

    /// Submissions served from cache or coalesced.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Submissions that required a new simulation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Completed reports currently cached.
    pub fn entries(&self) -> usize {
        let map = self.map.lock().expect("cache lock");
        map.values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Arc<RunReport> {
        use nomad_sim::{runner, SchemeSpec, SystemConfig};
        use nomad_trace::WorkloadProfile;
        let mut cfg = SystemConfig::scaled(1);
        cfg.dc_capacity = 4 * 1024 * 1024;
        Arc::new(runner::run_one(
            &cfg,
            &SchemeSpec::Baseline,
            &WorkloadProfile::tc(),
            2_000,
            0,
            1,
        ))
    }

    #[test]
    fn first_claim_runs_second_hits_after_completion() {
        let cache = ResultCache::new();
        let r = report();
        let Claim::Run(flight) = cache.claim(42, "job-a") else {
            panic!("first claim must run");
        };
        cache.complete(42, Ok(Arc::clone(&r)));
        assert_eq!(flight.wait().expect("success").cycles, r.cycles);
        let Claim::Hit(hit) = cache.claim(42, "job-a") else {
            panic!("second claim must hit");
        };
        assert_eq!(hit.cycles, r.cycles);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn concurrent_claims_coalesce_onto_one_flight() {
        let cache = ResultCache::new();
        let Claim::Run(_runner) = cache.claim(7, "job") else {
            panic!("runner");
        };
        let Claim::Wait(waiter) = cache.claim(7, "job") else {
            panic!("waiter");
        };
        let r = report();
        cache.complete(7, Ok(Arc::clone(&r)));
        assert_eq!(waiter.wait().expect("success").cycles, r.cycles);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn failures_are_not_cached() {
        let cache = ResultCache::new();
        let Claim::Run(flight) = cache.claim(9, "job") else {
            panic!("runner");
        };
        cache.complete(
            9,
            Err(JobFailure {
                error: "panicked".into(),
                attempts: 3,
            }),
        );
        assert_eq!(flight.wait().expect_err("failure").attempts, 3);
        assert_eq!(cache.entries(), 0);
        // The next identical submission runs again.
        assert!(matches!(cache.claim(9, "job"), Claim::Run(_)));
    }

    #[test]
    fn collision_bypasses_cache() {
        let cache = ResultCache::new();
        let Claim::Run(_) = cache.claim(1, "job-a") else {
            panic!("runner");
        };
        // Same key, different canonical string: must not coalesce.
        assert!(matches!(cache.claim(1, "job-b"), Claim::RunUncached));
        cache.complete(1, Ok(report()));
        assert!(matches!(cache.claim(1, "job-b"), Claim::RunUncached));
    }
}
