//! Bounded multi-producer/multi-consumer job queue with backpressure.
//!
//! Producers never block: [`BoundedQueue::try_push`] fails fast when
//! the queue is at capacity, which the server surfaces to clients as
//! `Overloaded { retry_after_ms }`. Consumers block in
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed
//! *and* drained — closing lets workers finish the backlog before
//! exiting.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue (mutex + condvar; contention here is dwarfed
/// by simulation time per job).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue without blocking; fails when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is empty and open. Returns
    /// `None` once the queue is closed and empty.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Remove and return everything queued right now, without waiting.
    pub fn drain_now(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.items.drain(..).collect()
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Apply `f` to the oldest queued item without dequeuing it
    /// (`None` when the queue is empty). The stats endpoint uses this
    /// to report the age of the head-of-line job — the live sojourn
    /// the CoDel controller reasons about — without perturbing FIFO
    /// order.
    pub fn front_map<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        let inner = self.inner.lock().expect("queue lock");
        inner.items.front().map(f)
    }

    /// Maximum queue depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Close the queue: further pushes fail, poppers drain the backlog
    /// then receive `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_with_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        assert_eq!(q.try_push('c'), Err(PushError::Full('c')));
        q.pop();
        q.try_push('c').unwrap();
    }

    #[test]
    fn close_drains_backlog_then_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_poppers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..10 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn front_map_peeks_without_dequeuing() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.front_map(|&x: &i32| x), None);
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        assert_eq!(q.front_map(|&x| x * 10), Some(70));
        assert_eq!(q.depth(), 2, "peek must not consume");
        assert_eq!(q.pop(), Some(7));
    }

    /// Many producers hammering a tiny queue with no consumer: exactly
    /// `capacity` pushes win, every loser gets its item handed back,
    /// and nothing is duplicated or lost.
    #[test]
    fn concurrent_submitters_at_the_capacity_boundary() {
        const CAP: usize = 4;
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 50;
        let q = Arc::new(BoundedQueue::new(CAP));
        let admitted: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        let mut wins = Vec::new();
                        for i in 0..PER_PRODUCER {
                            let item = p * PER_PRODUCER + i;
                            match q.try_push(item) {
                                Ok(()) => wins.push(item),
                                Err(PushError::Full(back)) => assert_eq!(back, item),
                                Err(PushError::Closed(_)) => unreachable!("never closed"),
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(
            admitted.len(),
            CAP,
            "with no consumer, exactly `capacity` pushes can win"
        );
        assert_eq!(q.depth(), CAP);
        let mut drained = q.drain_now();
        drained.sort_unstable();
        let mut expected = admitted.clone();
        expected.sort_unstable();
        assert_eq!(drained, expected, "every admitted item is present once");
    }

    /// Under concurrent producers racing a consumer, the *admitted*
    /// items of each producer still come out in that producer's
    /// submission order (per-producer FIFO is what the mutex
    /// serializes; cross-producer interleaving is scheduling).
    #[test]
    fn fifo_preserved_for_admitted_jobs_under_contention() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 200;
        let q = Arc::new(BoundedQueue::new(3));
        let drained = std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        // Spin until admitted: this test is about order,
                        // not rejection.
                        loop {
                            match q.try_push((p, i)) {
                                Ok(()) => break,
                                Err(PushError::Full(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => unreachable!(),
                            }
                        }
                    }
                });
            }
            let q = Arc::clone(&q);
            scope
                .spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < PRODUCERS * PER_PRODUCER {
                        if let Some(item) = q.pop() {
                            got.push(item);
                        }
                    }
                    got
                })
                .join()
                .unwrap()
        });
        let mut next = [0usize; PRODUCERS];
        for (p, i) in drained {
            assert_eq!(i, next[p], "producer {p} items must drain in order");
            next[p] += 1;
        }
        assert_eq!(next, [PER_PRODUCER; PRODUCERS]);
    }

    /// Shutdown race: consumers blocked in `pop` plus producers racing
    /// `close`. Every popper must wake (no lost wakeups → the test
    /// finishes), and every item that was admitted before the close is
    /// drained by exactly one popper.
    #[test]
    fn no_lost_wakeups_on_shutdown() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for round in 0..20 {
            let q = Arc::new(BoundedQueue::<usize>::new(8));
            let popped = AtomicUsize::new(0);
            let pushed = std::thread::scope(|scope| {
                for _ in 0..4 {
                    let q = Arc::clone(&q);
                    let popped = &popped;
                    scope.spawn(move || {
                        while q.pop().is_some() {
                            popped.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
                let producer = {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        let mut ok = 0;
                        for i in 0..64 {
                            match q.try_push(i) {
                                Ok(()) => ok += 1,
                                Err(PushError::Full(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => break,
                            }
                        }
                        ok
                    })
                };
                // Close while producers and consumers are mid-flight;
                // vary the race window across rounds.
                if round % 2 == 0 {
                    std::thread::yield_now();
                }
                q.close();
                producer.join().unwrap()
            });
            // The scope only exits because every blocked popper woke up
            // and observed closed-and-drained; the counts must agree.
            assert_eq!(
                popped.load(Ordering::Relaxed),
                pushed,
                "round {round}: every admitted item drained exactly once"
            );
            assert_eq!(q.depth(), 0);
        }
    }
}
