//! Bounded multi-producer/multi-consumer job queue with backpressure.
//!
//! Producers never block: [`BoundedQueue::try_push`] fails fast when
//! the queue is at capacity, which the server surfaces to clients as
//! `Rejected { retry_after_ms }`. Consumers block in
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed
//! *and* drained — closing lets workers finish the backlog before
//! exiting.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue (mutex + condvar; contention here is dwarfed
/// by simulation time per job).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue without blocking; fails when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is empty and open. Returns
    /// `None` once the queue is closed and empty.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Remove and return everything queued right now, without waiting.
    pub fn drain_now(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.items.drain(..).collect()
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Maximum queue depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Close the queue: further pushes fail, poppers drain the backlog
    /// then receive `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_with_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        assert_eq!(q.try_push('c'), Err(PushError::Full('c')));
        q.pop();
        q.try_push('c').unwrap();
    }

    #[test]
    fn close_drains_backlog_then_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_poppers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..10 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 10);
    }
}
