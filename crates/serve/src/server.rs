//! The TCP server: accept loop, connection handlers, and lifecycle.
//!
//! One thread accepts connections (non-blocking, polling the shutdown
//! flag); each connection gets a handler thread speaking the
//! line-delimited JSON protocol of [`crate::proto`]. `Submit`
//! consults the result cache, enqueues on a miss, and blocks the
//! connection until the job resolves — so a connection is one lane of
//! synchronous requests, and concurrency comes from opening more
//! connections.
//!
//! # Shutdown
//!
//! Graceful shutdown (a `Shutdown` request or
//! [`ServerHandle::shutdown`]) closes the queue, lets workers finish
//! jobs they already started, fails every job still waiting in the
//! queue with "server shutting down", and stops accepting. Blocked
//! submitters therefore always get an answer.

use crate::cache::{Claim, JobFailure, ResultCache};
use crate::overload::{self, OverloadConfig};
use crate::proto::{self, MetricRow, Request, Response, StatsSnapshot};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::ServiceStats;
use crate::worker::{Job, Resolve, WorkerPool};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum queued (accepted but not yet running) jobs.
    pub queue_capacity: usize,
    /// Wall-clock budget per job attempt.
    pub job_timeout: Duration,
    /// Extra attempts after a panicking first attempt.
    pub retry_budget: u32,
    /// Directory for spilling completed results to disk (reloaded on
    /// the next startup); `None` keeps the result cache memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Overload-protection knobs (deadline shedding, CoDel target).
    pub overload: OverloadConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 64,
            job_timeout: Duration::from_secs(300),
            retry_budget: 2,
            cache_dir: None,
            overload: OverloadConfig::default(),
        }
    }
}

/// State shared by the accept loop, handlers, and workers.
struct Shared {
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ResultCache>,
    stats: Arc<ServiceStats>,
    shutdown: AtomicBool,
    workers: usize,
    overload: OverloadConfig,
}

impl Shared {
    /// Backoff hint for refused submissions: scales with queue fill
    /// so a deeply overloaded server pushes retries further out.
    fn retry_after_ms(&self) -> u64 {
        overload::retry_after_ms(self.queue.depth(), self.queue.capacity())
    }

    /// Age of the oldest queued job in milliseconds (0 when empty).
    fn queue_oldest_ms(&self) -> u64 {
        self.queue
            .front_map(|job: &Job| job.submitted.elapsed().as_millis() as u64)
            .unwrap_or(0)
    }

    fn snapshot(&self) -> StatsSnapshot {
        let (latency_p50_ms, latency_p99_ms) = self.stats.latency_quantiles_ms();
        let queue_depth = self.queue.depth();
        let queue_oldest_ms = self.queue_oldest_ms();
        let mut counters = self.stats.counter_rows(
            queue_depth,
            queue_oldest_ms,
            self.cache.hits(),
            self.cache.misses(),
            self.cache.entries(),
        );
        // Merge the process-global overload counters so one `/stats`
        // round-trip carries the shed/breaker picture too. Re-sort:
        // the rows contract is name-sorted.
        counters.extend(
            nomad_obs::overload()
                .rows()
                .into_iter()
                .map(|(name, value)| MetricRow { name, value }),
        );
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        StatsSnapshot {
            queue_depth,
            queue_capacity: self.queue.capacity(),
            queue_oldest_ms,
            workers: self.workers,
            jobs_submitted: self.stats.submitted.get(),
            jobs_completed: self.stats.completed.get(),
            jobs_failed: self.stats.failed.get(),
            jobs_rejected: self.stats.rejected.get(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_entries: self.cache.entries(),
            worker_utilization: self.stats.worker_utilization(),
            latency_p50_ms,
            latency_p99_ms,
            counters,
        }
    }

    /// Close the queue and fail everything still waiting in it.
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        for job in self.queue.drain_now() {
            let failure = Err(JobFailure {
                error: "server shutting down".to_string(),
                attempts: 0,
            });
            match job.resolve {
                Resolve::Cache(key) => self.cache.complete(key, failure),
                Resolve::Direct(flight) => flight.complete(failure),
            }
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](Self::shutdown) (or send a `Shutdown` request)
/// first.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves ephemeral
    /// ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, fail queued jobs, and wait for workers and the
    /// accept loop to exit.
    pub fn shutdown(mut self) {
        self.shared.initiate_shutdown();
        self.join_threads();
    }

    /// Block until the server shuts down (via a client `Shutdown`
    /// request or another thread's handle).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }

    /// Chrome Trace Event JSON of every job the workers executed so
    /// far (one track per worker, microseconds since server start).
    /// Valid before and after shutdown; the daemon writes it to
    /// `results/serve.trace.json` at exit when observability is on.
    pub fn trace_json(&self) -> String {
        self.shared.stats.trace_json()
    }

    /// A handle to the live service counters that outlives this
    /// server handle ([`join`](Self::join) consumes it), so callers
    /// can export stats or traces after shutdown.
    pub fn stats(&self) -> Arc<ServiceStats> {
        Arc::clone(&self.shared.stats)
    }
}

/// Bind, spawn workers and the accept loop, and return immediately.
pub fn serve(cfg: ServerConfig) -> io::Result<ServerHandle> {
    crate::mirror_faults_to_obs();
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        queue: Arc::new(BoundedQueue::new(cfg.queue_capacity)),
        cache: Arc::new(ResultCache::with_dir(cfg.cache_dir.clone())),
        stats: Arc::new(ServiceStats::new(cfg.workers)),
        shutdown: AtomicBool::new(false),
        workers: cfg.workers,
        overload: cfg.overload.clone(),
    });

    let pool = WorkerPool::spawn(
        cfg.workers,
        Arc::clone(&shared.queue),
        Arc::clone(&shared.cache),
        Arc::clone(&shared.stats),
        cfg.job_timeout,
        cfg.retry_budget,
        cfg.overload.clone(),
    );

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("nomad-serve-accept".into())
        .spawn(move || {
            accept_loop(listener, accept_shared);
        })
        .expect("spawn accept loop");

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        pool: Some(pool),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("nomad-serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, shared);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let request = match proto::read_frame::<Request, _>(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // client hung up
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                proto::write_frame(&mut writer, &Response::Error(e.to_string()))?;
                continue;
            }
            Err(e) => return Err(e),
        };
        let response = match request {
            Request::Submit(spec) => handle_submit(spec, None, &shared),
            Request::SubmitDeadline { job, deadline_ms } => {
                handle_submit(job, Some(deadline_ms), &shared)
            }
            Request::Probe { key, canonical } => Response::ProbeResult {
                hit: shared.cache.lookup(key, &canonical).is_some(),
            },
            Request::Fetch { key, canonical } => match shared.cache.lookup(key, &canonical) {
                Some(report) => Response::Report {
                    cached: true,
                    report: (*report).clone(),
                },
                None => Response::NotCached,
            },
            Request::Stats => Response::Stats(shared.snapshot()),
            Request::Ping => Response::Pong,
            Request::Shutdown => {
                proto::write_frame(&mut writer, &Response::ShuttingDown)?;
                shared.initiate_shutdown();
                return Ok(());
            }
        };
        proto::write_frame(&mut writer, &response)?;
    }
}

/// Map a resolved job failure to its wire response: sheds (deadline,
/// CoDel) answer `Expired`, real failures answer `Failed`.
fn failure_response(failure: JobFailure) -> Response {
    if failure.is_shed() {
        Response::Expired {
            error: failure.error,
        }
    } else {
        Response::Failed {
            error: failure.error,
            attempts: failure.attempts,
        }
    }
}

/// The admission checkpoint for a deadline-budgeted submission that is
/// about to enqueue new work: shed now if the estimated queue wait
/// alone already eats the budget. Returns the shed failure, or `None`
/// to admit.
fn admission_shed(shared: &Shared, deadline_ms: Option<u64>) -> Option<JobFailure> {
    let deadline_ms = deadline_ms?;
    if !shared.overload.shed {
        return None;
    }
    let est = overload::estimated_wait_ms(
        shared.queue.depth(),
        shared.workers,
        shared.stats.service_ewma_ms(),
    );
    if overload::admit_would_expire(deadline_ms, est) {
        nomad_obs::overload().admit_shed.inc();
        Some(JobFailure::admit_expired(est, deadline_ms))
    } else {
        None
    }
}

fn handle_submit(
    spec: crate::proto::JobSpec,
    deadline_ms: Option<u64>,
    shared: &Shared,
) -> Response {
    shared.stats.submitted.inc();
    // Fault site `serve.admit`: `panic` kills this connection handler
    // mid-admission (the client sees a dropped connection and rides
    // its reconnect ladder), `delay` stalls admission inside
    // `inject`, and `io`/`torn` force an `Overloaded` rejection as if
    // the server were saturated. Nothing is enqueued in any case, so
    // recovery is always a clean resubmission.
    if let Some(fault) = nomad_faults::inject("serve.admit") {
        if matches!(fault, nomad_faults::Fault::Panic) {
            panic!("nomad-faults: injected panic at serve.admit");
        }
        shared.stats.rejected.inc();
        nomad_obs::overload().admit_shed.inc();
        return Response::Overloaded {
            retry_after_ms: shared.retry_after_ms(),
        };
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Failed {
            error: "server shutting down".to_string(),
            attempts: 0,
        };
    }
    // Relative budget → absolute deadline, pinned at frame receipt.
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let canonical = spec.canonical_json();
    let key = crate::hash::fnv1a(canonical.as_bytes());
    match shared.cache.claim(key, &canonical) {
        // Hits always serve: they cost no queue time, so even a zero
        // budget is met.
        Claim::Hit(report) => Response::Report {
            cached: true,
            report: (*report).clone(),
        },
        Claim::Wait(flight) => match flight.wait_until(deadline) {
            Some(Ok(report)) => Response::Report {
                cached: true,
                report: (*report).clone(),
            },
            Some(Err(failure)) => failure_response(failure),
            None => {
                // The budget died while coalesced behind an identical
                // in-flight job; give up waiting (the runner and any
                // other waiters are undisturbed).
                nomad_obs::overload().queue_shed.inc();
                Response::Expired {
                    error: "deadline expired while coalesced onto an in-flight job".to_string(),
                }
            }
        },
        Claim::Run(flight) => {
            if let Some(shed) = admission_shed(shared, deadline_ms) {
                // Un-register the in-flight slot so coalesced waiters
                // (and future submissions) are not stuck behind a job
                // that never ran.
                shared.cache.complete(key, Err(shed.clone()));
                return failure_response(shed);
            }
            let job = Job {
                spec,
                resolve: Resolve::Cache(key),
                submitted: Instant::now(),
                deadline,
            };
            match shared.queue.try_push(job) {
                Ok(()) => match flight.wait_until(deadline) {
                    Some(Ok(report)) => Response::Report {
                        cached: false,
                        report: (*report).clone(),
                    },
                    Some(Err(failure)) => failure_response(failure),
                    None => {
                        // The budget ran out while the job sat queued
                        // (or ran long); the dequeue/pre-execute
                        // checkpoints will shed or finish it and
                        // resolve the flight for the cache — this
                        // submitter just stops waiting for a result
                        // that is already late.
                        nomad_obs::overload().queue_shed.inc();
                        Response::Expired {
                            error: "deadline expired while the job was queued".to_string(),
                        }
                    }
                },
                Err(push_err) => {
                    // Same un-register dance as the admission shed.
                    let (reason, response) = match &push_err {
                        PushError::Full(_) => {
                            shared.stats.rejected.inc();
                            (
                                "queue full; job was rejected",
                                Response::Overloaded {
                                    retry_after_ms: shared.retry_after_ms(),
                                },
                            )
                        }
                        PushError::Closed(_) => (
                            "server shutting down",
                            Response::Failed {
                                error: "server shutting down".to_string(),
                                attempts: 0,
                            },
                        ),
                    };
                    shared.cache.complete(
                        key,
                        Err(JobFailure {
                            error: reason.to_string(),
                            attempts: 0,
                        }),
                    );
                    response
                }
            }
        }
        Claim::RunUncached => {
            // Content-key collision with a different job: run it
            // without caching, resolved through a private flight.
            if let Some(shed) = admission_shed(shared, deadline_ms) {
                return failure_response(shed);
            }
            let flight = crate::cache::Flight::new();
            let job = Job {
                spec,
                resolve: Resolve::Direct(Arc::clone(&flight)),
                submitted: Instant::now(),
                deadline,
            };
            match shared.queue.try_push(job) {
                Ok(()) => match flight.wait_until(deadline) {
                    Some(Ok(report)) => Response::Report {
                        cached: false,
                        report: (*report).clone(),
                    },
                    Some(Err(failure)) => failure_response(failure),
                    None => {
                        nomad_obs::overload().queue_shed.inc();
                        Response::Expired {
                            error: "deadline expired while the job was queued".to_string(),
                        }
                    }
                },
                Err(PushError::Full(_)) => {
                    shared.stats.rejected.inc();
                    Response::Overloaded {
                        retry_after_ms: shared.retry_after_ms(),
                    }
                }
                Err(PushError::Closed(_)) => Response::Failed {
                    error: "server shutting down".to_string(),
                    attempts: 0,
                },
            }
        }
    }
}
