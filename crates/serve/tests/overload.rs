//! End-to-end overload-protection tests: deadline-budgeted submissions
//! against a live server must be shed — never executed late — at every
//! checkpoint, and the `overload.*` counters must witness each
//! decision.
//!
//! The overload counters are process-global (`nomad_obs::overload()`),
//! and one test installs a fault plan (also process-global), so every
//! test in this file runs under one mutex and measures counter
//! *deltas*.

use nomad_serve::proto::{JobSpec, Response};
use nomad_serve::{serve, Client, OverloadConfig, ServerConfig};
use nomad_sim::{SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;
use std::sync::Mutex;
use std::time::Duration;

static OVERLOAD_LOCK: Mutex<()> = Mutex::new(());

/// Serialize the test, install `plan` (or none), run `f`, and always
/// clear the plan afterwards.
fn with_plan<Ret>(plan: Option<&str>, f: impl FnOnce() -> Ret) -> Ret {
    let _guard = OVERLOAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    nomad_faults::install(plan.map(|s| nomad_faults::FaultPlan::parse(s).expect("valid plan")));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    nomad_faults::install(None);
    match out {
        Ok(ret) => ret,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn job(seed: u64) -> JobSpec {
    let mut cfg = SystemConfig::scaled(2);
    cfg.dc_capacity = 8 * 1024 * 1024;
    JobSpec {
        cfg,
        spec: SchemeSpec::Nomad,
        profile: WorkloadProfile::tc(),
        instructions: 4_000,
        warmup: 500,
        seed,
    }
}

fn test_server(workers: usize, overload: OverloadConfig) -> nomad_serve::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: 8,
        job_timeout: Duration::from_secs(60),
        retry_budget: 2,
        cache_dir: None,
        overload,
    })
    .expect("bind ephemeral port")
}

fn overload_counter(name: &str) -> u64 {
    nomad_obs::overload()
        .value(name)
        .expect("counter registered")
}

/// With no workers, the estimated queue wait is infinite: any finite
/// budget is hopeless and the job must be shed at admission — an
/// `Expired` answer, `overload.admit_shed` incremented, and the shed
/// exempt from `serve.jobs.failed`.
#[test]
fn hopeless_deadline_is_shed_at_admission() {
    with_plan(None, || {
        let admit_before = overload_counter("overload.admit_shed");
        let handle = test_server(0, OverloadConfig::default());
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        match client
            .submit_with_deadline(&job(1), Duration::from_millis(50))
            .expect("submit")
        {
            Response::Expired { error } => {
                assert!(error.contains("deadline expired"), "{error}");
            }
            other => panic!("expected Expired, got {other:?}"),
        }
        let stats = client.stats().expect("stats");
        assert_eq!(stats.jobs_failed, 0, "sheds are not failures");
        assert_eq!(stats.jobs_rejected, 0, "sheds are not rejections either");
        assert!(overload_counter("overload.admit_shed") > admit_before);
        // The snapshot carries the same rows the registry holds.
        assert!(stats.counter("overload.admit_shed").is_some());
        handle.shutdown();
    });
}

/// A job whose budget dies *in the queue* (the single worker is pinned
/// by an injected 300 ms execution delay) comes back `Expired`, counts
/// `overload.queue_shed`, and — the invariant the load generator
/// asserts fleet-wide — is never executed: `overload.expired_executions`
/// stays flat.
#[test]
fn budget_that_dies_in_the_queue_is_shed_not_executed() {
    with_plan(Some("3:serve.worker.execute=delay:300"), || {
        let queue_before = overload_counter("overload.queue_shed");
        let expired_before = overload_counter("overload.expired_executions");
        let handle = test_server(1, OverloadConfig::default());
        let addr = handle.local_addr();

        // Pin the worker: a no-deadline job whose execution sleeps
        // 300 ms at the fault site before simulating.
        let pin = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client.submit(&job(2)).expect("pin job")
        });
        // Make sure the pin job was dequeued (the worker is busy).
        let mut client = Client::connect(addr).expect("connect");
        loop {
            let stats = client.stats().expect("stats");
            if stats.jobs_submitted >= 1 && stats.queue_depth == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        // A 50 ms budget cannot outlive a 300 ms pin: the submitter
        // stops waiting when the budget dies, and the dequeue
        // checkpoint sheds the queued job instead of running it.
        match client
            .submit_with_deadline(&job(3), Duration::from_millis(50))
            .expect("submit")
        {
            Response::Expired { error } => {
                assert!(error.contains("deadline expired"), "{error}");
            }
            other => panic!("expected Expired, got {other:?}"),
        }
        match pin.join().expect("pin thread") {
            Response::Report { report, .. } => assert!(report.cycles > 0),
            other => panic!("pin job should complete, got {other:?}"),
        }
        handle.shutdown();
        assert!(overload_counter("overload.queue_shed") > queue_before);
        assert_eq!(
            overload_counter("overload.expired_executions"),
            expired_before,
            "an expired job must never reach execution while shedding is on"
        );
    });
}

/// The master switch off: the same expired-in-queue job is **executed
/// anyway** — the submitter already walked away (client-side `Expired`),
/// but the run is witnessed by `overload.expired_executions`.
#[test]
fn shedding_disabled_runs_expired_jobs_and_witnesses_them() {
    with_plan(Some("5:serve.worker.execute=delay:300"), || {
        let expired_before = overload_counter("overload.expired_executions");
        let handle = test_server(
            1,
            OverloadConfig {
                shed: false,
                ..OverloadConfig::default()
            },
        );
        let addr = handle.local_addr();
        let pin = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client.submit(&job(4)).expect("pin job")
        });
        let mut client = Client::connect(addr).expect("connect");
        loop {
            let stats = client.stats().expect("stats");
            if stats.jobs_submitted >= 1 && stats.queue_depth == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        // The waiter gives up at 50 ms, but the job itself stays
        // queued and — with shedding off — runs to completion.
        match client
            .submit_with_deadline(&job(5), Duration::from_millis(50))
            .expect("submit")
        {
            Response::Expired { .. } => {}
            other => panic!("expected Expired (waiter gave up), got {other:?}"),
        }
        pin.join().expect("pin thread");
        // Wait for the expired job's execution to be witnessed (it
        // runs behind the pin job, plus its own 300 ms delay).
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while overload_counter("overload.expired_executions") == expired_before {
            assert!(
                std::time::Instant::now() < deadline,
                "the expired execution was never witnessed"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.shutdown();
    });
}

/// The CoDel controller end-to-end: a backlog whose sojourn blew the
/// target is shed at dequeue (`overload.codel_shed`), while the last
/// waiting job always executes.
#[test]
fn codel_sheds_the_backlog_but_not_the_last_job() {
    with_plan(Some("7:serve.worker.execute=delay:200"), || {
        let codel_before = overload_counter("overload.codel_shed");
        let handle = test_server(
            1,
            OverloadConfig {
                codel_target: Duration::from_millis(20),
                ..OverloadConfig::default()
            },
        );
        let addr = handle.local_addr();
        // Three distinct no-deadline jobs: the first pins the worker
        // for 200 ms; the two behind it age past the 20 ms target.
        let submitters: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.submit(&job(10 + i)).expect("submit")
                })
            })
            .collect();
        let answers: Vec<Response> = submitters
            .into_iter()
            .map(|h| h.join().expect("submitter"))
            .collect();
        handle.shutdown();
        let reports = answers
            .iter()
            .filter(|r| matches!(r, Response::Report { .. }))
            .count();
        let sheds = answers
            .iter()
            .filter(|r| matches!(r, Response::Expired { .. }))
            .count();
        assert_eq!(reports + sheds, 3, "answers: {answers:?}");
        assert!(
            reports >= 2,
            "the pinned job and the last waiting job both execute: {answers:?}"
        );
        assert!(
            overload_counter("overload.codel_shed") >= codel_before + sheds as u64,
            "every CoDel shed is counted"
        );
    });
}
