//! Chaos suite: seeded fault injection against a live server, holding
//! the ISSUE's acceptance bar — under a fixed `NOMAD_FAULTS` seed the
//! sweep either fails identically or **recovers to byte-identical
//! results**, and with no plan installed nothing is ever injected.
//!
//! Fault plans are process-global (`nomad_faults::install`), so every
//! test runs under one mutex and clears the plan before returning.

use nomad_serve::proto::JobSpec;
use nomad_serve::{run_grid_via_jobs_with, serve, ClientConfig, ServerConfig};
use nomad_sim::runner::{self, Cell};
use nomad_sim::{SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;
use nomad_types::CancelToken;
use std::sync::Mutex;
use std::time::Duration;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Install `plan`, run `f`, and always clear the plan afterwards —
/// even when `f` panics, so one failing test cannot leak chaos into
/// the next.
fn with_plan<Ret>(plan: Option<&str>, f: impl FnOnce() -> Ret) -> Ret {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    nomad_faults::install(plan.map(|s| nomad_faults::FaultPlan::parse(s).expect("valid plan")));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    nomad_faults::install(None);
    match out {
        Ok(ret) => ret,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn small_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::scaled(2);
    cfg.dc_capacity = 8 * 1024 * 1024;
    cfg
}

fn grid(seeds: &[u64]) -> Vec<Cell> {
    seeds
        .iter()
        .map(|&seed| Cell {
            cfg: small_cfg(),
            spec: SchemeSpec::Nomad,
            profile: WorkloadProfile::tc(),
            instructions: 6_000,
            warmup: 1_000,
            seed,
        })
        .collect()
}

/// The in-process oracle: what every recovered run must match
/// byte-for-byte.
fn expected_jsons(cells: &[Cell]) -> Vec<String> {
    cells
        .iter()
        .map(|c| {
            runner::run_one(
                &c.cfg,
                &c.spec,
                &c.profile,
                c.instructions,
                c.warmup,
                c.seed,
            )
            .to_json()
        })
        .collect()
}

fn test_server(cache_dir: Option<std::path::PathBuf>) -> nomad_serve::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 32,
        job_timeout: Duration::from_secs(60),
        retry_budget: 2,
        cache_dir,
    })
    .expect("bind ephemeral port")
}

/// Fast recovery budgets so injected failures cost milliseconds, not
/// the production backoff schedule.
fn fast_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Some(Duration::from_millis(10_000)),
        reconnect_attempts: 16,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
    }
}

/// A scratch directory under the system temp dir, unique per call.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "nomad-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn no_plan_injects_nothing() {
    with_plan(None, || {
        let cells = grid(&[1, 2]);
        let expected = expected_jsons(&cells);
        let handle = test_server(None);
        let addr = handle.local_addr().to_string();
        let before = nomad_faults::injected_total();
        let reports = run_grid_via_jobs_with(&addr, cells, 2, &CancelToken::new(), &fast_cfg())
            .expect("clean grid");
        handle.shutdown();
        assert_eq!(nomad_faults::injected_total(), before, "no injections");
        let got: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        assert_eq!(got, expected);
    });
}

/// Mid-frame connection drops on both protocol directions: the client
/// reconnects and resubmits (idempotent, content-addressed), and the
/// grid completes byte-identical to the in-process oracle — at one and
/// at four client connections.
#[test]
fn mid_frame_drops_recover_byte_identical() {
    let cells = grid(&[10, 11, 12, 13]);
    let expected = expected_jsons(&cells);
    for jobs in [1usize, 4] {
        let got = with_plan(
            Some("42:serve.proto.write_frame=torn@0.2,serve.proto.read_frame=io@0.1"),
            || {
                let handle = test_server(None);
                let addr = handle.local_addr().to_string();
                let reports = run_grid_via_jobs_with(
                    &addr,
                    cells.clone(),
                    jobs,
                    &CancelToken::new(),
                    &fast_cfg(),
                )
                .expect("grid recovers");
                handle.shutdown();
                reports.iter().map(|r| r.to_json()).collect::<Vec<_>>()
            },
        );
        assert_eq!(got, expected, "jobs={jobs} must recover byte-identical");
        assert!(
            nomad_faults::injected_total() > 0,
            "the plan must actually have fired"
        );
    }
}

/// Worker attempts that always panic exhaust the server's retry budget
/// and come back `Failed`; the client's one local retry still delivers
/// the correct rows.
#[test]
fn worker_panics_past_budget_fall_back_locally() {
    with_plan(Some("7:serve.worker.execute=panic"), || {
        let cells = grid(&[20, 21]);
        let expected = expected_jsons(&cells);
        let before = nomad_obs::resilience()
            .rows()
            .into_iter()
            .find(|(n, _)| n == "resilience.local_fallbacks")
            .expect("counter registered")
            .1;
        let handle = test_server(None);
        let addr = handle.local_addr().to_string();
        let reports = run_grid_via_jobs_with(&addr, cells, 2, &CancelToken::new(), &fast_cfg())
            .expect("local fallback saves the grid");
        handle.shutdown();
        let got: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        assert_eq!(got, expected);
        let after = nomad_obs::resilience()
            .rows()
            .into_iter()
            .find(|(n, _)| n == "resilience.local_fallbacks")
            .expect("counter registered")
            .1;
        assert!(after >= before + 2, "both cells ran locally");
    });
}

/// A crash mid-spill leaves a torn `.json` in the cache directory; the
/// next server start must skip it (not crash, not serve garbage) and
/// re-run the job on resubmission.
#[test]
fn torn_cache_spill_is_skipped_on_reload() {
    let dir = scratch_dir("torn-spill");
    let cells = grid(&[30]);
    let expected = expected_jsons(&cells);
    let job = JobSpec::from_cell(&cells[0]);

    with_plan(Some("9:serve.cache.spill=torn"), || {
        let handle = test_server(Some(dir.clone()));
        let addr = handle.local_addr().to_string();
        let mut client = nomad_serve::Client::connect(&*addr).expect("connect");
        match client.submit(&job).expect("submit") {
            nomad_serve::proto::Response::Report { report, .. } => {
                assert_eq!(report.to_json(), expected[0]);
            }
            other => panic!("expected report, got {other:?}"),
        }
        handle.shutdown();
    });
    // The spill was torn: whatever is on disk must not round-trip.
    let spilled: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .collect();
    assert!(!spilled.is_empty(), "torn spill still writes a file");

    with_plan(None, || {
        let handle = test_server(Some(dir.clone()));
        let addr = handle.local_addr().to_string();
        let mut client = nomad_serve::Client::connect(&*addr).expect("connect");
        match client.submit(&job).expect("submit") {
            nomad_serve::proto::Response::Report { cached, report } => {
                assert!(!cached, "torn entry must not be reloaded as a hit");
                assert_eq!(report.to_json(), expected[0], "re-run is byte-identical");
            }
            other => panic!("expected report, got {other:?}"),
        }
        handle.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected reload failures make a *good* spill file invisible; the
/// server starts clean and still answers correctly.
#[test]
fn injected_reload_failure_degrades_to_rerun() {
    let dir = scratch_dir("reload");
    let cells = grid(&[40]);
    let expected = expected_jsons(&cells);
    let job = JobSpec::from_cell(&cells[0]);

    with_plan(None, || {
        let handle = test_server(Some(dir.clone()));
        let addr = handle.local_addr().to_string();
        let mut client = nomad_serve::Client::connect(&*addr).expect("connect");
        client.submit(&job).expect("seed the spill");
        handle.shutdown();
    });

    with_plan(Some("5:serve.cache.reload=io"), || {
        let handle = test_server(Some(dir.clone()));
        let addr = handle.local_addr().to_string();
        let mut client = nomad_serve::Client::connect(&*addr).expect("connect");
        match client.submit(&job).expect("submit") {
            nomad_serve::proto::Response::Report { cached, report } => {
                assert!(!cached, "reload was skipped, so this is a fresh run");
                assert_eq!(report.to_json(), expected[0]);
            }
            other => panic!("expected report, got {other:?}"),
        }
        handle.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Nothing listening at the address: the grid pays one reconnect
/// budget, degrades, and every cell still comes back byte-identical
/// from local execution.
#[test]
fn dead_server_degrades_to_local_execution() {
    with_plan(None, || {
        // Bind-then-drop guarantees the port is currently closed.
        let dead_addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        };
        let cells = grid(&[50, 51, 52]);
        let expected = expected_jsons(&cells);
        let cfg = ClientConfig {
            connect_timeout: Duration::from_millis(100),
            reconnect_attempts: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..ClientConfig::default()
        };
        let reports = run_grid_via_jobs_with(&dead_addr, cells, 2, &CancelToken::new(), &cfg)
            .expect("degraded grid still completes");
        let got: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        assert_eq!(got, expected);
        let fallbacks = nomad_obs::resilience()
            .rows()
            .into_iter()
            .find(|(n, _)| n == "resilience.local_fallbacks")
            .expect("counter registered")
            .1;
        assert!(fallbacks >= 3, "all three cells fell back locally");
    });
}
