//! Chaos suite: seeded fault injection against a live server, holding
//! the ISSUE's acceptance bar — under a fixed `NOMAD_FAULTS` seed the
//! sweep either fails identically or **recovers to byte-identical
//! results**, and with no plan installed nothing is ever injected.
//!
//! Fault plans are process-global (`nomad_faults::install`), so every
//! test runs under one mutex and clears the plan before returning.

use nomad_serve::proto::JobSpec;
use nomad_serve::{run_grid_via_jobs_with, serve, ClientConfig, ServerConfig};
use nomad_sim::runner::{self, Cell};
use nomad_sim::{SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;
use nomad_types::CancelToken;
use std::sync::Mutex;
use std::time::Duration;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Install `plan`, run `f`, and always clear the plan afterwards —
/// even when `f` panics, so one failing test cannot leak chaos into
/// the next.
fn with_plan<Ret>(plan: Option<&str>, f: impl FnOnce() -> Ret) -> Ret {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    nomad_faults::install(plan.map(|s| nomad_faults::FaultPlan::parse(s).expect("valid plan")));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    nomad_faults::install(None);
    match out {
        Ok(ret) => ret,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn small_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::scaled(2);
    cfg.dc_capacity = 8 * 1024 * 1024;
    cfg
}

fn grid(seeds: &[u64]) -> Vec<Cell> {
    seeds
        .iter()
        .map(|&seed| Cell {
            cfg: small_cfg(),
            spec: SchemeSpec::Nomad,
            profile: WorkloadProfile::tc(),
            instructions: 6_000,
            warmup: 1_000,
            seed,
        })
        .collect()
}

/// The in-process oracle: what every recovered run must match
/// byte-for-byte.
fn expected_jsons(cells: &[Cell]) -> Vec<String> {
    cells
        .iter()
        .map(|c| {
            runner::run_one(
                &c.cfg,
                &c.spec,
                &c.profile,
                c.instructions,
                c.warmup,
                c.seed,
            )
            .to_json()
        })
        .collect()
}

fn test_server(cache_dir: Option<std::path::PathBuf>) -> nomad_serve::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 32,
        job_timeout: Duration::from_secs(60),
        retry_budget: 2,
        cache_dir,
        overload: Default::default(),
    })
    .expect("bind ephemeral port")
}

/// Fast recovery budgets so injected failures cost milliseconds, not
/// the production backoff schedule.
fn fast_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Some(Duration::from_millis(10_000)),
        reconnect_attempts: 16,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
    }
}

/// A scratch directory under the system temp dir, unique per call.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "nomad-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn no_plan_injects_nothing() {
    with_plan(None, || {
        let cells = grid(&[1, 2]);
        let expected = expected_jsons(&cells);
        let handle = test_server(None);
        let addr = handle.local_addr().to_string();
        let before = nomad_faults::injected_total();
        let reports = run_grid_via_jobs_with(&addr, cells, 2, &CancelToken::new(), &fast_cfg())
            .expect("clean grid");
        handle.shutdown();
        assert_eq!(nomad_faults::injected_total(), before, "no injections");
        let got: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        assert_eq!(got, expected);
    });
}

/// Mid-frame connection drops on both protocol directions: the client
/// reconnects and resubmits (idempotent, content-addressed), and the
/// grid completes byte-identical to the in-process oracle — at one and
/// at four client connections.
#[test]
fn mid_frame_drops_recover_byte_identical() {
    let cells = grid(&[10, 11, 12, 13]);
    let expected = expected_jsons(&cells);
    for jobs in [1usize, 4] {
        let got = with_plan(
            Some("42:serve.proto.write_frame=torn@0.2,serve.proto.read_frame=io@0.1"),
            || {
                let handle = test_server(None);
                let addr = handle.local_addr().to_string();
                let reports = run_grid_via_jobs_with(
                    &addr,
                    cells.clone(),
                    jobs,
                    &CancelToken::new(),
                    &fast_cfg(),
                )
                .expect("grid recovers");
                handle.shutdown();
                reports.iter().map(|r| r.to_json()).collect::<Vec<_>>()
            },
        );
        assert_eq!(got, expected, "jobs={jobs} must recover byte-identical");
        assert!(
            nomad_faults::injected_total() > 0,
            "the plan must actually have fired"
        );
    }
}

/// Worker attempts that always panic exhaust the server's retry budget
/// and come back `Failed`; the client's one local retry still delivers
/// the correct rows.
#[test]
fn worker_panics_past_budget_fall_back_locally() {
    with_plan(Some("7:serve.worker.execute=panic"), || {
        let cells = grid(&[20, 21]);
        let expected = expected_jsons(&cells);
        let before = nomad_obs::resilience()
            .rows()
            .into_iter()
            .find(|(n, _)| n == "resilience.local_fallbacks")
            .expect("counter registered")
            .1;
        let handle = test_server(None);
        let addr = handle.local_addr().to_string();
        let reports = run_grid_via_jobs_with(&addr, cells, 2, &CancelToken::new(), &fast_cfg())
            .expect("local fallback saves the grid");
        handle.shutdown();
        let got: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        assert_eq!(got, expected);
        let after = nomad_obs::resilience()
            .rows()
            .into_iter()
            .find(|(n, _)| n == "resilience.local_fallbacks")
            .expect("counter registered")
            .1;
        assert!(after >= before + 2, "both cells ran locally");
    });
}

/// A crash mid-spill leaves a torn `.json` in the cache directory; the
/// next server start must skip it (not crash, not serve garbage) and
/// re-run the job on resubmission.
#[test]
fn torn_cache_spill_is_skipped_on_reload() {
    let dir = scratch_dir("torn-spill");
    let cells = grid(&[30]);
    let expected = expected_jsons(&cells);
    let job = JobSpec::from_cell(&cells[0]);

    with_plan(Some("9:serve.cache.spill=torn"), || {
        let handle = test_server(Some(dir.clone()));
        let addr = handle.local_addr().to_string();
        let mut client = nomad_serve::Client::connect(&*addr).expect("connect");
        match client.submit(&job).expect("submit") {
            nomad_serve::proto::Response::Report { report, .. } => {
                assert_eq!(report.to_json(), expected[0]);
            }
            other => panic!("expected report, got {other:?}"),
        }
        handle.shutdown();
    });
    // The spill was torn: whatever is on disk must not round-trip.
    let spilled: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .collect();
    assert!(!spilled.is_empty(), "torn spill still writes a file");

    with_plan(None, || {
        let handle = test_server(Some(dir.clone()));
        let addr = handle.local_addr().to_string();
        let mut client = nomad_serve::Client::connect(&*addr).expect("connect");
        match client.submit(&job).expect("submit") {
            nomad_serve::proto::Response::Report { cached, report } => {
                assert!(!cached, "torn entry must not be reloaded as a hit");
                assert_eq!(report.to_json(), expected[0], "re-run is byte-identical");
            }
            other => panic!("expected report, got {other:?}"),
        }
        handle.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected reload failures make a *good* spill file invisible; the
/// server starts clean and still answers correctly.
#[test]
fn injected_reload_failure_degrades_to_rerun() {
    let dir = scratch_dir("reload");
    let cells = grid(&[40]);
    let expected = expected_jsons(&cells);
    let job = JobSpec::from_cell(&cells[0]);

    with_plan(None, || {
        let handle = test_server(Some(dir.clone()));
        let addr = handle.local_addr().to_string();
        let mut client = nomad_serve::Client::connect(&*addr).expect("connect");
        client.submit(&job).expect("seed the spill");
        handle.shutdown();
    });

    with_plan(Some("5:serve.cache.reload=io"), || {
        let handle = test_server(Some(dir.clone()));
        let addr = handle.local_addr().to_string();
        let mut client = nomad_serve::Client::connect(&*addr).expect("connect");
        match client.submit(&job).expect("submit") {
            nomad_serve::proto::Response::Report { cached, report } => {
                assert!(!cached, "reload was skipped, so this is a fresh run");
                assert_eq!(report.to_json(), expected[0]);
            }
            other => panic!("expected report, got {other:?}"),
        }
        handle.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Nothing listening at the address: the grid pays one reconnect
/// budget, degrades, and every cell still comes back byte-identical
/// from local execution.
#[test]
fn dead_server_degrades_to_local_execution() {
    with_plan(None, || {
        // Bind-then-drop guarantees the port is currently closed.
        let dead_addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        };
        let cells = grid(&[50, 51, 52]);
        let expected = expected_jsons(&cells);
        let cfg = ClientConfig {
            connect_timeout: Duration::from_millis(100),
            reconnect_attempts: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..ClientConfig::default()
        };
        let reports = run_grid_via_jobs_with(&dead_addr, cells, 2, &CancelToken::new(), &cfg)
            .expect("degraded grid still completes");
        let got: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        assert_eq!(got, expected);
        let fallbacks = nomad_obs::resilience()
            .rows()
            .into_iter()
            .find(|(n, _)| n == "resilience.local_fallbacks")
            .expect("counter registered")
            .1;
        assert!(fallbacks >= 3, "all three cells fell back locally");
    });
}

// ---------------------------------------------------------------------------
// Fleet chaos matrix: the same oracle — byte-identical recovery under a
// seeded plan — with the grid sharded across several nodes by the
// nomad-fleet router.
// ---------------------------------------------------------------------------

/// A pool of live test nodes plus their addresses.
fn test_fleet(n: usize) -> (Vec<nomad_serve::ServerHandle>, Vec<String>) {
    let handles: Vec<_> = (0..n).map(|_| test_server(None)).collect();
    let addrs = handles.iter().map(|h| h.local_addr().to_string()).collect();
    (handles, addrs)
}

/// Fast fleet budgets: the chaos ladder from [`fast_cfg`] per node,
/// plus a tight heartbeat so failover detection costs milliseconds.
fn fast_fleet_cfg() -> nomad_fleet::FleetConfig {
    nomad_fleet::FleetConfig {
        client: fast_cfg(),
        heartbeat_interval: Duration::from_millis(5),
        heartbeat_misses: 1,
        ..nomad_fleet::FleetConfig::default()
    }
}

fn fleet_metric(name: &str) -> u64 {
    nomad_obs::fleet()
        .value(name)
        .expect("fleet metric registered")
}

/// The ring owner of each cell under an all-alive fleet of `n` nodes —
/// placement is a pure function of stable slot labels, so tests can
/// assert which node owns what before ever starting a server.
fn owners(cells: &[Cell], n: usize) -> Vec<usize> {
    let slots: Vec<usize> = (0..n).collect();
    let ring = nomad_fleet::HashRing::new(&slots, nomad_fleet::FleetConfig::default().vnodes);
    cells
        .iter()
        .map(|c| {
            ring.route(JobSpec::from_cell(c).content_key())
                .expect("route")
        })
        .collect()
}

/// A node dead before the sweep even starts: the router's per-node
/// ladder declares it dead, its arc reassigns to the survivors, and
/// the grid completes byte-identical — with the failover observable.
#[test]
fn fleet_dead_node_arc_reassigned() {
    with_plan(None, || {
        let cells = grid(&[60, 100, 110, 130, 150, 40]);
        let expected = expected_jsons(&cells);
        // Deterministic placement guard: the node we kill must own at
        // least one cell, or the test would prove nothing.
        assert!(
            owners(&cells, 3).contains(&1),
            "seed choice: node 1 must own part of this grid"
        );
        let (mut handles, addrs) = test_fleet(3);
        handles.remove(1).shutdown();
        let failovers_before = fleet_metric("fleet.failovers");
        let cfg = nomad_fleet::FleetConfig {
            client: ClientConfig {
                reconnect_attempts: 2,
                ..fast_cfg()
            },
            ..fast_fleet_cfg()
        };
        let reports =
            nomad_fleet::run_grid_via_fleet_with(&addrs, cells, 3, &CancelToken::new(), cfg)
                .expect("failover saves the grid");
        let got: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        assert_eq!(got, expected, "failover must be byte-identical");
        assert!(
            fleet_metric("fleet.failovers") > failovers_before,
            "the dead node's arc was reassigned exactly through mark_dead"
        );
        for h in handles {
            h.shutdown();
        }
    });
}

/// A node killed *mid-sweep* (after it completed at least one job):
/// heartbeats and the ladder race to declare it dead, its remaining
/// cells re-route, and the rows still come back byte-identical.
#[test]
fn fleet_mid_sweep_node_kill_fails_over() {
    with_plan(None, || {
        let cells = grid(&[70, 100, 110, 130, 150, 90, 20, 160]);
        let expected = expected_jsons(&cells);
        assert!(
            owners(&cells, 3).iter().filter(|&&o| o == 1).count() >= 2,
            "seed choice: node 1 must own at least two cells so some are \
             still pending when it dies"
        );
        let (mut handles, addrs) = test_fleet(3);
        let failovers_before = fleet_metric("fleet.failovers");
        let victim = handles.remove(1);
        let victim_stats = victim.stats();
        std::thread::scope(|scope| {
            // Killer: wait for the victim to finish one job, then pull
            // the plug under the rest of the sweep (bounded wait, so a
            // starved victim cannot deadlock the test).
            scope.spawn(move || {
                let deadline = std::time::Instant::now() + Duration::from_secs(30);
                while victim_stats.completed.get() == 0 && std::time::Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(2));
                }
                victim.shutdown();
            });
            let reports = nomad_fleet::run_grid_via_fleet_with(
                &addrs,
                cells,
                2,
                &CancelToken::new(),
                fast_fleet_cfg(),
            )
            .expect("mid-sweep failover saves the grid");
            let got: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
            assert_eq!(got, expected, "mid-sweep failover must be byte-identical");
        });
        assert!(
            fleet_metric("fleet.failovers") > failovers_before,
            "killing a node mid-sweep must register a failover"
        );
        for h in handles {
            h.shutdown();
        }
    });
}

/// Torn/failing protocol frames under a two-node fleet: probes error
/// out (treated as cache misses, never as node deaths), submissions
/// ride the reconnect ladder, and the grid recovers byte-identical.
#[test]
fn fleet_torn_probe_frames_recover_byte_identical() {
    let cells = grid(&[80, 81, 50, 51]);
    let expected = expected_jsons(&cells);
    let got = with_plan(
        Some("21:serve.proto.write_frame=torn@0.15,serve.proto.read_frame=io@0.1"),
        || {
            let (handles, addrs) = test_fleet(2);
            let cfg = nomad_fleet::FleetConfig {
                // Keep the heartbeat out of the torn-frame blast radius:
                // this test is about probe/submit recovery, not spurious
                // heartbeat deaths (those are fine, just a different test).
                heartbeat_interval: Duration::from_millis(200),
                heartbeat_misses: 8,
                client: fast_cfg(),
                ..nomad_fleet::FleetConfig::default()
            };
            let reports =
                nomad_fleet::run_grid_via_fleet_with(&addrs, cells, 2, &CancelToken::new(), cfg)
                    .expect("torn frames recover");
            for h in handles {
                h.shutdown();
            }
            reports.iter().map(|r| r.to_json()).collect::<Vec<_>>()
        },
    );
    assert_eq!(
        got, expected,
        "torn fleet frames must recover byte-identical"
    );
    assert!(
        nomad_faults::injected_total() > 0,
        "the plan must have fired"
    );
}

/// Faults at the fleet's own sites — corrupted routing decisions and
/// abandoned steal attempts — are harmless by construction (jobs are
/// content-addressed; any node computes the same bytes), and the rows
/// prove it.
#[test]
fn fleet_route_and_steal_faults_stay_byte_identical() {
    let cells = grid(&[90, 91, 100, 101, 160, 161]);
    let expected = expected_jsons(&cells);
    let got = with_plan(Some("33:fleet.route=io@0.5,fleet.steal=io@0.5"), || {
        let (handles, addrs) = test_fleet(3);
        let reports = nomad_fleet::run_grid_via_fleet_with(
            &addrs,
            cells,
            4,
            &CancelToken::new(),
            fast_fleet_cfg(),
        )
        .expect("fleet-site faults are harmless");
        for h in handles {
            h.shutdown();
        }
        reports.iter().map(|r| r.to_json()).collect::<Vec<_>>()
    });
    assert_eq!(got, expected, "fleet-site faults must not change the rows");
    assert!(
        nomad_faults::injected_total() > 0,
        "the plan must have fired"
    );
}

// ---------------------------------------------------------------------------
// Overload chaos: the `serve.admit` and `fleet.breaker` fault sites —
// forced rejections and forced breaker failures must degrade goodput
// gracefully, never correctness.
// ---------------------------------------------------------------------------

/// Injected admission rejections (`serve.admit=io`) force `Overloaded`
/// answers as if the server were saturated; the client's backpressure
/// retry loop heals them, the grid recovers byte-identical, and every
/// forced rejection is witnessed by `overload.admit_shed`.
#[test]
fn overload_injected_admit_rejections_heal_byte_identical() {
    let cells = grid(&[200, 201, 202]);
    let expected = expected_jsons(&cells);
    let (got, shed_delta) = with_plan(Some("13:serve.admit=io@0.5"), || {
        let before = nomad_obs::overload()
            .value("overload.admit_shed")
            .expect("counter registered");
        let handle = test_server(None);
        let addr = handle.local_addr().to_string();
        let reports = run_grid_via_jobs_with(&addr, cells, 2, &CancelToken::new(), &fast_cfg())
            .expect("backpressure retries heal the grid");
        handle.shutdown();
        let after = nomad_obs::overload()
            .value("overload.admit_shed")
            .expect("counter registered");
        (
            reports.iter().map(|r| r.to_json()).collect::<Vec<_>>(),
            after - before,
        )
    });
    assert_eq!(got, expected, "forced rejections must heal byte-identical");
    assert!(shed_delta > 0, "the plan must actually have rejected work");
}

/// Admission panics (`serve.admit=panic`) kill the connection handler
/// mid-admission; the client sees a dropped connection, rides its
/// reconnect ladder, and the grid still recovers byte-identical.
#[test]
fn overload_admit_panics_heal_byte_identical() {
    let cells = grid(&[210, 211, 212]);
    let expected = expected_jsons(&cells);
    let (got, injected) = with_plan(Some("17:serve.admit=panic@0.6"), || {
        let before = nomad_faults::injected_total();
        let handle = test_server(None);
        let addr = handle.local_addr().to_string();
        let reports = run_grid_via_jobs_with(&addr, cells, 2, &CancelToken::new(), &fast_cfg())
            .expect("reconnect ladder heals admission panics");
        handle.shutdown();
        (
            reports.iter().map(|r| r.to_json()).collect::<Vec<_>>(),
            nomad_faults::injected_total() - before,
        )
    });
    assert_eq!(got, expected, "admission panics must heal byte-identical");
    assert!(injected > 0, "the plan must have fired");
}

/// Injected breaker failures (`fleet.breaker=io`) poison the routers'
/// rolling outcome windows until breakers trip; traffic reroutes
/// around the "unhealthy" nodes without declaring them dead, and the
/// grid — jobs themselves are healthy — stays byte-identical.
#[test]
fn overload_injected_breaker_failures_reroute_byte_identical() {
    let cells = grid(&[220, 221, 222, 223]);
    let expected = expected_jsons(&cells);
    let (got, trips_delta) = with_plan(Some("19:fleet.breaker=io@0.8"), || {
        let before = nomad_obs::overload()
            .value("overload.breaker_trips")
            .expect("counter registered");
        let (handles, addrs) = test_fleet(2);
        let cfg = nomad_fleet::FleetConfig {
            breaker: nomad_fleet::BreakerConfig {
                window: 8,
                fail_threshold: 2,
                cooldown: Duration::from_millis(20),
                latency_threshold: Duration::ZERO,
            },
            ..fast_fleet_cfg()
        };
        let reports =
            nomad_fleet::run_grid_via_fleet_with(&addrs, cells, 2, &CancelToken::new(), cfg)
                .expect("breaker reroutes are harmless to correctness");
        for h in handles {
            h.shutdown();
        }
        let after = nomad_obs::overload()
            .value("overload.breaker_trips")
            .expect("counter registered");
        (
            reports.iter().map(|r| r.to_json()).collect::<Vec<_>>(),
            after - before,
        )
    });
    assert_eq!(got, expected, "breaker reroutes must stay byte-identical");
    assert!(
        trips_delta > 0,
        "an 80% forced-failure rate over a 2-of-8 window must trip a breaker"
    );
}

/// Injected heartbeat misses (`fleet.member`) past the threshold kill
/// a perfectly healthy node: its arc reassigns, the grid survives, and
/// both the misses and the failover are observable.
#[test]
fn fleet_injected_heartbeat_misses_fail_over() {
    let cells = grid(&[100, 101, 0, 1]);
    let expected = expected_jsons(&cells);
    let misses_before = fleet_metric("fleet.heartbeat_misses");
    let failovers_before = fleet_metric("fleet.failovers");
    let got = with_plan(Some("11:fleet.member=io"), || {
        let (handles, addrs) = test_fleet(2);
        let reports = nomad_fleet::run_grid_via_fleet_with(
            &addrs,
            cells,
            2,
            &CancelToken::new(),
            fast_fleet_cfg(),
        )
        .expect("injected member faults are survivable");
        for h in handles {
            h.shutdown();
        }
        reports.iter().map(|r| r.to_json()).collect::<Vec<_>>()
    });
    assert_eq!(
        got, expected,
        "heartbeat-driven failover must be byte-identical"
    );
    assert!(
        fleet_metric("fleet.heartbeat_misses") > misses_before,
        "injected member faults must register as missed heartbeats"
    );
    assert!(
        fleet_metric("fleet.failovers") >= failovers_before,
        "failover count never regresses"
    );
}
