//! End-to-end service tests over localhost TCP (ephemeral ports).

use nomad_serve::proto::{JobSpec, Response};
use nomad_serve::{serve, Client, ServerConfig};
use nomad_sim::runner::{self, Cell};
use nomad_sim::{SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;
use std::time::Duration;

fn small_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::scaled(2);
    cfg.dc_capacity = 8 * 1024 * 1024;
    cfg
}

fn job(spec: SchemeSpec, workload: WorkloadProfile, seed: u64) -> JobSpec {
    JobSpec {
        cfg: small_cfg(),
        spec,
        profile: workload,
        instructions: 8_000,
        warmup: 1_000,
        seed,
    }
}

fn test_server(workers: usize, queue_capacity: usize) -> nomad_serve::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        job_timeout: Duration::from_secs(60),
        retry_budget: 2,
        cache_dir: None,
        overload: Default::default(),
    })
    .expect("bind ephemeral port")
}

/// The headline acceptance test: four concurrent clients each submit
/// the same cell twice. Exactly one simulation runs; every other
/// submission is served from the cache or coalesced (verified via the
/// `/stats` hit counter), and the returned report is byte-identical to
/// an in-process `run_one`.
#[test]
fn concurrent_identical_submissions_run_once_and_match_in_process() {
    let handle = test_server(2, 32);
    let addr = handle.local_addr();
    let spec = job(SchemeSpec::Nomad, WorkloadProfile::tc(), 7);

    let jsons: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let spec = spec.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    for _ in 0..2 {
                        match client.submit(&spec).expect("submit") {
                            Response::Report { report, .. } => out.push(report.to_json()),
                            other => panic!("expected report, got {other:?}"),
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    // Byte-identical to running the same job in-process.
    let local = spec.run_local().to_json();
    assert_eq!(jsons.len(), 8);
    for j in &jsons {
        assert_eq!(j, &local, "served report must be byte-identical");
    }

    // Exactly one execution; the other seven submissions hit.
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_submitted, 8);
    assert_eq!(stats.cache_misses, 1, "only the first submission runs");
    assert_eq!(stats.cache_hits, 7, "stats: {stats:?}");
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.cache_entries, 1);
    assert_eq!(stats.worker_utilization.len(), 2);

    // The registry-backed rows agree with the convenience fields and
    // use the documented `serve.*` names.
    assert_eq!(stats.counter("serve.jobs.submitted"), Some(8));
    assert_eq!(stats.counter("serve.jobs.completed"), Some(1));
    assert_eq!(stats.counter("serve.cache.hits"), Some(7));
    assert_eq!(stats.counter("serve.cache.misses"), Some(1));
    assert_eq!(stats.counter("serve.cache.entries"), Some(1));
    assert!(
        stats.counter("serve.job.latency_ms.count").is_some(),
        "histogram rows expand into .count/.p50/.p99"
    );

    // The executed job left a span exportable as a Chrome trace.
    let trace = handle.trace_json();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"name\":\"job\""));
    handle.shutdown();
}

/// A job that panics inside the simulator is retried up to the budget,
/// reported as `Failed`, and must not take the service down.
#[test]
fn panicking_job_fails_cleanly_and_service_survives() {
    let handle = test_server(1, 8);
    let addr = handle.local_addr();

    // An inconsistent profile: `derive()` asserts on it inside
    // `run_one`, on the worker's attempt thread.
    let mut poisoned = job(SchemeSpec::Nomad, WorkloadProfile::tc(), 1);
    poisoned.profile.spatial_run = 1_000_000;

    let mut client = Client::connect(addr).expect("connect");
    match client.submit(&poisoned).expect("submit") {
        Response::Failed { error, attempts } => {
            assert_eq!(attempts, 3, "1 attempt + 2 retries");
            assert!(error.contains("panicked"), "{error}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }

    // Failures are not cached: submitting again re-runs (and fails
    // again), rather than replaying a cached failure.
    match client.submit(&poisoned).expect("second submit") {
        Response::Failed { attempts, .. } => assert_eq!(attempts, 3),
        other => panic!("expected Failed, got {other:?}"),
    }

    // The service is still healthy for other work.
    client.ping().expect("ping after failures");
    let healthy = job(SchemeSpec::Baseline, WorkloadProfile::tc(), 1);
    match client.submit(&healthy).expect("healthy submit") {
        Response::Report { cached, report } => {
            assert!(!cached);
            assert!(report.cycles > 0);
        }
        other => panic!("expected report, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_failed, 2);
    assert_eq!(stats.jobs_completed, 1);
    handle.shutdown();
}

/// With no workers draining, the queue fills and further submissions
/// are rejected with a retry hint; shutdown answers the stuck jobs.
#[test]
fn full_queue_rejects_with_backpressure() {
    let handle = test_server(0, 2);
    let addr = handle.local_addr();

    // Two distinct jobs occupy the whole queue (no workers run them);
    // their submitters block awaiting results.
    let blocked: Vec<_> = (0..2)
        .map(|i| {
            let j = job(SchemeSpec::Baseline, WorkloadProfile::tc(), 100 + i);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.submit(&j).expect("submit")
            })
        })
        .collect();

    // Wait until both jobs are queued.
    let mut client = Client::connect(addr).expect("connect");
    loop {
        let stats = client.stats().expect("stats");
        if stats.queue_depth == 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // A third distinct job must be rejected, with a backoff hint.
    let extra = job(SchemeSpec::Baseline, WorkloadProfile::tc(), 999);
    match client.submit(&extra).expect("submit") {
        Response::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(client.stats().expect("stats").jobs_rejected, 1);

    // Shutdown fails the queued jobs instead of leaving their
    // submitters hanging.
    handle.shutdown();
    for h in blocked {
        match h.join().expect("blocked client thread") {
            Response::Failed { error, attempts } => {
                assert_eq!(attempts, 0, "job never started");
                assert!(error.contains("shutting down"), "{error}");
            }
            other => panic!("expected Failed on shutdown, got {other:?}"),
        }
    }
}

/// `run_grid_via` is a drop-in for the in-process `run_grid`: same
/// reports, same (input) order.
#[test]
fn grid_via_service_matches_in_process_grid() {
    let handle = test_server(3, 32);
    let addr = handle.local_addr().to_string();

    let cells: Vec<Cell> = [SchemeSpec::Baseline, SchemeSpec::Tid, SchemeSpec::Nomad]
        .into_iter()
        .flat_map(|spec| {
            [WorkloadProfile::tc(), WorkloadProfile::mcf()]
                .into_iter()
                .map(move |profile| Cell {
                    cfg: small_cfg(),
                    spec: spec.clone(),
                    profile,
                    instructions: 6_000,
                    warmup: 500,
                    seed: 11,
                })
        })
        .collect();

    let local = runner::run_grid(cells.clone());
    let served = nomad_serve::run_grid_via(&addr, cells).expect("grid via service");

    assert_eq!(local.len(), served.len());
    for (l, s) in local.iter().zip(&served) {
        assert_eq!(l.workload, s.workload);
        assert_eq!(l.scheme, s.scheme);
        assert_eq!(l.to_json(), s.to_json(), "reports must be byte-identical");
    }
    handle.shutdown();
}
