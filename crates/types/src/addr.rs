//! Address newtypes.
//!
//! The simulator deals with three distinct address spaces that must never
//! be confused:
//!
//! * the **virtual** address space of the application ([`VirtAddr`],
//!   page-granular form [`Vpn`]),
//! * the **off-package physical** address space of the backing DDR4
//!   memory ([`PhysAddr`], page-granular form [`Pfn`]),
//! * the **on-package cache** address space of the HBM DRAM cache
//!   ([`CacheAddr`], frame-granular form [`Cfn`]).
//!
//! OS-managed DRAM caches work precisely by substituting a [`Cfn`] for a
//! [`Pfn`] inside a page-table entry; keeping the types separate prevents
//! an entire class of mix-up bugs in the schemes.

use crate::geom::Geometry;
use crate::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// The paper's block/page geometry, the single source of shift/mask
/// truth for every extraction below.
const GEOM: Geometry = Geometry::PAPER;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Raw 64-bit value of this address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Offset of this address within its 4 KiB page.
            #[inline]
            pub const fn page_offset(self) -> PageOffset {
                PageOffset(GEOM.page.rem(self.0))
            }

            /// 64-byte block-aligned form of this address.
            #[inline]
            pub const fn block_aligned(self) -> $name {
                $name(self.0 & !GEOM.block.mask())
            }

            /// Index of the 64-byte sub-block within the page
            /// (0..=63); this is the `SI` field stored in PCSHR
            /// sub-entries.
            #[inline]
            pub const fn sub_block(self) -> SubBlockIdx {
                SubBlockIdx(GEOM.blocks_per_page.rem(GEOM.block.div(self.0)) as u8)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }

        impl core::fmt::LowerHex for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                core::fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

macro_rules! frame_newtype {
    ($(#[$doc:meta])* $name:ident => $addr:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Raw frame/page number.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Base address of the frame in its address space.
            #[inline]
            pub const fn base(self) -> $addr {
                $addr(GEOM.page.mul(self.0))
            }

            /// Address of byte `offset` within this frame.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `offset.0 >= PAGE_SIZE`.
            #[inline]
            pub fn with_offset(self, offset: PageOffset) -> $addr {
                debug_assert!(offset.0 < PAGE_SIZE);
                $addr(GEOM.page.mul(self.0) | offset.0)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }

        impl From<$name> for u64 {
            fn from(n: $name) -> u64 {
                n.0
            }
        }

        impl $addr {
            /// Page/frame number containing this address.
            #[inline]
            pub const fn frame(self) -> $name {
                $name(GEOM.page.div(self.0))
            }
        }
    };
}

addr_newtype! {
    /// A virtual address issued by the application trace.
    VirtAddr
}
addr_newtype! {
    /// A physical address in the **off-package** (DDR4) memory space.
    PhysAddr
}
addr_newtype! {
    /// An address in the **on-package** (HBM) DRAM-cache space.
    CacheAddr
}

frame_newtype! {
    /// Virtual page number (virtual address >> 12).
    Vpn => VirtAddr
}
frame_newtype! {
    /// Physical frame number in off-package memory; the quantity a PTE
    /// holds for an uncached page.
    Pfn => PhysAddr
}
frame_newtype! {
    /// Cache frame number in the on-package DRAM cache; the quantity an
    /// OS-managed scheme substitutes into the PTE as the DC tag.
    Cfn => CacheAddr
}

/// Byte offset within a 4 KiB page (0..4096).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageOffset(pub u64);

impl PageOffset {
    /// The 64-byte sub-block this offset falls into (0..=63).
    #[inline]
    pub const fn sub_block(self) -> SubBlockIdx {
        SubBlockIdx(GEOM.blocks_per_page.rem(GEOM.block.div(self.0)) as u8)
    }
}

/// Index of a 64-byte sub-block within a page (0..=63); the `SI`/`PI`
/// fields of PCSHRs are 6-bit encodings of this value.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SubBlockIdx(pub u8);

impl SubBlockIdx {
    /// Number of distinct sub-block indices (64).
    pub const COUNT: usize = 64;

    /// Index as usize, guaranteed `< 64`.
    #[inline]
    pub const fn index(self) -> usize {
        (self.0 & 0x3f) as usize
    }

    /// Bit mask with only this sub-block's bit set; used against the
    /// R/B/W vectors of a PCSHR.
    #[inline]
    pub const fn bit(self) -> u64 {
        1u64 << (self.0 & 0x3f)
    }

    /// Byte offset of this sub-block within its page.
    #[inline]
    pub const fn page_offset(self) -> PageOffset {
        PageOffset(GEOM.block.mul((self.0 & 0x3f) as u64))
    }
}

impl core::fmt::Display for SubBlockIdx {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "sb{}", self.0)
    }
}

/// A 64-byte-aligned block address in an arbitrary address space,
/// used by the generic SRAM cache model which is indifferent to whether
/// it caches physical or cache-space addresses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Block address containing raw byte address `addr`.
    #[inline]
    pub const fn containing(addr: u64) -> Self {
        BlockAddr(GEOM.block.div(addr))
    }

    /// First byte address of the block.
    #[inline]
    pub const fn base(self) -> u64 {
        GEOM.block.mul(self.0)
    }

    /// Page number (frame-agnostic) containing the block.
    #[inline]
    pub const fn page(self) -> u64 {
        GEOM.blocks_per_page.div(self.0)
    }

    /// Sub-block index within the page.
    #[inline]
    pub const fn sub_block(self) -> SubBlockIdx {
        SubBlockIdx(GEOM.blocks_per_page.rem(self.0) as u8)
    }
}

impl core::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "BlockAddr({:#x})", self.base())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_round_trip() {
        let pa = PhysAddr(0x1234_5678);
        assert_eq!(pa.frame().with_offset(pa.page_offset()), pa);
        let ca = CacheAddr(0xdead_beef);
        assert_eq!(ca.frame().with_offset(ca.page_offset()), ca);
    }

    #[test]
    fn sub_block_extraction() {
        let a = VirtAddr(4096 + 3 * 64 + 17);
        assert_eq!(a.sub_block(), SubBlockIdx(3));
        assert_eq!(a.page_offset().0, 3 * 64 + 17);
        assert_eq!(a.block_aligned().0, 4096 + 3 * 64);
    }

    #[test]
    fn sub_block_bits_are_distinct() {
        let mut seen = 0u64;
        for i in 0..64u8 {
            let b = SubBlockIdx(i).bit();
            assert_eq!(seen & b, 0);
            seen |= b;
        }
        assert_eq!(seen, u64::MAX);
    }

    #[test]
    fn block_addr_page_and_base() {
        let b = BlockAddr::containing(0x2_0040);
        assert_eq!(b.base(), 0x2_0040);
        assert_eq!(b.page(), 0x20);
        assert_eq!(b.sub_block(), SubBlockIdx(1));
    }

    proptest! {
        #[test]
        fn prop_frame_offset_roundtrip(raw in 0u64..(1 << 48)) {
            let pa = PhysAddr(raw);
            prop_assert_eq!(pa.frame().with_offset(pa.page_offset()), pa);
        }

        #[test]
        fn prop_block_align_idempotent(raw in 0u64..(1 << 48)) {
            let a = VirtAddr(raw).block_aligned();
            prop_assert_eq!(a.block_aligned(), a);
            prop_assert_eq!(a.raw() % 64, 0);
        }

        #[test]
        fn prop_sub_block_consistent(raw in 0u64..(1 << 48)) {
            let a = PhysAddr(raw);
            prop_assert_eq!(a.sub_block(), a.page_offset().sub_block());
            let b = BlockAddr::containing(raw);
            prop_assert_eq!(b.sub_block(), a.sub_block());
        }
    }
}
