//! Event-kernel primitives: next-activity queries and cooperative
//! cancellation.
//!
//! The simulator's timing loop used to tick every component every CPU
//! cycle. The event kernel instead asks each component when it could
//! next *do* anything and jumps straight there. Two pieces live here so
//! every timing crate can share them without depending on the system
//! crate:
//!
//! * [`NextActivity`] — the "when are you next busy?" query.
//! * [`CancelToken`] — a shared flag polled at event boundaries so a
//!   long simulation can be abandoned cooperatively (e.g. a
//!   `nomad-serve` job attempt that blew its wall-clock budget).

use crate::Cycle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// When could this component next make progress on its own?
///
/// # Contract
///
/// `next_activity_at(now)` is called *after* the component has been
/// ticked at `now` (so `now` itself is fully processed) and returns:
///
/// * `Some(t)` with `t > now` — ticking the component before `t` would
///   do nothing beyond constant per-cycle accounting, and the component
///   **must** be ticked again at `t` at the latest. Returning a `t`
///   *earlier* than the component's true next activity is always safe
///   (the kernel just ticks it and asks again); returning one *later*
///   is a correctness bug — the skip-parity suite exists to catch it.
/// * `None` — the component is purely reactive: it will not change
///   state until someone pushes new work into it. The kernel may skip
///   it indefinitely.
///
/// Components whose per-cycle work accrues statistics that appear in a
/// `RunReport` (e.g. a core's stall-cycle breakdown) must provide a
/// bulk "idle advance" so the kernel can account the skipped cycles
/// identically to dense ticking.
pub trait NextActivity {
    /// Earliest cycle strictly after `now` at which this component
    /// could make progress, or `None` if it is quiescent until poked.
    fn next_activity_at(&self, now: Cycle) -> Option<Cycle>;
}

/// A shared cancellation flag for cooperative abandonment of a
/// simulation.
///
/// Cloning the token clones the *handle*; all clones observe the same
/// flag. The simulation loop polls [`is_cancelled`](Self::is_cancelled)
/// at event boundaries (every few thousand cycles at worst), so a
/// cancelled run returns promptly instead of burning CPU to completion.
/// Relaxed ordering suffices: the flag is a latch, not a
/// synchronization edge.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latch the token; every holder observes cancellation from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_latches_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
