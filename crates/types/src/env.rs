//! One shared parser for every `NOMAD_*` environment knob.
//!
//! Before this module existed, each crate hand-rolled its own
//! `std::env::var(..).ok().and_then(..)` chain with subtly different
//! edge-case behavior: some clamped zero to one, some silently fell
//! back on garbage, some warned. This module is the single place those
//! decisions live:
//!
//! * **Unset or empty/whitespace-only** values always mean "use the
//!   default" — silently, because absence is the normal state.
//! * **Garbage** (unparseable text, or a negative number fed to an
//!   unsigned knob) falls back to the default *with a warning on
//!   stderr*, so a typo in a deployment script is visible instead of
//!   silently reverting behavior.
//! * **Out-of-range** values are clamped into the documented range,
//!   also with a warning.
//!
//! Values are trimmed before parsing, so `NOMAD_JOBS=" 4 "` works.
//! Callers that need non-numeric semantics (file paths, fault plans)
//! should use [`raw`] and keep their own parsing.

use std::time::Duration;

/// The raw value of `name`, trimmed — `None` when the variable is
/// unset, empty, whitespace-only, or not valid UTF-8.
pub fn raw(name: &str) -> Option<String> {
    let v = std::env::var(name).ok()?;
    let t = v.trim();
    if t.is_empty() {
        None
    } else {
        Some(t.to_string())
    }
}

fn warn(name: &str, value: &str, what: &str, fallback: u64) {
    eprintln!("warning: {name}={value:?} {what}; using {fallback}");
}

/// Parse an already-fetched string as `u64` with a warning on garbage.
///
/// This is the building block behind [`u64_or`], exposed separately so
/// call sites that must distinguish *unset* from *garbage* (e.g.
/// `NOMAD_JOBS`, whose default is computed from the machine) can fetch
/// with [`raw`] and still share the parse-and-warn behavior.
pub fn parse_u64(name: &str, value: &str, default: u64) -> u64 {
    match value.trim().parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            warn(name, value, "is not a non-negative integer", default);
            default
        }
    }
}

/// `name` as `u64`: unset/empty means `default`, garbage warns and
/// means `default`.
pub fn u64_or(name: &str, default: u64) -> u64 {
    match raw(name) {
        Some(v) => parse_u64(name, &v, default),
        None => default,
    }
}

/// [`u64_or`], then clamped into `[min, max]` with a warning when the
/// parsed value was outside the range. The default itself is trusted
/// and never clamped or warned about.
pub fn u64_clamped(name: &str, default: u64, min: u64, max: u64) -> u64 {
    let n = u64_or(name, default);
    if n == default {
        return default;
    }
    let clamped = n.clamp(min, max);
    if clamped != n {
        warn(
            name,
            &n.to_string(),
            &format!("is outside {min}..={max}"),
            clamped,
        );
    }
    clamped
}

/// `name` as `usize`, clamped into `[min, max]` (see [`u64_clamped`]).
pub fn usize_clamped(name: &str, default: usize, min: usize, max: usize) -> usize {
    u64_clamped(name, default as u64, min as u64, max as u64) as usize
}

/// `name` as a millisecond count, returned as a [`Duration`]
/// (`default_ms` on unset/garbage). Zero is allowed — knobs where zero
/// means "disabled" document that themselves.
pub fn ms_or(name: &str, default_ms: u64) -> Duration {
    Duration::from_millis(u64_or(name, default_ms))
}

/// `name` as a millisecond count clamped into `[min_ms, max_ms]`.
pub fn ms_clamped(name: &str, default_ms: u64, min_ms: u64, max_ms: u64) -> Duration {
    Duration::from_millis(u64_clamped(name, default_ms, min_ms, max_ms))
}

/// `name` as a boolean. Accepted spellings (case-insensitive):
/// `0`/`false`/`off`/`no` and `1`/`true`/`on`/`yes`. Unset/empty means
/// `default`; anything else warns and means `default`.
pub fn bool_or(name: &str, default: bool) -> bool {
    let Some(v) = raw(name) else {
        return default;
    };
    match v.to_ascii_lowercase().as_str() {
        "0" | "false" | "off" | "no" => false,
        "1" | "true" | "on" | "yes" => true,
        _ => {
            warn(name, &v, "is not a boolean", default as u64);
            default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a unique variable name: the process environment is
    // global, and `cargo test` runs tests concurrently.

    #[test]
    fn unset_and_empty_mean_default() {
        assert_eq!(u64_or("NOMAD_ENVTEST_UNSET", 7), 7);
        std::env::set_var("NOMAD_ENVTEST_EMPTY", "");
        assert_eq!(u64_or("NOMAD_ENVTEST_EMPTY", 7), 7);
        std::env::set_var("NOMAD_ENVTEST_BLANK", "   ");
        assert_eq!(u64_or("NOMAD_ENVTEST_BLANK", 7), 7);
        assert_eq!(raw("NOMAD_ENVTEST_BLANK"), None);
    }

    #[test]
    fn garbage_and_negative_fall_back_to_default() {
        std::env::set_var("NOMAD_ENVTEST_GARBAGE", "lots");
        assert_eq!(u64_or("NOMAD_ENVTEST_GARBAGE", 3), 3);
        std::env::set_var("NOMAD_ENVTEST_NEG", "-2");
        assert_eq!(u64_or("NOMAD_ENVTEST_NEG", 3), 3);
        std::env::set_var("NOMAD_ENVTEST_FLOAT", "1.5");
        assert_eq!(u64_or("NOMAD_ENVTEST_FLOAT", 3), 3);
    }

    #[test]
    fn zero_parses_and_clamping_applies() {
        std::env::set_var("NOMAD_ENVTEST_ZERO", "0");
        assert_eq!(u64_or("NOMAD_ENVTEST_ZERO", 9), 0);
        // ...and a clamped knob pulls zero up to its floor.
        std::env::set_var("NOMAD_ENVTEST_ZEROCLAMP", "0");
        assert_eq!(u64_clamped("NOMAD_ENVTEST_ZEROCLAMP", 9, 1, 100), 1);
        std::env::set_var("NOMAD_ENVTEST_HIGH", "5000");
        assert_eq!(u64_clamped("NOMAD_ENVTEST_HIGH", 9, 1, 100), 100);
    }

    #[test]
    fn whitespace_is_trimmed_before_parsing() {
        std::env::set_var("NOMAD_ENVTEST_PAD", "  42 ");
        assert_eq!(u64_or("NOMAD_ENVTEST_PAD", 1), 42);
        assert_eq!(usize_clamped("NOMAD_ENVTEST_PAD", 1, 1, 64), 42);
    }

    #[test]
    fn durations_come_back_in_millis() {
        std::env::set_var("NOMAD_ENVTEST_MS", "250");
        assert_eq!(ms_or("NOMAD_ENVTEST_MS", 50), Duration::from_millis(250));
        assert_eq!(
            ms_clamped("NOMAD_ENVTEST_MS", 50, 1, 100),
            Duration::from_millis(100)
        );
        std::env::set_var("NOMAD_ENVTEST_MS_BAD", "soon");
        assert_eq!(ms_or("NOMAD_ENVTEST_MS_BAD", 50), Duration::from_millis(50));
    }

    #[test]
    fn booleans_accept_the_documented_spellings() {
        for (v, want) in [
            ("0", false),
            ("false", false),
            ("OFF", false),
            ("no", false),
            ("1", true),
            ("true", true),
            ("On", true),
            ("YES", true),
        ] {
            std::env::set_var("NOMAD_ENVTEST_BOOL", v);
            assert_eq!(bool_or("NOMAD_ENVTEST_BOOL", !want), want, "value {v:?}");
        }
        std::env::set_var("NOMAD_ENVTEST_BOOL_BAD", "maybe");
        assert!(bool_or("NOMAD_ENVTEST_BOOL_BAD", true));
        assert!(!bool_or("NOMAD_ENVTEST_BOOL_BAD", false));
        assert!(bool_or("NOMAD_ENVTEST_BOOL_UNSET", true));
    }

    #[test]
    fn parse_u64_shares_semantics_with_u64_or() {
        assert_eq!(parse_u64("NOMAD_ENVTEST_P", " 8 ", 2), 8);
        assert_eq!(parse_u64("NOMAD_ENVTEST_P", "x", 2), 2);
        assert_eq!(parse_u64("NOMAD_ENVTEST_P", "-1", 2), 2);
    }
}
