//! Statistics primitives: counters, running means and log-scale latency
//! histograms.
//!
//! Every metric the paper reports (IPC, stall-cycle ratios, average DC
//! access time, bandwidth breakdowns, tag-management latency, row-buffer
//! hit rate) is built from these. All stats types support
//! [`reset`](Counter::reset) so that a warm-up phase can be excluded
//! from measurement, mirroring the paper's fast-forward-to-ROI protocol.

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Add `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Add one event.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Zero the counter (end of warm-up).
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl core::fmt::Display for Counter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean of a stream of samples (e.g. latencies in cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMean {
    sum: f64,
    count: u64,
    max: u64,
    min: u64,
}

impl RunningMean {
    /// A mean with no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        self.sum += sample as f64;
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
    }

    /// Mean of all samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample, or 0 if none were recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample, or 0 if none were recorded.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Forget all samples (end of warm-up).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl core::fmt::Display for RunningMean {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1} (n={})", self.mean(), self.count)
    }
}

/// A power-of-two-bucketed histogram for latency distributions.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 counts
/// samples of 0 and 1. 48 buckets cover any plausible cycle count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    const BUCKETS: usize = 48;

    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; Self::BUCKETS],
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        let idx = (64 - sample.max(1).leading_zeros() as usize - 1).min(Self::BUCKETS - 1);
        self.buckets[idx] += 1;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate quantile `q` in `[0, 1]`, reported as the lower bound
    /// of the bucket containing it. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= threshold.max(1) {
                return 1u64 << i;
            }
        }
        1u64 << (Self::BUCKETS - 1)
    }

    /// Iterator over `(bucket_lower_bound, count)` pairs for non-empty
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    /// Forget all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
    }
}

impl core::fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} p50<{} p99<{}",
            self.count(),
            self.quantile(0.5) << 1,
            self.quantile(0.99) << 1
        )
    }
}

/// Ratio helper: `num / den`, or 0.0 when `den == 0`.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Bytes-per-second from a byte count, a cycle count and a clock in GHz.
#[inline]
pub fn gbps(bytes: u64, cycles: u64, clock_ghz: f64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = cycles as f64 / (clock_ghz * 1e9);
    bytes as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn running_mean_tracks_min_max() {
        let mut m = RunningMean::new();
        for s in [10, 2, 30] {
            m.record(s);
        }
        assert_eq!(m.mean(), 14.0);
        assert_eq!(m.min(), 2);
        assert_eq!(m.max(), 30);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn empty_mean_is_zero() {
        let m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), 0);
        assert_eq!(m.max(), 0);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(1, 2), (2, 2), (1024, 1)]);
    }

    #[test]
    fn histogram_quantiles_monotonic() {
        let mut h = LogHistogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    #[test]
    fn gbps_sanity() {
        // 64 bytes per cycle at 1 GHz = 64 GB/s.
        let g = gbps(64_000, 1_000, 1.0);
        assert!((g - 64.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_zero_den() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(1, 2), 0.5);
    }

    proptest! {
        #[test]
        fn prop_running_mean_bounded(samples in proptest::collection::vec(0u64..1_000_000, 1..100)) {
            let mut m = RunningMean::new();
            for &s in &samples {
                m.record(s);
            }
            let mean = m.mean();
            prop_assert!(mean >= m.min() as f64 - 1e-9);
            prop_assert!(mean <= m.max() as f64 + 1e-9);
            prop_assert_eq!(m.count(), samples.len() as u64);
        }

        #[test]
        fn prop_histogram_count_matches(samples in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
            let mut h = LogHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            prop_assert_eq!(h.count(), samples.len() as u64);
        }
    }
}
