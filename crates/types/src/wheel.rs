//! A hierarchical timing wheel over a small, fixed set of event
//! sources.
//!
//! The event kernel in `nomad-sim` tracks "when could this component do
//! something again?" for every core, cache level, scheme and DRAM
//! device. The kernel used to recompute a min over all of them on every
//! decision point; the wheel turns that into an indexed calendar:
//! sources *push* their next-activity cycle into the wheel the moment
//! it changes ([`TimingWheel::set`]), and the kernel reads the earliest
//! pending deadline in O(1) bitmap scans ([`TimingWheel::peek_next`]).
//!
//! # Layout
//!
//! Deadlines live in three places, always backed by one authoritative
//! per-source array:
//!
//! - **near wheel** — [`BUCKETS`] buckets of [`SLOT_SPAN`] cycles each,
//!   covering the window `[origin, origin + WINDOW)`. Each bucket is a
//!   `u64` bitmap of the sources whose deadline falls inside it, and a
//!   top-level `occupied` word maps the non-empty buckets, so the
//!   earliest bucket is one `trailing_zeros` away.
//! - **overflow heap** — deadlines at or beyond `origin + WINDOW` wait
//!   in a min-heap. Entries are invalidated lazily: an entry is live
//!   only while it still matches the source's authoritative deadline.
//! - **deadline array** — `deadline[src]` is the source of truth;
//!   bitmap and heap entries are an index over it, never a copy to
//!   trust on their own.
//!
//! The window slides forward in whole-window steps
//! ([`TimingWheel::advance_to`]); a slide re-places every live source,
//! which is O([`MAX_SOURCES`]) and amortized over thousands of cycles.
//!
//! Capacity is bounded by [`MAX_SOURCES`] = 64 so every per-source set
//! fits in one machine word — the same bound the DRAM bank masks and
//! the MSHR occupancy words rely on.

use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Maximum number of sources a wheel can track (bitmap word width).
pub const MAX_SOURCES: usize = 64;
/// Buckets in the near window.
pub const BUCKETS: usize = 64;
/// Cycles covered by one bucket.
pub const SLOT_SPAN: u64 = 64;
/// Cycles covered by the whole near window.
pub const WINDOW: u64 = BUCKETS as u64 * SLOT_SPAN;

/// A timing wheel tracking one deadline per source.
///
/// See the [module docs](self) for the layout. All operations are
/// deterministic; the wheel never inspects wall-clock time.
#[derive(Debug)]
pub struct TimingWheel {
    /// Authoritative per-source deadline; `Cycle::MAX` = inactive.
    deadline: [Cycle; MAX_SOURCES],
    /// Bitmap of sources with a deadline (`deadline[s] != MAX`).
    live: u64,
    /// Inclusive start of the near window.
    origin: Cycle,
    /// Bitmap of sources per bucket; bucket `b` covers
    /// `[origin + b·SLOT_SPAN, origin + (b+1)·SLOT_SPAN)`, with
    /// already-due deadlines clamped into bucket 0.
    buckets: [u64; BUCKETS],
    /// Bitmap of non-empty buckets.
    occupied: u64,
    /// Deadlines at or beyond `origin + WINDOW`, min-first. An entry
    /// `(t, s)` is live iff `deadline[s] == t` and `t` is still beyond
    /// the window (stale entries are skipped on pop).
    overflow: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// Number of sources this wheel was created for (≤ MAX_SOURCES).
    sources: usize,
}

impl TimingWheel {
    /// A wheel for `sources` event sources, all initially inactive,
    /// with the near window starting at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics when `sources > MAX_SOURCES`.
    pub fn new(sources: usize) -> Self {
        assert!(
            sources <= MAX_SOURCES,
            "a timing wheel tracks at most {MAX_SOURCES} sources"
        );
        TimingWheel {
            deadline: [Cycle::MAX; MAX_SOURCES],
            live: 0,
            origin: 0,
            buckets: [0; BUCKETS],
            occupied: 0,
            overflow: BinaryHeap::new(),
            sources,
        }
    }

    /// Number of sources the wheel tracks.
    pub fn sources(&self) -> usize {
        self.sources
    }

    /// Forget every deadline and rewind the near window to cycle 0 —
    /// the state of a freshly built wheel, with the overflow heap's
    /// allocation retained (arena reuse across sweep cells).
    pub fn clear(&mut self) {
        self.deadline = [Cycle::MAX; MAX_SOURCES];
        self.live = 0;
        self.origin = 0;
        self.buckets = [0; BUCKETS];
        self.occupied = 0;
        self.overflow.clear();
    }

    /// Bitmap of sources that currently have a deadline.
    pub fn live_mask(&self) -> u64 {
        self.live
    }

    /// The authoritative deadline of `src`, if any.
    pub fn deadline(&self, src: usize) -> Option<Cycle> {
        let t = self.deadline[src];
        (t != Cycle::MAX).then_some(t)
    }

    /// Bucket index for an in-window (or past-due) deadline.
    #[inline]
    fn bucket_of(&self, t: Cycle) -> usize {
        ((t.saturating_sub(self.origin)) / SLOT_SPAN) as usize
    }

    /// Remove `src`'s current near-window placement, if it has one.
    #[inline]
    fn unplace(&mut self, src: usize) {
        let t = self.deadline[src];
        if t == Cycle::MAX {
            return;
        }
        if t < self.origin + WINDOW {
            let b = self.bucket_of(t);
            self.buckets[b] &= !(1u64 << src);
            if self.buckets[b] == 0 {
                self.occupied &= !(1u64 << b);
            }
        }
        // Overflow entries are lazily invalidated: once `deadline[src]`
        // changes, any heap entry recorded for the old value is dead.
    }

    /// Index the (already recorded) deadline of `src` into the near
    /// window or the overflow heap.
    #[inline]
    fn place(&mut self, src: usize) {
        let t = self.deadline[src];
        debug_assert_ne!(t, Cycle::MAX);
        if t < self.origin + WINDOW {
            let b = self.bucket_of(t);
            self.buckets[b] |= 1u64 << src;
            self.occupied |= 1u64 << b;
        } else {
            self.overflow.push(Reverse((t, src as u32)));
        }
    }

    /// Push `src`'s next-activity cycle (or clear it with `None`).
    /// Idempotent: re-pushing the current deadline is a no-op.
    ///
    /// # Panics
    ///
    /// Panics (via indexing) when `src >= MAX_SOURCES`.
    pub fn set(&mut self, src: usize, deadline: Option<Cycle>) {
        debug_assert!(src < self.sources);
        let t = deadline.unwrap_or(Cycle::MAX);
        if self.deadline[src] == t {
            return;
        }
        self.unplace(src);
        self.deadline[src] = t;
        if t == Cycle::MAX {
            self.live &= !(1u64 << src);
        } else {
            self.live |= 1u64 << src;
            self.place(src);
        }
    }

    /// Slide the near window so it starts at `now`, re-indexing every
    /// live source. Amortized O(sources) per window span: callers
    /// invoke this as `now` grows, and it only rebuilds once `now` has
    /// left the first half of the window.
    pub fn advance_to(&mut self, now: Cycle) {
        if now < self.origin + WINDOW / 2 {
            return;
        }
        self.origin = now;
        self.buckets = [0; BUCKETS];
        self.occupied = 0;
        self.overflow.clear();
        let mut live = self.live;
        while live != 0 {
            let src = live.trailing_zeros() as usize;
            live &= live - 1;
            self.place(src);
        }
    }

    /// The earliest deadline across all sources, or `None` when every
    /// source is inactive.
    pub fn peek_next(&mut self) -> Option<Cycle> {
        if self.occupied != 0 {
            // The first non-empty bucket holds the earliest deadlines;
            // read the true values of its members from the array.
            let b = self.occupied.trailing_zeros() as usize;
            let mut members = self.buckets[b];
            debug_assert_ne!(members, 0);
            let mut min = Cycle::MAX;
            while members != 0 {
                let src = members.trailing_zeros() as usize;
                members &= members - 1;
                min = min.min(self.deadline[src]);
            }
            return Some(min);
        }
        // Near window empty: the earliest live overflow entry wins.
        // Pop stale entries (deadline moved or re-indexed) as we go.
        while let Some(&Reverse((t, s))) = self.overflow.peek() {
            if self.deadline[s as usize] == t {
                return Some(t);
            }
            self.overflow.pop();
        }
        debug_assert_eq!(self.live, 0);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference model: a plain deadline vector, min by scan.
    struct Reference {
        deadline: Vec<Option<Cycle>>,
    }

    impl Reference {
        fn new(sources: usize) -> Self {
            Reference {
                deadline: vec![None; sources],
            }
        }
        fn set(&mut self, src: usize, t: Option<Cycle>) {
            self.deadline[src] = t;
        }
        fn peek_next(&self) -> Option<Cycle> {
            self.deadline.iter().flatten().min().copied()
        }
        fn live_mask(&self) -> u64 {
            self.deadline
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_some())
                .fold(0u64, |m, (i, _)| m | (1u64 << i))
        }
    }

    /// splitmix64 step, for a dependency-free seeded stream.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn empty_wheel_has_no_deadline() {
        let mut w = TimingWheel::new(8);
        assert_eq!(w.peek_next(), None);
        assert_eq!(w.live_mask(), 0);
    }

    #[test]
    fn single_source_round_trip() {
        let mut w = TimingWheel::new(4);
        w.set(2, Some(100));
        assert_eq!(w.peek_next(), Some(100));
        assert_eq!(w.deadline(2), Some(100));
        assert_eq!(w.live_mask(), 0b100);
        w.set(2, None);
        assert_eq!(w.peek_next(), None);
        assert_eq!(w.live_mask(), 0);
    }

    #[test]
    fn near_and_overflow_interleave() {
        let mut w = TimingWheel::new(8);
        w.set(0, Some(WINDOW + 5)); // overflow
        w.set(1, Some(10)); // near
        assert_eq!(w.peek_next(), Some(10));
        w.set(1, None);
        assert_eq!(w.peek_next(), Some(WINDOW + 5));
        // Slide the window past the overflow entry; it must re-index.
        w.advance_to(WINDOW);
        assert_eq!(w.peek_next(), Some(WINDOW + 5));
    }

    #[test]
    fn reset_to_same_deadline_is_idempotent() {
        let mut w = TimingWheel::new(8);
        w.set(3, Some(77));
        w.set(3, Some(77));
        w.set(3, Some(77));
        assert_eq!(w.peek_next(), Some(77));
        w.set(3, Some(78));
        assert_eq!(w.peek_next(), Some(78));
    }

    #[test]
    fn past_due_deadlines_stay_visible() {
        let mut w = TimingWheel::new(8);
        w.advance_to(10_000);
        // A deadline behind the window origin clamps into bucket 0 but
        // keeps its true value.
        w.set(1, Some(9_500));
        w.set(2, Some(10_001));
        assert_eq!(w.peek_next(), Some(9_500));
    }

    #[test]
    fn clear_restores_fresh_state() {
        let mut w = TimingWheel::new(8);
        w.set(0, Some(10));
        w.set(1, Some(WINDOW * 2));
        w.advance_to(WINDOW);
        w.clear();
        assert_eq!(w.peek_next(), None);
        assert_eq!(w.live_mask(), 0);
        // Post-clear behaviour matches a fresh wheel from cycle 0.
        w.set(2, Some(5));
        assert_eq!(w.peek_next(), Some(5));
    }

    #[test]
    #[should_panic(expected = "at most 64 sources")]
    fn rejects_too_many_sources() {
        let _ = TimingWheel::new(65);
    }

    /// Randomized differential test: arbitrary set/clear/advance/peek
    /// sequences must match the sorted-scan reference model exactly.
    #[test]
    fn differential_vs_reference_model() {
        for seed in 1u64..=8 {
            let sources = 1 + (seed as usize * 7) % MAX_SOURCES;
            let mut wheel = TimingWheel::new(sources);
            let mut reference = Reference::new(sources);
            let mut rng = seed;
            let mut now: Cycle = 0;
            for step in 0..20_000 {
                match mix(&mut rng) % 10 {
                    // Set a deadline: mostly near, sometimes far, and
                    // occasionally already past (a source that was due
                    // but not yet serviced).
                    0..=5 => {
                        let src = (mix(&mut rng) as usize) % sources;
                        let spread = match mix(&mut rng) % 4 {
                            0 => SLOT_SPAN,
                            1 => WINDOW / 2,
                            2 => WINDOW * 3,
                            _ => 16,
                        };
                        let back = mix(&mut rng).is_multiple_of(8);
                        let off = mix(&mut rng) % spread;
                        let t = if back {
                            now.saturating_sub(off)
                        } else {
                            now + off
                        };
                        wheel.set(src, Some(t));
                        reference.set(src, Some(t));
                    }
                    // Clear a deadline.
                    6..=7 => {
                        let src = (mix(&mut rng) as usize) % sources;
                        wheel.set(src, None);
                        reference.set(src, None);
                    }
                    // Advance time (the kernel's forward march).
                    _ => {
                        now += mix(&mut rng) % (WINDOW / 2);
                        wheel.advance_to(now);
                    }
                }
                assert_eq!(
                    wheel.peek_next(),
                    reference.peek_next(),
                    "seed {seed} step {step} now {now}: wheel diverged from reference"
                );
                assert_eq!(
                    wheel.live_mask(),
                    reference.live_mask(),
                    "seed {seed} step {step}: live mask diverged"
                );
            }
        }
    }
}
