//! Common types shared by every crate in the NOMAD workspace.
//!
//! This crate defines the vocabulary of the simulator:
//!
//! * **Addresses** — newtypes for virtual addresses, off-package physical
//!   addresses, on-package cache addresses, and page/frame numbers
//!   ([`VirtAddr`], [`PhysAddr`], [`CacheAddr`], [`Pfn`], [`Cfn`], [`Vpn`]).
//! * **Requests** — the messages exchanged between the CPU, SRAM caches,
//!   the DRAM-cache scheme and the DRAM devices ([`req::MemReq`],
//!   [`req::MemResp`], [`req::AccessKind`], [`req::TrafficClass`]).
//! * **Statistics** — counters, running means and latency histograms used
//!   for every metric the paper reports ([`stats`]).
//! * **Content hashing** — the FNV-1a 64 function every
//!   content-addressed identity in the workspace derives from: serve
//!   cache keys, journal grid hashes, fleet ring placement ([`hash`]).
//! * **Environment knobs** — the shared parse/clamp/warn-on-garbage
//!   reader behind every `NOMAD_*` tuning variable ([`mod@env`]).
//!
//! The geometry constants ([`PAGE_SIZE`], [`BLOCK_SIZE`],
//! [`SUB_BLOCKS_PER_PAGE`]) mirror the paper's configuration: 4 KiB pages
//! managed by the OS-level front-end, transferred in 64-byte sub-blocks
//! (one DRAM burst each), so a page copy consists of 64 sub-block
//! transfers traced by a PCSHR's bit-vectors.

#![warn(missing_docs)]

pub mod addr;
pub mod env;
pub mod event;
pub mod fastclock;
pub mod geom;
pub mod hash;
pub mod req;
pub mod stats;
pub mod wheel;

pub use addr::{BlockAddr, CacheAddr, Cfn, PageOffset, Pfn, PhysAddr, SubBlockIdx, VirtAddr, Vpn};
pub use event::{CancelToken, NextActivity};
pub use geom::{Geometry, Pow2};
pub use hash::fnv1a;
pub use req::{AccessKind, MemLevel, MemReq, MemResp, MemTarget, ReqId, TrafficClass};
pub use wheel::TimingWheel;

/// Simulation time, measured in CPU clock cycles.
pub type Cycle = u64;

/// Identifier of a CPU core in the simulated chip multiprocessor.
pub type CoreId = usize;

/// Size of an OS page — the allocation/caching granularity of the
/// OS-managed DRAM cache (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// Size of one SRAM cache block and of one DRAM burst (64 bytes).
/// This is also the sub-block granularity at which PCSHRs trace page
/// copies.
pub const BLOCK_SIZE: u64 = 64;

/// Number of 64-byte sub-blocks per 4 KiB page (= 64). A PCSHR's
/// read-issued / in-buffer / partial-write vectors have one bit per
/// sub-block, which is why they are 64 bits wide in the paper.
pub const SUB_BLOCKS_PER_PAGE: u64 = PAGE_SIZE / BLOCK_SIZE;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// log2 of [`BLOCK_SIZE`].
pub const BLOCK_SHIFT: u32 = 6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(PAGE_SIZE, 1 << PAGE_SHIFT);
        assert_eq!(BLOCK_SIZE, 1 << BLOCK_SHIFT);
        assert_eq!(SUB_BLOCKS_PER_PAGE, 64);
        assert_eq!(PAGE_SIZE % BLOCK_SIZE, 0);
    }
}
