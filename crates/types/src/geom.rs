//! Packed power-of-two address geometry.
//!
//! Hardware address mappings are always power-of-two decompositions, so
//! every field extraction in the simulator can be a shift or a mask —
//! no per-access division or modulo. This module captures that idiom in
//! two types:
//!
//! * [`Pow2`] — a single power-of-two divisor/modulus, precomputed as
//!   `(shift, mask)` once at configuration time so the hot path pays
//!   one ALU op per extraction.
//! * [`Geometry`] — the paper's fixed block/page decomposition
//!   ([`Geometry::PAPER`]), the struct the address newtypes and the
//!   cache/dcache/dram index math route through.
//!
//! Structures whose dimensions come from runtime configuration (cache
//! set counts, DRAM channel/bank counts, blocks per row) build their
//! own [`Pow2`]s with [`Pow2::new`] at construction time and reuse them
//! for every access.

use crate::{BLOCK_SHIFT, PAGE_SHIFT};

/// A power-of-two divisor/modulus precomputed as shift-and-mask.
///
/// For a value `v = 1 << shift`, [`Pow2::div`] computes `x / v` as
/// `x >> shift` and [`Pow2::rem`] computes `x % v` as `x & (v - 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pow2 {
    shift: u32,
    mask: u64,
}

impl Pow2 {
    /// Capture `value` as shift-and-mask; `None` unless `value` is a
    /// power of two.
    #[inline]
    pub const fn new(value: u64) -> Option<Pow2> {
        if value.is_power_of_two() {
            Some(Pow2 {
                shift: value.trailing_zeros(),
                mask: value - 1,
            })
        } else {
            None
        }
    }

    /// The `Pow2` for `1 << shift`.
    ///
    /// # Panics
    ///
    /// Panics if `shift >= 64`.
    #[inline]
    pub const fn from_shift(shift: u32) -> Pow2 {
        assert!(shift < 64);
        Pow2 {
            shift,
            mask: (1u64 << shift) - 1,
        }
    }

    /// The captured power-of-two value.
    #[inline]
    pub const fn value(self) -> u64 {
        1u64 << self.shift
    }

    /// log2 of the captured value.
    #[inline]
    pub const fn shift(self) -> u32 {
        self.shift
    }

    /// `value - 1`, the low-bit extraction mask.
    #[inline]
    pub const fn mask(self) -> u64 {
        self.mask
    }

    /// `x / value` as a shift.
    #[inline]
    pub const fn div(self, x: u64) -> u64 {
        x >> self.shift
    }

    /// `x % value` as a mask.
    #[inline]
    pub const fn rem(self, x: u64) -> u64 {
        x & self.mask
    }

    /// `x * value` as a shift.
    #[inline]
    pub const fn mul(self, x: u64) -> u64 {
        x << self.shift
    }
}

/// The block/page decomposition every address in the simulator obeys,
/// precomputed once. [`Geometry::PAPER`] is the paper's configuration
/// (64-byte blocks, 4 KiB pages, 64 sub-blocks per page); the address
/// newtypes in [`crate::addr`] extract their fields through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Block (DRAM burst / SRAM line) size.
    pub block: Pow2,
    /// OS page (DRAM-cache frame) size.
    pub page: Pow2,
    /// Blocks per page — the width of a PCSHR sub-block bit-vector.
    pub blocks_per_page: Pow2,
}

impl Geometry {
    /// The paper's geometry: 64-byte blocks in 4 KiB pages.
    pub const PAPER: Geometry = Geometry {
        block: Pow2::from_shift(BLOCK_SHIFT),
        page: Pow2::from_shift(PAGE_SHIFT),
        blocks_per_page: Pow2::from_shift(PAGE_SHIFT - BLOCK_SHIFT),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BLOCK_SIZE, PAGE_SIZE, SUB_BLOCKS_PER_PAGE};

    #[test]
    fn paper_geometry_matches_constants() {
        let g = Geometry::PAPER;
        assert_eq!(g.block.value(), BLOCK_SIZE);
        assert_eq!(g.page.value(), PAGE_SIZE);
        assert_eq!(g.blocks_per_page.value(), SUB_BLOCKS_PER_PAGE);
    }

    #[test]
    fn pow2_rejects_non_powers() {
        assert!(Pow2::new(0).is_none());
        assert!(Pow2::new(3).is_none());
        assert!(Pow2::new(6).is_none());
        assert!(Pow2::new(u64::MAX).is_none());
    }

    #[test]
    fn pow2_matches_div_mod_mul() {
        for v in [1u64, 2, 4, 64, 4096, 1 << 33] {
            let p = Pow2::new(v).unwrap();
            assert_eq!(p.value(), v);
            for x in [0u64, 1, 5, 63, 64, 65, 4095, 4096, 0xdead_beef_cafe] {
                assert_eq!(p.div(x), x / v);
                assert_eq!(p.rem(x), x % v);
                assert_eq!(p.mul(x), x.wrapping_mul(v));
            }
        }
    }
}
