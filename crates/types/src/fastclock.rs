//! A low-overhead monotonic clock for hot-path profiling.
//!
//! [`std::time::Instant`] costs a `clock_gettime` call (~20–25 ns even
//! through the vDSO) — cheap in isolation, but several reads per
//! simulated cycle multiply into a 3–4x slowdown and skew any phase
//! split toward wherever the clock reads sit. [`now`] reads the CPU
//! timestamp counter instead on x86-64 (a handful of cycles,
//! non-serializing — fine for accumulating phase spans), falling back
//! to `Instant` elsewhere.
//!
//! Readings are in opaque *raw units*. Convert accumulated spans with
//! [`span_to_nanos`], which calibrates the raw rate against `Instant`
//! over the process lifetime: the first call to [`now`] (or [`init`])
//! anchors an epoch, and the conversion uses the elapsed time since.
//! Call [`init`] once before the profiled region so the calibration
//! window is long by the time spans are converted.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();

#[inline(always)]
fn raw() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: RDTSC has no preconditions.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        epoch().0.elapsed().as_nanos() as u64
    }
}

fn epoch() -> &'static (Instant, u64) {
    EPOCH.get_or_init(|| {
        let i = Instant::now();
        #[cfg(target_arch = "x86_64")]
        // SAFETY: RDTSC has no preconditions.
        let r = unsafe { core::arch::x86_64::_rdtsc() };
        #[cfg(not(target_arch = "x86_64"))]
        let r = 0u64;
        (i, r)
    })
}

/// Anchor the calibration epoch. Idempotent; call before the profiled
/// region so [`span_to_nanos`] has a long window to average over.
pub fn init() {
    epoch();
}

/// Current reading in raw units. Monotonic per core; raw units only
/// mean anything as differences fed to [`span_to_nanos`]. Callers
/// that convert later must have called [`init`] early — the profile
/// arming paths do.
#[inline(always)]
pub fn now() -> u64 {
    raw()
}

/// Convert an accumulated span of raw units to nanoseconds, using the
/// raw-units-per-nanosecond rate observed between the epoch and now.
pub fn span_to_nanos(span: u64) -> u64 {
    let &(i0, r0) = epoch();
    let nanos = i0.elapsed().as_nanos() as u64;
    let raw_span = raw().saturating_sub(r0);
    if raw_span == 0 {
        return 0;
    }
    (span as u128 * nanos as u128 / raw_span as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic_and_calibrates() {
        init();
        let a = now();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let b = now();
        assert!(b > a, "clock went backwards");
        let nanos = span_to_nanos(b - a);
        // The sleep was 20 ms; accept a wide band (scheduler noise,
        // coarse calibration windows in fast test runs).
        assert!(
            nanos > 10_000_000 && nanos < 2_000_000_000,
            "20ms span converted to {nanos} ns"
        );
    }

    #[test]
    fn zero_span_is_zero_nanos() {
        init();
        assert_eq!(span_to_nanos(0), 0);
    }
}
