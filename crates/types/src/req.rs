//! Request and response messages exchanged between simulator components.
//!
//! The whole memory system speaks one vocabulary: a [`MemReq`] travels
//! *down* the hierarchy (core → L1 → L2 → L3 → DRAM-cache scheme →
//! DRAM devices) and a [`MemResp`] travels back *up*. Every hop stamps
//! its own `token` on the requests it originates, so each level only has
//! to understand its own identifiers.

use crate::addr::BlockAddr;
use crate::CoreId;
use serde::{Deserialize, Serialize};

/// Globally unique request identifier (monotonic per issuing component).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReqId(pub u64);

impl core::fmt::Display for ReqId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load; the requester waits for the data.
    Read,
    /// A store; posted (the requester does not wait), but it still
    /// consumes bandwidth and sets dirty state.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Which memory device a post-translation address refers to.
///
/// OS-managed schemes resolve this at translation time: a cached page
/// translates to [`MemTarget::DramCache`] (a CFN-based address), an
/// uncached or non-cacheable page to [`MemTarget::OffPackage`] (a
/// PFN-based address). HW-based schemes always see
/// [`MemTarget::OffPackage`] addresses and do their own tag matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTarget {
    /// Off-package (DDR4) physical address space.
    OffPackage,
    /// On-package (HBM) DRAM-cache address space.
    DramCache,
}

/// Why a DRAM transaction happened; used to attribute on-/off-package
/// bandwidth for the Fig. 10 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Demand read on behalf of an application load.
    DemandRead,
    /// Demand write (SRAM writeback of application stores).
    DemandWrite,
    /// DC metadata traffic (tag reads/updates of a HW-based scheme).
    Metadata,
    /// Cache-fill traffic (page/line copy into the DRAM cache).
    Fill,
    /// Writeback of dirty DC data to off-package memory.
    Writeback,
    /// Page-table walk traffic.
    PageTable,
}

impl TrafficClass {
    /// All traffic classes, in display order.
    pub const ALL: [TrafficClass; 6] = [
        TrafficClass::DemandRead,
        TrafficClass::DemandWrite,
        TrafficClass::Metadata,
        TrafficClass::Fill,
        TrafficClass::Writeback,
        TrafficClass::PageTable,
    ];

    /// Compact label used in printed tables.
    pub const fn label(self) -> &'static str {
        match self {
            TrafficClass::DemandRead => "demand_rd",
            TrafficClass::DemandWrite => "demand_wr",
            TrafficClass::Metadata => "metadata",
            TrafficClass::Fill => "fill",
            TrafficClass::Writeback => "writeback",
            TrafficClass::PageTable => "pagetable",
        }
    }
}

impl core::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Level of the memory hierarchy a message is addressed to; used for
/// debugging and for stats attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// Private first-level data cache.
    L1,
    /// Private second-level cache.
    L2,
    /// Shared last-level cache.
    L3,
    /// The DRAM-cache scheme below the LLC.
    DcScheme,
}

/// A memory request travelling down the hierarchy.
///
/// `token` identifies the request *to its sender*: responses echo it
/// verbatim so the sender can match them to its own bookkeeping (ROB
/// slot, MSHR index, …). `addr` is always 64-byte block-aligned in
/// cache-to-cache traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemReq {
    /// Sender-scoped identifier echoed by the response.
    pub token: ReqId,
    /// Block address in the sender's (post-translation) address space.
    pub addr: BlockAddr,
    /// Which device the address belongs to.
    pub target: MemTarget,
    /// Read or write.
    pub kind: AccessKind,
    /// Bandwidth-attribution class.
    pub class: TrafficClass,
    /// Core that ultimately caused the request (for per-core stats).
    pub core: CoreId,
    /// Whether the sender expects a [`MemResp`]. Writebacks are posted
    /// and set this to `false`.
    pub wants_response: bool,
}

/// A memory response travelling up the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemResp {
    /// The `token` of the request being answered.
    pub token: ReqId,
    /// Block address of the answered request.
    pub addr: BlockAddr,
    /// Kind of the answered request.
    pub kind: AccessKind,
    /// Core the answered request originated from (routes shared-cache
    /// responses back to the right private hierarchy).
    pub core: CoreId,
}

impl MemReq {
    /// A demand read request with sane defaults for the remaining fields.
    pub fn read(token: ReqId, addr: BlockAddr, target: MemTarget, core: CoreId) -> Self {
        MemReq {
            token,
            addr,
            target,
            kind: AccessKind::Read,
            class: TrafficClass::DemandRead,
            core,
            wants_response: true,
        }
    }

    /// A demand write request (posted).
    pub fn write(token: ReqId, addr: BlockAddr, target: MemTarget, core: CoreId) -> Self {
        MemReq {
            token,
            addr,
            target,
            kind: AccessKind::Write,
            class: TrafficClass::DemandWrite,
            core,
            wants_response: false,
        }
    }

    /// The response answering this request.
    pub fn response(&self) -> MemResp {
        MemResp {
            token: self.token,
            addr: self.addr,
            kind: self.kind,
            core: self.core,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_echoes_token_and_addr() {
        let r = MemReq::read(ReqId(7), BlockAddr(0x40), MemTarget::DramCache, 2);
        let resp = r.response();
        assert_eq!(resp.token, ReqId(7));
        assert_eq!(resp.addr, BlockAddr(0x40));
        assert_eq!(resp.kind, AccessKind::Read);
    }

    #[test]
    fn writes_are_posted_by_default() {
        let w = MemReq::write(ReqId(1), BlockAddr(0), MemTarget::OffPackage, 0);
        assert!(!w.wants_response);
        assert!(w.kind.is_write());
        assert_eq!(w.class, TrafficClass::DemandWrite);
    }

    #[test]
    fn traffic_class_labels_are_unique() {
        let mut labels: Vec<_> = TrafficClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), TrafficClass::ALL.len());
    }
}
