//! The workspace's one content-key hash: FNV-1a 64.
//!
//! Every content-addressed identity in the repo derives from this
//! function — the serve result cache keys jobs by the FNV-1a of their
//! canonical JSON, the bench journal names its files by the FNV-1a of
//! the grid key, and the fleet router places cells on its hash ring by
//! the same digests — so the three layers agree on what "the same
//! experiment" means byte-for-byte. FNV is not cryptographic; every
//! consumer stores the canonical string alongside the key and verifies
//! it on lookup, so a 64-bit collision degrades to a cache bypass (or
//! an uncached run), never to a wrong result.
//!
//! The digests are load-bearing across processes and releases: spill
//! files, journal names and ring placement must not silently change.
//! The `pinned_digests` test holds the standard FNV-1a test vectors
//! plus repo-specific strings against hard-coded values.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The digests are stable forever: spill files, journal names and
    /// fleet ring placement all persist them.
    #[test]
    fn pinned_digests() {
        // Standard FNV-1a 64 reference vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        // Repo-shaped inputs: a journal grid key and fleet ring vnode
        // labels. Regenerating these values means every cached spill
        // and journal on disk just got orphaned — don't.
        assert_eq!(
            fnv1a(b"sweep:i6000w500c2s13:Baseline,NOMAD,tc,libq"),
            0x934e_5850_e39e_b3a9
        );
        assert_eq!(fnv1a(b"node-0#0"), 0x013a_67d2_f646_5dfb);
        assert_eq!(fnv1a(b"node-1#63"), 0xc8b2_8380_b268_ac23);
    }

    #[test]
    fn sensitive_to_every_byte_and_order() {
        assert_ne!(fnv1a(b"job-1"), fnv1a(b"job-2"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        assert_ne!(fnv1a(b"node-1#2"), fnv1a(b"node-2#1"));
    }
}
