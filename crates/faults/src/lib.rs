//! nomad-faults: seeded, deterministic fault injection.
//!
//! The resilience layer of this workspace (cell retries, reconnecting
//! sweep clients, the crash-safe journal) only earns trust if its
//! failure paths are *exercised*, and failure paths are exactly the
//! code ordinary runs never reach. This crate provides the chaos:
//! named **fail points** threaded through the serve transport, the
//! worker pool, the cache spill/reload path, and the bench executor's
//! cell closure, driven by a [`FaultPlan`] so every injected fault is
//! reproducible from a seed.
//!
//! # The plan
//!
//! A plan is parsed from the `NOMAD_FAULTS` environment variable:
//!
//! ```text
//! NOMAD_FAULTS=<seed>:<site>=<kind>[@<prob>][,<site>=<kind>[@<prob>]...]
//! ```
//!
//! * `seed` — a `u64`; every injection decision derives from it.
//! * `site` — a fail-point name (`serve.proto.write_frame`,
//!   `bench.cell`, …) or a prefix ending in `*` (`serve.*` matches
//!   every serve-side site). First matching rule wins.
//! * `kind` — `panic`, `io` (an `io::Error`), `torn` (a short write
//!   followed by an error), or `delay:<ms>` (a sleep).
//! * `prob` — injection probability in `[0, 1]` (default `1`).
//!
//! Example: `NOMAD_FAULTS=42:serve.proto.write_frame=torn@0.2,bench.cell=panic@0.1`.
//!
//! # Determinism
//!
//! Each site keeps a call counter `n`; the decision for call `n` is a
//! pure function of `(seed, site, n)` via [`splitmix64`]. The *set* of
//! injected call indices at a site is therefore fixed by the seed —
//! independent of thread count or scheduling. Under parallel sweeps
//! the assignment of indices to threads can race, but every consumer
//! in this workspace recovers transparently (retries re-run pure
//! cells, reconnects resubmit idempotent jobs), so recovered artifacts
//! are byte-identical at any `NOMAD_JOBS` width.
//!
//! # When off, free
//!
//! With `NOMAD_FAULTS` unset (and no plan installed) every fail point
//! is one relaxed atomic load — no parsing, no locking, no RNG — and
//! nothing is ever injected, so the existing parity suites hold
//! byte-for-byte.

#![warn(missing_docs)]

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// One fault an armed fail point can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the fail point (callers with `catch_unwind` budgets
    /// retry; others propagate).
    Panic,
    /// Return an `io::Error` from the fail point.
    Io,
    /// Write only part of the payload, then fail — a mid-frame
    /// connection drop or a crash mid-spill.
    Torn,
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u64),
}

impl Fault {
    /// Short lowercase name of the fault kind (`panic`, `io`, `torn`,
    /// `delay`), as spelled in the `NOMAD_FAULTS` grammar.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::Io => "io",
            Fault::Torn => "torn",
            Fault::Delay(_) => "delay",
        }
    }
}

/// One `site=kind@prob` rule of a plan.
#[derive(Debug, Clone)]
struct Rule {
    /// Site name, or a prefix if `prefix` is set (spelled `prefix*`).
    site: String,
    prefix: bool,
    fault: Fault,
    /// Injection probability scaled to `0..=1_000_000`.
    prob_ppm: u64,
}

impl Rule {
    fn matches(&self, site: &str) -> bool {
        if self.prefix {
            site.starts_with(&self.site)
        } else {
            site == self.site
        }
    }
}

/// A parsed, seeded fault-injection plan.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    /// Per-site call counters (site name → n), so decisions are a pure
    /// function of `(seed, site, n)`.
    counters: Mutex<Vec<(String, &'static AtomicU64)>>,
}

impl FaultPlan {
    /// Parse a `<seed>:<spec>` plan (the `NOMAD_FAULTS` format; see
    /// the crate docs).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let (seed, spec) = s
            .split_once(':')
            .ok_or_else(|| format!("expected <seed>:<spec>, got {s:?}"))?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|_| format!("seed {seed:?} is not a u64"))?;
        let mut rules = Vec::new();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let (site, fault_spec) = entry
                .split_once('=')
                .ok_or_else(|| format!("rule {entry:?} is not <site>=<kind>[@<prob>]"))?;
            let (kind, prob) = match fault_spec.split_once('@') {
                Some((k, p)) => {
                    let p: f64 = p
                        .trim()
                        .parse()
                        .map_err(|_| format!("probability {p:?} is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability {p} outside [0, 1]"));
                    }
                    (k.trim(), p)
                }
                None => (fault_spec.trim(), 1.0),
            };
            let fault = match kind.split_once(':') {
                Some(("delay", ms)) => Fault::Delay(
                    ms.parse()
                        .map_err(|_| format!("delay {ms:?} is not milliseconds"))?,
                ),
                None if kind == "panic" => Fault::Panic,
                None if kind == "io" => Fault::Io,
                None if kind == "torn" => Fault::Torn,
                _ => return Err(format!("unknown fault kind {kind:?}")),
            };
            let site = site.trim();
            let (site, prefix) = match site.strip_suffix('*') {
                Some(p) => (p.to_string(), true),
                None => (site.to_string(), false),
            };
            rules.push(Rule {
                site,
                prefix,
                fault,
                prob_ppm: (prob * 1_000_000.0).round() as u64,
            });
        }
        if rules.is_empty() {
            return Err("plan has no rules".to_string());
        }
        Ok(FaultPlan {
            seed,
            rules,
            counters: Mutex::new(Vec::new()),
        })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// This site's monotonically increasing call counter cell,
    /// creating it on first use. The cells are leaked (`&'static`) so
    /// the per-call hot path after the first is lock + linear probe of
    /// a short vec — fine for fail-point call rates.
    fn counter(&self, site: &str) -> &'static AtomicU64 {
        let mut counters = self.counters.lock().expect("fault counters lock");
        if let Some((_, cell)) = counters.iter().find(|(name, _)| name == site) {
            return cell;
        }
        let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        counters.push((site.to_string(), cell));
        cell
    }

    /// Decide whether call `n` (implicit, via the site counter) at
    /// `site` injects a fault. Pure in `(seed, site, n)`.
    pub fn decide(&self, site: &str) -> Option<Fault> {
        let rule = self.rules.iter().find(|r| r.matches(site))?;
        let n = self.counter(site).fetch_add(1, Ordering::Relaxed);
        let draw =
            splitmix64(self.seed ^ fnv1a(site.as_bytes()) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (draw % 1_000_000 < rule.prob_ppm).then_some(rule.fault)
    }
}

/// SplitMix64: the standard 64-bit finalizer-style PRNG step. Public
/// because the serve client reuses it for deterministic backoff
/// jitter.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64 (same parameters as `nomad_serve::hash`), used to fold
/// site names and grid keys into the decision hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Fast-path gate: true iff a plan is installed. Fail points bail on
/// one relaxed load when injection is off.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<&'static FaultPlan>> = Mutex::new(None);
static ENV_INIT: Once = Once::new();
/// Total faults injected by every fail point since process start.
static INJECTED: AtomicU64 = AtomicU64::new(0);
/// Optional injection observer (used to mirror injections into the
/// `resilience.faults_injected` metric without depending on nomad-obs
/// from here). Install-once; installing the same fn again is a no-op.
static OBSERVER: OnceLock<fn(&str, Fault)> = OnceLock::new();

/// Arm the fault plan from `NOMAD_FAULTS`, once per process (a no-op
/// when unset or already armed). Fail points call this lazily, so
/// explicit calls are only needed to surface parse warnings early.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(raw) = std::env::var("NOMAD_FAULTS") else {
            return;
        };
        if raw.trim().is_empty() {
            return;
        }
        match FaultPlan::parse(&raw) {
            Ok(plan) => {
                eprintln!("nomad-faults: armed from NOMAD_FAULTS (seed {})", plan.seed);
                install(Some(plan));
            }
            Err(e) => eprintln!("warning: ignoring unparseable NOMAD_FAULTS: {e}"),
        }
    });
}

/// Install (or clear, with `None`) the process-wide plan, replacing
/// whatever `NOMAD_FAULTS` armed. Plans are leaked — installation is a
/// test/startup operation, not a hot path.
pub fn install(plan: Option<FaultPlan>) {
    let leaked: Option<&'static FaultPlan> = plan.map(|p| &*Box::leak(Box::new(p)));
    let mut slot = PLAN.lock().expect("fault plan lock");
    *slot = leaked;
    ACTIVE.store(slot.is_some(), Ordering::Release);
}

/// Register the injection observer (idempotent; the first installation
/// wins). Called by nomad-serve and nomad-bench to mirror injections
/// into the `resilience.faults_injected` counter.
pub fn set_observer(observer: fn(&str, Fault)) {
    let _ = OBSERVER.set(observer);
}

/// Total faults injected since process start (all sites).
pub fn injected_total() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// The heart of every fail point: consult the plan for `site` and
/// return the fault to inject, if any. Records the injection (counter
/// and observer) and prints one stderr line per injection so chaos
/// runs are debuggable. `Delay` faults are slept here and **not**
/// returned — callers only ever see `Panic`/`Io`/`Torn`.
pub fn inject(site: &str) -> Option<Fault> {
    if !ACTIVE.load(Ordering::Acquire) {
        init_from_env();
        if !ACTIVE.load(Ordering::Acquire) {
            return None;
        }
    }
    let plan = (*PLAN.lock().expect("fault plan lock"))?;
    let fault = plan.decide(site)?;
    INJECTED.fetch_add(1, Ordering::Relaxed);
    if let Some(observer) = OBSERVER.get() {
        observer(site, fault);
    }
    eprintln!("nomad-faults: injecting {} at {site}", fault.label());
    if let Fault::Delay(ms) = fault {
        std::thread::sleep(std::time::Duration::from_millis(ms));
        return None;
    }
    Some(fault)
}

/// Fail point for `io::Result` contexts: `Io`/`Torn` become an
/// `io::Error` (`Torn` is only distinguished by sites that can
/// actually tear a write — use [`inject`] directly there), `Panic`
/// panics, `Delay` sleeps.
pub fn fail_point(site: &str) -> io::Result<()> {
    match inject(site) {
        None => Ok(()),
        Some(Fault::Panic) => panic!("nomad-faults: injected panic at {site}"),
        Some(Fault::Io) | Some(Fault::Torn) => Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("nomad-faults: injected io error at {site}"),
        )),
        Some(Fault::Delay(_)) => unreachable!("inject() sleeps delays"),
    }
}

/// Fail point for infallible contexts (a sweep cell, a worker
/// attempt): every injectable fault kind becomes a panic, which the
/// surrounding retry budget absorbs. `Delay` sleeps.
pub fn panic_point(site: &str) {
    if inject(site).is_some() {
        panic!("nomad-faults: injected panic at {site}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-wide plan; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_plan<R>(plan: Option<&str>, f: impl FnOnce() -> R) -> R {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(plan.map(|s| FaultPlan::parse(s).expect("test plan parses")));
        let out = f();
        install(None);
        out
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan =
            FaultPlan::parse("42:serve.proto.write_frame=torn@0.25,bench.cell=panic,x=delay:7@0.5")
                .expect("parses");
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].fault, Fault::Torn);
        assert_eq!(plan.rules[0].prob_ppm, 250_000);
        assert_eq!(plan.rules[1].fault, Fault::Panic);
        assert_eq!(plan.rules[1].prob_ppm, 1_000_000);
        assert_eq!(plan.rules[2].fault, Fault::Delay(7));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "no-colon",
            "x:site=panic",      // seed is not a number
            "1:site",            // no kind
            "1:site=explode",    // unknown kind
            "1:site=panic@1.5",  // probability out of range
            "1:site=panic@high", // probability not a number
            "1:",                // no rules
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn prefix_rules_match_by_prefix() {
        let plan = FaultPlan::parse("1:serve.*=io").expect("parses");
        assert!(plan.rules[0].matches("serve.proto.write_frame"));
        assert!(plan.rules[0].matches("serve.cache.spill"));
        assert!(!plan.rules[0].matches("bench.cell"));
    }

    #[test]
    fn decisions_are_deterministic_in_call_index() {
        let a = FaultPlan::parse("7:site=io@0.5").expect("parses");
        let b = FaultPlan::parse("7:site=io@0.5").expect("parses");
        let seq_a: Vec<bool> = (0..64).map(|_| a.decide("site").is_some()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.decide("site").is_some()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same site, same sequence");
        assert!(seq_a.iter().any(|&x| x), "p=0.5 injects sometimes");
        assert!(!seq_a.iter().all(|&x| x), "p=0.5 spares sometimes");

        let c = FaultPlan::parse("8:site=io@0.5").expect("parses");
        let seq_c: Vec<bool> = (0..64).map(|_| c.decide("site").is_some()).collect();
        assert_ne!(seq_a, seq_c, "a different seed draws differently");
    }

    #[test]
    fn unarmed_fail_points_are_free_and_silent() {
        with_plan(None, || {
            let before = injected_total();
            assert!(fail_point("anything").is_ok());
            panic_point("anything");
            assert_eq!(inject("anything"), None);
            assert_eq!(injected_total(), before, "nothing injected");
        });
    }

    #[test]
    fn armed_fail_point_errors_and_counts() {
        with_plan(Some("3:chaos.io=io"), || {
            let before = injected_total();
            let err = fail_point("chaos.io").expect_err("always injects");
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
            assert!(fail_point("other.site").is_ok(), "unmatched site is clean");
            assert_eq!(injected_total(), before + 1);
        });
    }

    #[test]
    fn armed_panic_point_panics() {
        with_plan(Some("3:chaos.panic=panic"), || {
            let caught = std::panic::catch_unwind(|| panic_point("chaos.panic"));
            assert!(caught.is_err(), "panic fault must panic");
        });
    }

    #[test]
    fn splitmix_and_fnv_are_stable() {
        // Known-answer checks so the decision function can never
        // silently change between releases (that would re-seed every
        // committed chaos scenario).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
