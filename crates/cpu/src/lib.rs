//! Trace-driven out-of-order core timing model.
//!
//! The paper's evaluation runs out-of-order cores whose performance is
//! dominated by the memory system; what the DRAM-cache schemes interact
//! with is the *order, concurrency and blocking behaviour* of the
//! memory requests a core emits, plus precise accounting of why the
//! core is stalled. [`Core`] models exactly that:
//!
//! * a reorder buffer of `rob_size` instructions, filled at
//!   `fetch_width` and drained in order at `commit_width`;
//! * non-blocking loads: memory operations dispatch as soon as they
//!   enter the ROB (subject to an LSQ limit), so multiple misses
//!   overlap — the memory-level parallelism MSHRs/PCSHRs exploit;
//! * posted stores (a store commits once issued);
//! * **OS stalls**: a blocking miss handler (TDC) or a tag-miss
//!   critical section (NOMAD) suspends the whole core; the paper's
//!   "CPUs executing OS routines are stalled" protocol;
//! * a stall-cycle breakdown (memory / OS-tag-management /
//!   OS-blocking-fill) — the raw data for Fig. 11.
//!
//! The core is plumbing-free: the system assembly pulls dispatched
//! memory operations from [`Core::pop_dispatch`] when the TLB/L1 can
//! take them and reports completions back with [`Core::mem_done`].

use nomad_obs::{Gauge, Registry};
use nomad_trace::TraceSource;
use nomad_types::stats::Counter;
use nomad_types::{AccessKind, CoreId, Cycle, NextActivity, VirtAddr};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Core microarchitectural parameters (Table II-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Reorder-buffer capacity in instructions.
    pub rob_size: usize,
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Maximum memory operations awaiting issue or completion (LSQ).
    pub max_outstanding_mem: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            rob_size: 192,
            fetch_width: 4,
            commit_width: 4,
            max_outstanding_mem: 32,
        }
    }
}

/// Why the OS suspended this core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OsStallReason {
    /// DC tag-miss handling (NOMAD front-end critical section, or the
    /// tag-management part of any OS-managed scheme).
    TagMiss,
    /// Blocking cache-fill wait (TDC's coupled miss handling).
    BlockingFill,
}

/// A memory operation the core wants to send into the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMemOp {
    /// ROB slot identifier; echo it in [`Core::mem_done`].
    pub slot: u64,
    /// Core issuing the operation.
    pub core: CoreId,
    /// Virtual address.
    pub vaddr: VirtAddr,
    /// Read or write.
    pub kind: AccessKind,
}

/// Per-core performance counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles simulated (excluding warm-up after a reset).
    pub cycles: Counter,
    /// Instructions committed.
    pub instructions: Counter,
    /// Memory operations committed.
    pub mem_ops: Counter,
    /// Cycles with zero commits while the ROB head waited on memory.
    pub stall_mem: Counter,
    /// Cycles suspended in OS tag-management routines.
    pub stall_os_tag: Counter,
    /// Cycles suspended waiting for a blocking cache fill.
    pub stall_os_fill: Counter,
    /// Cycles with at least one commit.
    pub busy: Counter,
    /// Cycles with zero commits for front-end (dispatch) reasons.
    pub stall_frontend: Counter,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        nomad_types::stats::ratio(self.instructions.get(), self.cycles.get())
    }

    /// Total stalled cycles of any kind.
    pub fn total_stall(&self) -> u64 {
        self.stall_mem.get()
            + self.stall_os_tag.get()
            + self.stall_os_fill.get()
            + self.stall_frontend.get()
    }

    /// Fraction of cycles the application was stalled in OS routines
    /// (the paper's "application stall cycle ratio" for OS-managed
    /// schemes).
    pub fn os_stall_ratio(&self) -> f64 {
        nomad_types::stats::ratio(
            self.stall_os_tag.get() + self.stall_os_fill.get(),
            self.cycles.get(),
        )
    }

    /// Reset all counters (end of warm-up).
    pub fn reset(&mut self) {
        *self = CoreStats::default();
    }
}

#[derive(Debug, Clone, Copy)]
enum RobEntry {
    /// `n` plain ALU instructions.
    Ops(u32),
    /// One memory instruction; `slot` indexes the in-flight bit window.
    Mem { slot: u64 },
}

/// Observability handles for one core: sampled gauges mirroring the
/// [`CoreStats`] counters plus the instantaneous pipeline occupancies.
/// Attached only when the `nomad-obs` layer is enabled, so the core's
/// per-cycle path never touches them.
#[derive(Debug)]
struct CoreObs {
    instructions: Gauge,
    stall_mem: Gauge,
    stall_os: Gauge,
    rob_occupancy: Gauge,
    outstanding_mem: Gauge,
}

/// One trace-driven core.
pub struct Core {
    cfg: CoreConfig,
    id: CoreId,
    trace: Box<dyn TraceSource>,
    rob: VecDeque<RobEntry>,
    /// Instructions currently occupying the ROB.
    rob_occupancy: usize,
    /// In-flight memory ops as a sliding bit window. Slots are
    /// allocated sequentially at fetch and retired in ROB (=
    /// allocation) order, so the live set is always the contiguous
    /// range `[mem_head_slot, mem_head_slot + mem_live)`; bit `i` of
    /// `mem_done_bits` records completion of slot `mem_head_slot + i`.
    /// The ROB-head completion probe runs every stalled cycle, so this
    /// sits squarely on the hot path — a single shift-and-mask where a
    /// hash map would hash per probe.
    mem_head_slot: u64,
    mem_live: u32,
    mem_done_bits: u64,
    /// Dispatched-but-not-pulled memory operations.
    dispatch_q: VecDeque<PendingMemOp>,
    next_slot: u64,
    /// Remaining gap instructions of the current trace record.
    gap_left: u32,
    /// Memory op of the current record still to be fetched.
    mem_pending: Option<(AccessKind, VirtAddr)>,
    /// OS suspension deadline and reason.
    os_stall: Option<(Cycle, OsStallReason)>,
    stats: CoreStats,
    /// Sampled observability gauges (`None` unless the obs layer is on).
    obs: Option<CoreObs>,
}

impl core::fmt::Debug for Core {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("rob_occupancy", &self.rob_occupancy)
            .field("outstanding_mem", &self.mem_live)
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Build a core running `trace`.
    pub fn new(id: CoreId, cfg: CoreConfig, trace: Box<dyn TraceSource>) -> Self {
        assert!(
            cfg.max_outstanding_mem <= 64,
            "the LSQ window is tracked in one 64-bit word"
        );
        Core {
            cfg,
            id,
            trace,
            rob: VecDeque::new(),
            rob_occupancy: 0,
            mem_head_slot: 0,
            mem_live: 0,
            mem_done_bits: 0,
            dispatch_q: VecDeque::new(),
            next_slot: 0,
            gap_left: 0,
            mem_pending: None,
            os_stall: None,
            stats: CoreStats::default(),
            obs: None,
        }
    }

    /// Return the core to the just-constructed state with a new trace:
    /// empty pipeline, zeroed counters, slot numbering restarted. The
    /// ROB and dispatch queue keep their allocations — the arena-reuse
    /// path between sweep cells.
    pub fn reset_with_trace(&mut self, trace: Box<dyn TraceSource>) {
        self.trace = trace;
        self.rob.clear();
        self.rob_occupancy = 0;
        self.mem_head_slot = 0;
        self.mem_live = 0;
        self.mem_done_bits = 0;
        self.dispatch_q.clear();
        self.next_slot = 0;
        self.gap_left = 0;
        self.mem_pending = None;
        self.os_stall = None;
        self.stats = CoreStats::default();
    }

    /// Register this core's sampled metrics (`cpu.<id>.*`) in `reg`.
    /// The gauges are refreshed only by [`obs_sample`](Self::obs_sample)
    /// — the timing path is untouched whether or not obs is attached.
    pub fn attach_obs(&mut self, reg: &Registry) {
        let p = |suffix: &str| format!("cpu.{}.{suffix}", self.id);
        self.obs = Some(CoreObs {
            instructions: reg.gauge(
                p("instructions"),
                "instructions",
                "cpu",
                "Instructions committed since the measurement reset",
            ),
            stall_mem: reg.gauge(
                p("stall_mem_cycles"),
                "cycles",
                "cpu",
                "Cycles with zero commits while the ROB head waited on memory",
            ),
            stall_os: reg.gauge(
                p("stall_os_cycles"),
                "cycles",
                "cpu",
                "Cycles suspended in OS routines (tag management + blocking fills)",
            ),
            rob_occupancy: reg.gauge(
                p("rob_occupancy"),
                "instructions",
                "cpu",
                "Instructions occupying the reorder buffer at the sample point",
            ),
            outstanding_mem: reg.gauge(
                p("outstanding_mem"),
                "requests",
                "cpu",
                "In-flight memory operations at the sample point",
            ),
        });
    }

    /// Refresh the attached gauges from the live counters; no-op when
    /// obs is not attached.
    pub fn obs_sample(&self) {
        let Some(obs) = &self.obs else { return };
        obs.instructions.set(self.stats.instructions.get());
        obs.stall_mem.set(self.stats.stall_mem.get());
        obs.stall_os
            .set(self.stats.stall_os_tag.get() + self.stats.stall_os_fill.get());
        obs.rob_occupancy.set(self.rob_occupancy as u64);
        obs.outstanding_mem.set(self.outstanding_mem() as u64);
    }

    /// Core identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Configuration.
    pub fn cfg(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The trace feeding this core (for checkpoint warming).
    pub fn trace(&self) -> &dyn TraceSource {
        self.trace.as_ref()
    }

    /// Suspend the core in an OS routine until `until` (exclusive).
    /// Longer of two overlapping stalls wins.
    pub fn stall_os(&mut self, until: Cycle, reason: OsStallReason) {
        match self.os_stall {
            Some((cur, _)) if cur >= until => {}
            _ => self.os_stall = Some((until, reason)),
        }
    }

    /// Whether the core is currently OS-suspended at `now`.
    pub fn is_os_stalled(&self, now: Cycle) -> bool {
        matches!(self.os_stall, Some((until, _)) if now < until)
    }

    /// End an OS suspension early (the scheme woke the core — e.g. a
    /// NOMAD tag-miss handler or a TDC blocking fill completed).
    /// No-op when the core is not suspended.
    pub fn wake_os(&mut self) {
        self.os_stall = None;
    }

    /// Next memory operation awaiting injection into the memory system,
    /// if any. The caller takes it only when downstream can accept it;
    /// use [`Core::push_back_dispatch`] to return it on failure.
    pub fn pop_dispatch(&mut self) -> Option<PendingMemOp> {
        self.dispatch_q.pop_front()
    }

    /// Return an op taken by [`Core::pop_dispatch`] that could not be
    /// injected this cycle (retried in order).
    pub fn push_back_dispatch(&mut self, op: PendingMemOp) {
        self.dispatch_q.push_front(op);
    }

    /// Report completion of the load in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not an outstanding memory operation.
    pub fn mem_done(&mut self, slot: u64) {
        let idx = slot.wrapping_sub(self.mem_head_slot);
        assert!(idx < self.mem_live as u64, "mem_done for unknown slot");
        self.mem_done_bits |= 1 << idx;
    }

    /// Number of in-flight memory operations (dispatched or queued).
    pub fn outstanding_mem(&self) -> usize {
        (self.mem_live - self.mem_done_bits.count_ones()) as usize
    }

    /// Advance one cycle: commit, then fetch/dispatch.
    pub fn tick(&mut self, now: Cycle) {
        self.stats.cycles.inc();

        // OS suspension freezes the whole core.
        if let Some((until, reason)) = self.os_stall {
            if now < until {
                match reason {
                    OsStallReason::TagMiss => self.stats.stall_os_tag.inc(),
                    OsStallReason::BlockingFill => self.stats.stall_os_fill.inc(),
                }
                return;
            }
            self.os_stall = None;
        }

        let committed = self.commit();
        self.fetch();

        if committed > 0 {
            self.stats.busy.inc();
        } else if self.head_waits_on_mem() {
            self.stats.stall_mem.inc();
        } else {
            self.stats.stall_frontend.inc();
        }
    }

    fn head_waits_on_mem(&self) -> bool {
        match self.rob.front() {
            Some(RobEntry::Mem { slot }) => {
                let idx = slot.wrapping_sub(self.mem_head_slot);
                idx < self.mem_live as u64 && self.mem_done_bits & (1 << idx) == 0
            }
            _ => false,
        }
    }

    fn commit(&mut self) -> usize {
        let mut budget = self.cfg.commit_width;
        let mut committed = 0;
        while budget > 0 {
            match self.rob.front_mut() {
                None => break,
                Some(RobEntry::Ops(n)) => {
                    let take = (*n as usize).min(budget);
                    *n -= take as u32;
                    budget -= take;
                    committed += take;
                    self.rob_occupancy -= take;
                    if *n == 0 {
                        self.rob.pop_front();
                    }
                }
                Some(RobEntry::Mem { slot }) => {
                    let slot = *slot;
                    let idx = slot.wrapping_sub(self.mem_head_slot);
                    let done = idx < self.mem_live as u64 && self.mem_done_bits & (1 << idx) != 0;
                    if done {
                        // ROB order equals allocation order, so the
                        // head Mem entry is always the window base.
                        debug_assert_eq!(idx, 0, "out-of-order mem retirement");
                        self.mem_done_bits >>= 1;
                        self.mem_head_slot += 1;
                        self.mem_live -= 1;
                        self.rob.pop_front();
                        self.rob_occupancy -= 1;
                        budget -= 1;
                        committed += 1;
                        self.stats.mem_ops.inc();
                    } else {
                        break;
                    }
                }
            }
        }
        self.stats.instructions.add(committed as u64);
        committed
    }

    fn fetch(&mut self) {
        let mut budget = self.cfg.fetch_width;
        while budget > 0 && self.rob_occupancy < self.cfg.rob_size {
            // Refill the record cursor.
            if self.gap_left == 0 && self.mem_pending.is_none() {
                let rec = self.trace.next_record();
                self.gap_left = rec.gap;
                self.mem_pending = Some((rec.kind, rec.vaddr));
            }
            if self.gap_left > 0 {
                let room = self.cfg.rob_size - self.rob_occupancy;
                let take = (self.gap_left as usize).min(budget).min(room);
                if take == 0 {
                    break;
                }
                if let Some(RobEntry::Ops(n)) = self.rob.back_mut() {
                    *n += take as u32;
                } else {
                    self.rob.push_back(RobEntry::Ops(take as u32));
                }
                self.gap_left -= take as u32;
                self.rob_occupancy += take;
                budget -= take;
                continue;
            }
            // Memory instruction: respect the LSQ limit.
            if self.mem_live as usize >= self.cfg.max_outstanding_mem {
                break;
            }
            let (kind, vaddr) = self.mem_pending.take().expect("record cursor");
            let slot = self.next_slot;
            self.next_slot += 1;
            // Stores are posted: done at dispatch. Loads wait.
            debug_assert_eq!(self.mem_head_slot + self.mem_live as u64, slot);
            if kind.is_write() {
                self.mem_done_bits |= 1 << self.mem_live;
            }
            self.mem_live += 1;
            self.rob.push_back(RobEntry::Mem { slot });
            self.rob_occupancy += 1;
            self.dispatch_q.push_back(PendingMemOp {
                slot,
                core: self.id,
                vaddr,
                kind,
            });
            budget -= 1;
        }
    }

    /// Whether dispatched memory operations await collection by the
    /// memory system ([`pop_dispatch`](Self::pop_dispatch)). Draining
    /// them is the *system's* per-cycle work, so the event kernel must
    /// not skip while this is set even if the core itself is stalled.
    pub fn dispatch_pending(&self) -> bool {
        !self.dispatch_q.is_empty()
    }

    /// Whether a tick would be pure stall accounting: the ROB head
    /// waits on an incomplete memory op and fetch cannot place a single
    /// instruction (ROB full, or the pending record is a memory op and
    /// the LSQ is full). Every escape from this state goes through an
    /// external call (`mem_done`, `wake_os`).
    fn quiescent(&self) -> bool {
        let fetch_blocked = self.rob_occupancy >= self.cfg.rob_size
            || (self.gap_left == 0
                && self.mem_pending.is_some()
                && self.mem_live as usize >= self.cfg.max_outstanding_mem);
        self.head_waits_on_mem() && fetch_blocked
    }

    /// Bulk-account `delta` skipped cycles exactly as dense ticking
    /// would: the core must be OS-stalled past the whole window or
    /// `quiescent` (zero commits, head waiting on
    /// memory), so each skipped cycle increments `cycles` plus exactly
    /// one stall counter.
    pub fn idle_advance(&mut self, delta: Cycle) {
        self.stats.cycles.add(delta);
        if let Some((_, reason)) = self.os_stall {
            match reason {
                OsStallReason::TagMiss => self.stats.stall_os_tag.add(delta),
                OsStallReason::BlockingFill => self.stats.stall_os_fill.add(delta),
            }
        } else {
            debug_assert!(self.quiescent(), "idle advance on an active core");
            self.stats.stall_mem.add(delta);
        }
    }

    /// Counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Reset counters (end of warm-up); pipeline state is preserved.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

impl NextActivity for Core {
    /// * OS-stalled past `now + 1` — the stall-expiry cycle (or `None`
    ///   for an open-ended stall ended only by `wake_os`).
    /// * Otherwise `Some(now + 1)` unless the core is
    ///   `quiescent`, which only `mem_done` /
    ///   `wake_os` can end — then `None`.
    ///
    /// Query *after* all of a cycle's completions and wakes have been
    /// delivered; the predicates read the post-delivery state.
    fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        if let Some((until, _)) = self.os_stall {
            if until > now + 1 {
                return (until != Cycle::MAX).then_some(until);
            }
            return Some(now + 1);
        }
        if self.quiescent() {
            None
        } else {
            Some(now + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_trace::TraceRecord;

    /// A trace of fixed records cycling forever.
    struct Cycling(Vec<TraceRecord>, usize);

    impl TraceSource for Cycling {
        fn next_record(&mut self) -> TraceRecord {
            let r = self.0[self.1 % self.0.len()];
            self.1 += 1;
            r
        }
        fn name(&self) -> &str {
            "cycling"
        }
    }

    fn core_with(records: Vec<TraceRecord>) -> Core {
        Core::new(0, CoreConfig::default(), Box::new(Cycling(records, 0)))
    }

    fn rec(gap: u32, kind: AccessKind, addr: u64) -> TraceRecord {
        TraceRecord {
            gap,
            kind,
            vaddr: VirtAddr(addr),
        }
    }

    /// Environment completing loads after a fixed latency.
    fn run(core: &mut Core, cycles: Cycle, latency: Cycle) {
        let mut inflight: VecDeque<(Cycle, u64)> = VecDeque::new();
        for now in 0..cycles {
            core.tick(now);
            while let Some(op) = core.pop_dispatch() {
                if op.kind == AccessKind::Read {
                    inflight.push_back((now + latency, op.slot));
                }
            }
            while let Some(&(at, slot)) = inflight.front() {
                if at <= now {
                    core.mem_done(slot);
                    inflight.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    #[test]
    fn alu_only_ipc_is_commit_width_bound() {
        // One mem op per 1000 instructions, instant memory.
        let mut c = core_with(vec![rec(999, AccessKind::Read, 0x1000)]);
        run(&mut c, 10_000, 1);
        let ipc = c.stats().ipc();
        assert!(ipc > 3.5, "ipc {ipc}");
    }

    #[test]
    fn memory_bound_ipc_reflects_latency() {
        // Pure dependent-looking loads: gap 0, one load per record, ROB
        // allows overlap, so IPC ≈ min(MLP-limited, latency-limited).
        let mut fast = core_with(vec![rec(0, AccessKind::Read, 0x1000)]);
        run(&mut fast, 20_000, 10);
        let mut slow = core_with(vec![rec(0, AccessKind::Read, 0x1000)]);
        run(&mut slow, 20_000, 200);
        assert!(
            fast.stats().ipc() > 2.0 * slow.stats().ipc(),
            "fast {} slow {}",
            fast.stats().ipc(),
            slow.stats().ipc()
        );
        assert!(slow.stats().stall_mem.get() > 0);
    }

    #[test]
    fn loads_overlap_up_to_lsq_limit() {
        // With latency L and max_outstanding M, throughput approaches
        // M loads per L cycles rather than 1 per L.
        let cfg = CoreConfig {
            max_outstanding_mem: 8,
            ..CoreConfig::default()
        };
        let mut c = Core::new(
            0,
            cfg,
            Box::new(Cycling(vec![rec(0, AccessKind::Read, 0)], 0)),
        );
        run(&mut c, 10_000, 100);
        let loads = c.stats().mem_ops.get();
        // Serial execution would give ~100 loads; 8-way overlap gives ~800.
        assert!(loads > 400, "loads {loads}");
    }

    #[test]
    fn stores_commit_without_waiting() {
        let mut c = core_with(vec![rec(0, AccessKind::Write, 0x40)]);
        // Never complete anything: stores must still retire.
        for now in 0..1000 {
            c.tick(now);
            while c.pop_dispatch().is_some() {}
        }
        assert!(c.stats().instructions.get() > 500);
    }

    #[test]
    fn os_stall_freezes_core_and_is_accounted() {
        let mut c = core_with(vec![rec(10, AccessKind::Read, 0x40)]);
        c.stall_os(500, OsStallReason::TagMiss);
        run(&mut c, 1000, 5);
        assert_eq!(c.stats().stall_os_tag.get(), 500);
        assert!(c.stats().instructions.get() > 0, "resumes after stall");
        // A longer blocking-fill stall overrides.
        c.stall_os(2000, OsStallReason::BlockingFill);
        run(&mut c, 1000, 5);
        assert!(c.stats().stall_os_fill.get() > 0);
    }

    #[test]
    fn wake_os_ends_open_ended_stall() {
        let mut c = core_with(vec![rec(1, AccessKind::Read, 0)]);
        c.stall_os(Cycle::MAX, OsStallReason::TagMiss);
        assert!(c.is_os_stalled(1_000_000));
        c.wake_os();
        assert!(!c.is_os_stalled(1_000_000));
        run(&mut c, 100, 5);
        assert!(c.stats().instructions.get() > 0);
    }

    #[test]
    fn shorter_overlapping_stall_does_not_shrink() {
        let mut c = core_with(vec![rec(1, AccessKind::Read, 0)]);
        c.stall_os(1000, OsStallReason::TagMiss);
        c.stall_os(10, OsStallReason::BlockingFill);
        assert!(c.is_os_stalled(999));
    }

    #[test]
    fn dispatch_backpressure_round_trip() {
        let mut c = core_with(vec![rec(0, AccessKind::Read, 0x80)]);
        c.tick(0);
        let op = c.pop_dispatch().expect("op dispatched");
        c.push_back_dispatch(op);
        let again = c.pop_dispatch().expect("same op back");
        assert_eq!(op, again);
    }

    #[test]
    fn ipc_counts_exclude_warmup_after_reset() {
        let mut c = core_with(vec![rec(3, AccessKind::Read, 0)]);
        run(&mut c, 1000, 5);
        assert!(c.stats().cycles.get() == 1000);
        c.reset_stats();
        assert_eq!(c.stats().cycles.get(), 0);
        run(&mut c, 100, 5);
        assert_eq!(c.stats().cycles.get(), 100);
    }

    #[test]
    #[should_panic(expected = "unknown slot")]
    fn mem_done_unknown_slot_panics() {
        let mut c = core_with(vec![rec(0, AccessKind::Read, 0)]);
        c.mem_done(42);
    }

    /// The same environment as [`run`], but advancing with
    /// `next_activity_at` + `idle_advance` instead of ticking every
    /// cycle — the mini version of the system's event kernel.
    fn run_event(core: &mut Core, cycles: Cycle, latency: Cycle) {
        let mut inflight: VecDeque<(Cycle, u64)> = VecDeque::new();
        let mut now = 0;
        while now < cycles {
            core.tick(now);
            while let Some(op) = core.pop_dispatch() {
                if op.kind == AccessKind::Read {
                    inflight.push_back((now + latency, op.slot));
                }
            }
            while let Some(&(at, slot)) = inflight.front() {
                if at <= now {
                    core.mem_done(slot);
                    inflight.pop_front();
                } else {
                    break;
                }
            }
            let mut next = core.next_activity_at(now).unwrap_or(Cycle::MAX);
            if core.dispatch_pending() {
                next = next.min(now + 1);
            }
            if let Some(&(at, _)) = inflight.front() {
                next = next.min(at);
            }
            let next = next.min(cycles);
            assert!(next > now, "next activity must be in the future");
            if next > now + 1 {
                core.idle_advance(next - (now + 1));
            }
            now = next;
        }
    }

    fn assert_same_stats(a: &CoreStats, b: &CoreStats) {
        assert_eq!(a.cycles.get(), b.cycles.get(), "cycles");
        assert_eq!(a.instructions.get(), b.instructions.get(), "instructions");
        assert_eq!(a.mem_ops.get(), b.mem_ops.get(), "mem_ops");
        assert_eq!(a.stall_mem.get(), b.stall_mem.get(), "stall_mem");
        assert_eq!(a.stall_os_tag.get(), b.stall_os_tag.get(), "stall_os_tag");
        assert_eq!(
            a.stall_os_fill.get(),
            b.stall_os_fill.get(),
            "stall_os_fill"
        );
        assert_eq!(a.busy.get(), b.busy.get(), "busy");
        assert_eq!(
            a.stall_frontend.get(),
            b.stall_frontend.get(),
            "stall_frontend"
        );
    }

    #[test]
    fn event_advance_matches_dense_ticking() {
        // Mixes covering quiescence (long-latency loads), ROB pressure,
        // posted stores, and ALU-heavy stretches.
        let mixes: Vec<Vec<TraceRecord>> = vec![
            vec![rec(0, AccessKind::Read, 0x1000)],
            vec![rec(999, AccessKind::Read, 0x1000)],
            vec![
                rec(3, AccessKind::Read, 0x40),
                rec(0, AccessKind::Write, 0x80),
                rec(17, AccessKind::Read, 0xc0),
            ],
        ];
        for mix in mixes {
            for latency in [1, 10, 400] {
                let mut dense = core_with(mix.clone());
                let mut event = core_with(mix.clone());
                run(&mut dense, 20_000, latency);
                run_event(&mut event, 20_000, latency);
                assert_same_stats(dense.stats(), event.stats());
            }
        }
    }

    #[test]
    fn event_advance_matches_dense_under_os_stall() {
        let mut dense = core_with(vec![rec(2, AccessKind::Read, 0x40)]);
        let mut event = core_with(vec![rec(2, AccessKind::Read, 0x40)]);
        dense.stall_os(700, OsStallReason::TagMiss);
        event.stall_os(700, OsStallReason::TagMiss);
        run(&mut dense, 2_000, 30);
        run_event(&mut event, 2_000, 30);
        assert_same_stats(dense.stats(), event.stats());
    }

    #[test]
    fn next_activity_contract() {
        // A fresh core always has fetch work.
        let mut c = core_with(vec![rec(0, AccessKind::Read, 0)]);
        assert_eq!(c.next_activity_at(5), Some(6));

        // Open-ended OS stall: reactive until wake_os.
        c.stall_os(Cycle::MAX, OsStallReason::TagMiss);
        assert_eq!(c.next_activity_at(5), None);
        c.wake_os();

        // Finite OS stall: wakes exactly at `until`.
        c.stall_os(100, OsStallReason::BlockingFill);
        assert_eq!(c.next_activity_at(5), Some(100));
        assert_eq!(c.next_activity_at(99), Some(100));
        c.wake_os();

        // Saturate the LSQ with never-completing loads: quiescent.
        for now in 0..200 {
            c.tick(now);
            while c.pop_dispatch().is_some() {}
        }
        assert_eq!(
            c.next_activity_at(200),
            None,
            "head blocked + LSQ full is reactive"
        );
    }
}
