//! Two-level TLBs with eviction notifications.
//!
//! OS-managed DRAM caches read their tags out of TLBs, so TLB behaviour
//! is on the critical path of the schemes:
//!
//! * a TLB **hit** delivers the CFN for free — the "ideal DC access
//!   time" property;
//! * a TLB **miss** triggers a page-table walk during which a DC *tag
//!   miss* may be discovered and handled by the scheme's front-end;
//! * TLB **evictions** must be reported so the front-end can clear the
//!   cache-page-descriptor TLB directory used for shootdown avoidance
//!   (the eviction daemon skips frames whose translation is still
//!   TLB-resident).
//!
//! The hierarchy is inclusive: every L1 entry is also in L2; an L2
//! eviction removes the L1 copy and constitutes a full "left the TLBs"
//! event.

use crate::page_table::FrameKind;
use nomad_types::{Cycle, NextActivity, Vpn};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbEntry {
    /// Virtual page number.
    pub vpn: Vpn,
    /// Current frame mapping (the DC tag when cached).
    pub frame: FrameKind,
    /// NC bit copied from the PTE.
    pub noncacheable: bool,
}

/// Configuration of a two-level TLB hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// L1 TLB entries.
    pub l1_entries: usize,
    /// L2 TLB entries.
    pub l2_entries: usize,
    /// L1 hit latency in cycles (usually folded into the L1D access).
    pub l1_latency: Cycle,
    /// L2 hit latency in cycles.
    pub l2_latency: Cycle,
    /// Page-table walk latency in cycles (page-walk caches assumed).
    pub walk_latency: Cycle,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            l1_entries: 64,
            l2_entries: 1536,
            l1_latency: 1,
            l2_latency: 9,
            walk_latency: 80,
        }
    }
}

/// One fully-associative LRU TLB level.
///
/// Entries live in a fixed arena of parallel `stamps`/`entries` arrays
/// with a `u64`-word occupancy bit-vector; a `vpn → slot` map provides
/// O(1) lookup. LRU victim selection walks the set bits of the
/// occupancy words over the flat stamp array — a cache-friendly linear
/// scan instead of a `HashMap` iteration. Recency stamps are unique
/// (one counter bump per operation), so the minimum-stamp victim is
/// identical to the one the old map-scan implementation chose.
#[derive(Debug)]
pub struct Tlb {
    /// `vpn → slot` index into the arena.
    map: HashMap<u64, usize>,
    /// Per-slot recency stamps; meaningful only where `live` is set.
    stamps: Vec<u64>,
    /// Per-slot entry payloads; meaningful only where `live` is set.
    entries: Vec<TlbEntry>,
    /// Occupancy bit-vector, one bit per slot.
    live: Vec<u64>,
    /// Free slots.
    free: Vec<usize>,
    stamp: u64,
}

impl Tlb {
    /// A TLB holding `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        let filler = TlbEntry {
            vpn: Vpn(0),
            frame: FrameKind::Phys(nomad_types::Pfn(0)),
            noncacheable: false,
        };
        Tlb {
            map: HashMap::with_capacity(capacity + 1),
            stamps: vec![0; capacity],
            entries: vec![filler; capacity],
            live: vec![0; capacity.div_ceil(64)],
            free: (0..capacity).rev().collect(),
            stamp: 0,
        }
    }

    /// Look up `vpn`, refreshing its recency on a hit.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get(&vpn.raw()).map(|&slot| {
            self.stamps[slot] = stamp;
            self.entries[slot]
        })
    }

    /// Side-effect-free presence check.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.map.contains_key(&vpn.raw())
    }

    /// Slot holding the oldest (minimum-stamp) live entry.
    fn lru_slot(&self) -> usize {
        let mut best_slot = usize::MAX;
        let mut best_stamp = u64::MAX;
        for (wi, &word) in self.live.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let slot = wi * 64 + w.trailing_zeros() as usize;
                if self.stamps[slot] < best_stamp {
                    best_stamp = self.stamps[slot];
                    best_slot = slot;
                }
                w &= w - 1;
            }
        }
        assert!(best_slot != usize::MAX, "non-empty");
        best_slot
    }

    /// Insert an entry, returning the LRU victim if the TLB was full.
    pub fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(&slot) = self.map.get(&entry.vpn.raw()) {
            // Refresh in place; no eviction.
            self.stamps[slot] = stamp;
            self.entries[slot] = entry;
            return None;
        }
        let (slot, victim) = match self.free.pop() {
            Some(slot) => (slot, None),
            None => {
                // Full: evict the LRU entry and reuse its slot. The
                // incoming entry carries the newest stamp, so it can
                // never be its own victim.
                let slot = self.lru_slot();
                let victim = self.entries[slot];
                self.map.remove(&victim.vpn.raw());
                (slot, Some(victim))
            }
        };
        self.live[slot / 64] |= 1u64 << (slot % 64);
        self.stamps[slot] = stamp;
        self.entries[slot] = entry;
        self.map.insert(entry.vpn.raw(), slot);
        victim
    }

    /// Remove `vpn` (shootdown), returning the entry if present.
    pub fn invalidate(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        self.map.remove(&vpn.raw()).map(|slot| {
            self.live[slot / 64] &= !(1u64 << (slot % 64));
            self.free.push(slot);
            self.entries[slot]
        })
    }

    /// Apply `f` to the entry for `vpn`, if present (PTE update
    /// propagation).
    pub fn update(&mut self, vpn: Vpn, f: impl FnOnce(&mut TlbEntry)) -> bool {
        if let Some(&slot) = self.map.get(&vpn.raw()) {
            f(&mut self.entries[slot]);
            true
        } else {
            false
        }
    }

    /// Evict everything and restore the fresh-TLB slot order and
    /// recency clock, keeping the arena allocations. Dead slots'
    /// stamps/entries are left stale — every read path is gated on the
    /// occupancy bit-vector or the map, so stale payloads are
    /// unobservable.
    pub fn reset(&mut self) {
        self.map.clear();
        self.live.fill(0);
        self.free.clear();
        self.free.extend((0..self.stamps.len()).rev());
        self.stamp = 0;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Result of a hierarchy lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLookup {
    /// Found; translation available after `latency` cycles.
    Hit {
        /// The matching entry.
        entry: TlbEntry,
        /// L1 or L2 hit latency.
        latency: Cycle,
    },
    /// Both levels missed; the caller must walk the page table. The
    /// reported latency covers the L1+L2 probes; walk time is added by
    /// the walker.
    Miss {
        /// Cycles spent probing both levels.
        latency: Cycle,
    },
}

/// A per-core, inclusive, two-level TLB hierarchy.
#[derive(Debug)]
pub struct TlbHierarchy {
    cfg: TlbConfig,
    l1: Tlb,
    l2: Tlb,
    /// Fully-departed entries awaiting collection by the scheme for
    /// TLB-directory maintenance.
    departures: Vec<TlbEntry>,
    /// Stats: hits at each level and misses.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that hit L2).
    pub l2_hits: u64,
    /// Full misses (walks).
    pub misses: u64,
}

impl TlbHierarchy {
    /// Build a hierarchy from `cfg`.
    pub fn new(cfg: TlbConfig) -> Self {
        TlbHierarchy {
            l1: Tlb::new(cfg.l1_entries),
            l2: Tlb::new(cfg.l2_entries),
            cfg,
            departures: Vec::new(),
            l1_hits: 0,
            l2_hits: 0,
            misses: 0,
        }
    }

    /// Configuration in use.
    pub fn cfg(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Reset both levels, pending departures and hit/miss counters to
    /// the just-constructed state, keeping allocations (arena reuse
    /// between sweep cells).
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.departures.clear();
        self.l1_hits = 0;
        self.l2_hits = 0;
        self.misses = 0;
    }

    /// Look up `vpn` across both levels, promoting L2 hits into L1.
    pub fn lookup(&mut self, vpn: Vpn) -> TlbLookup {
        if let Some(entry) = self.l1.lookup(vpn) {
            self.l1_hits += 1;
            return TlbLookup::Hit {
                entry,
                latency: self.cfg.l1_latency,
            };
        }
        if let Some(entry) = self.l2.lookup(vpn) {
            self.l2_hits += 1;
            // Promote; inclusive, so the L1 victim stays in L2.
            self.l1.insert(entry);
            return TlbLookup::Hit {
                entry,
                latency: self.cfg.l1_latency + self.cfg.l2_latency,
            };
        }
        self.misses += 1;
        TlbLookup::Miss {
            latency: self.cfg.l1_latency + self.cfg.l2_latency,
        }
    }

    /// Install a translation after a walk. Entries pushed fully out of
    /// the hierarchy are queued for
    /// [`take_departures`](TlbHierarchy::take_departures).
    pub fn insert(&mut self, entry: TlbEntry) {
        self.l1.insert(entry);
        if let Some(victim) = self.l2.insert(entry) {
            // Inclusive hierarchy: remove the L1 copy too.
            self.l1.invalidate(victim.vpn);
            self.departures.push(victim);
        }
    }

    /// Whether `vpn`'s translation is resident anywhere in the
    /// hierarchy (what the TLB directory tracks).
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.l2.contains(vpn) || self.l1.contains(vpn)
    }

    /// Update a resident translation in both levels (PTE change
    /// without shootdown, e.g. the NOMAD tag-miss handler rewriting
    /// PFN → CFN).
    pub fn update(&mut self, vpn: Vpn, frame: FrameKind) {
        self.l1.update(vpn, |e| e.frame = frame);
        self.l2.update(vpn, |e| e.frame = frame);
    }

    /// Shoot down `vpn`; returns whether it was resident.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let in_l1 = self.l1.invalidate(vpn).is_some();
        match self.l2.invalidate(vpn) {
            Some(e) => {
                self.departures.push(e);
                true
            }
            None => in_l1,
        }
    }

    /// Drain entries that fully left the hierarchy since the last call;
    /// the scheme clears their TLB-directory bits.
    pub fn take_departures(&mut self) -> Vec<TlbEntry> {
        std::mem::take(&mut self.departures)
    }

    /// Page-table-walk latency of this hierarchy's walker.
    pub fn walk_latency(&self) -> Cycle {
        self.cfg.walk_latency
    }
}

impl NextActivity for TlbHierarchy {
    /// TLBs have no clocked state at all — every lookup, insert, and
    /// shootdown happens synchronously inside someone else's cycle —
    /// so they never request a wake-up.
    fn next_activity_at(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_types::Pfn;

    fn entry(vpn: u64) -> TlbEntry {
        TlbEntry {
            vpn: Vpn(vpn),
            frame: FrameKind::Phys(Pfn(vpn + 1000)),
            noncacheable: false,
        }
    }

    #[test]
    fn tlb_lru_eviction() {
        let mut t = Tlb::new(2);
        assert!(t.insert(entry(1)).is_none());
        assert!(t.insert(entry(2)).is_none());
        t.lookup(Vpn(1)); // 2 becomes LRU
        let v = t.insert(entry(3)).expect("eviction");
        assert_eq!(v.vpn, Vpn(2));
        assert!(t.contains(Vpn(1)) && t.contains(Vpn(3)));
    }

    #[test]
    fn hierarchy_promotion_and_latencies() {
        let cfg = TlbConfig {
            l1_entries: 1,
            l2_entries: 4,
            ..TlbConfig::default()
        };
        let mut h = TlbHierarchy::new(cfg);
        h.insert(entry(1));
        h.insert(entry(2)); // pushes 1 out of L1 (still in L2)
        match h.lookup(Vpn(1)) {
            TlbLookup::Hit { latency, .. } => {
                assert_eq!(latency, cfg.l1_latency + cfg.l2_latency)
            }
            _ => panic!("expected L2 hit"),
        }
        // Now promoted into L1.
        match h.lookup(Vpn(1)) {
            TlbLookup::Hit { latency, .. } => assert_eq!(latency, cfg.l1_latency),
            _ => panic!("expected L1 hit"),
        }
        assert_eq!(h.l1_hits, 1);
        assert_eq!(h.l2_hits, 1);
    }

    #[test]
    fn full_departure_reported_once() {
        let cfg = TlbConfig {
            l1_entries: 1,
            l2_entries: 2,
            ..TlbConfig::default()
        };
        let mut h = TlbHierarchy::new(cfg);
        h.insert(entry(1));
        h.insert(entry(2));
        h.insert(entry(3)); // L2 evicts LRU (1)
        let departed = h.take_departures();
        assert_eq!(departed.len(), 1);
        assert_eq!(departed[0].vpn, Vpn(1));
        assert!(!h.contains(Vpn(1)));
        assert!(h.take_departures().is_empty(), "drained");
    }

    #[test]
    fn miss_counts_and_latency() {
        let mut h = TlbHierarchy::new(TlbConfig::default());
        match h.lookup(Vpn(9)) {
            TlbLookup::Miss { latency } => assert_eq!(latency, 10),
            _ => panic!("expected miss"),
        }
        assert_eq!(h.misses, 1);
    }

    #[test]
    fn update_propagates_to_both_levels() {
        let mut h = TlbHierarchy::new(TlbConfig::default());
        h.insert(entry(5));
        h.update(Vpn(5), FrameKind::Phys(Pfn(777)));
        match h.lookup(Vpn(5)) {
            TlbLookup::Hit { entry, .. } => {
                assert_eq!(entry.frame, FrameKind::Phys(Pfn(777)))
            }
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn invalidate_reports_departure() {
        let mut h = TlbHierarchy::new(TlbConfig::default());
        h.insert(entry(4));
        assert!(h.invalidate(Vpn(4)));
        assert!(!h.contains(Vpn(4)));
        assert_eq!(h.take_departures().len(), 1);
        assert!(!h.invalidate(Vpn(4)));
    }

    /// The arena'd TLB behaves identically to a naive ordered-list LRU
    /// over a seeded random op stream (lookup/insert/invalidate),
    /// including victim identity.
    #[test]
    fn arena_tlb_matches_naive_lru() {
        // Naive reference: most-recent at the back.
        struct Naive {
            cap: usize,
            order: Vec<TlbEntry>,
        }
        impl Naive {
            fn lookup(&mut self, vpn: Vpn) -> Option<TlbEntry> {
                let pos = self.order.iter().position(|e| e.vpn == vpn)?;
                let e = self.order.remove(pos);
                self.order.push(e);
                Some(e)
            }
            fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
                if let Some(pos) = self.order.iter().position(|e| e.vpn == entry.vpn) {
                    self.order.remove(pos);
                    self.order.push(entry);
                    return None;
                }
                self.order.push(entry);
                if self.order.len() > self.cap {
                    Some(self.order.remove(0))
                } else {
                    None
                }
            }
            fn invalidate(&mut self, vpn: Vpn) -> Option<TlbEntry> {
                let pos = self.order.iter().position(|e| e.vpn == vpn)?;
                Some(self.order.remove(pos))
            }
        }

        let mut state = 7u64;
        let mut rng = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for cap in [1usize, 2, 7, 64] {
            let mut t = Tlb::new(cap);
            let mut n = Naive {
                cap,
                order: Vec::new(),
            };
            for _ in 0..3000 {
                let vpn = rng() % (cap as u64 * 2 + 1);
                match rng() % 4 {
                    0 => assert_eq!(t.lookup(Vpn(vpn)), n.lookup(Vpn(vpn))),
                    1 | 2 => assert_eq!(t.insert(entry(vpn)), n.insert(entry(vpn))),
                    _ => assert_eq!(t.invalidate(Vpn(vpn)), n.invalidate(Vpn(vpn))),
                }
                assert_eq!(t.len(), n.order.len());
            }
        }
    }
}
