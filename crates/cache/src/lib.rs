//! SRAM cache-hierarchy substrate for the NOMAD simulator.
//!
//! Provides the building blocks between the CPU cores and the DRAM
//! devices:
//!
//! * [`CacheArray`] — a pure (untimed) set-associative tag array with
//!   LRU replacement, reused by SRAM cache levels and by the HW-based
//!   DRAM-cache scheme's tag store.
//! * [`MshrFile`] — miss status/information holding registers with
//!   secondary-miss merging; the mechanism that makes the SRAM caches
//!   (and, by architectural analogy, the NOMAD back-end's PCSHRs)
//!   non-blocking.
//! * [`CacheLevel`] — a timed, non-blocking, write-back/write-allocate
//!   cache component with hit-latency pipelining and backpressure.
//! * [`Tlb`] / [`TlbHierarchy`] — two-level TLBs with eviction
//!   notifications, needed for the OS-managed schemes' TLB-directory
//!   shootdown avoidance.
//! * [`PageTable`] — PTEs extended with the paper's `cached` (C) and
//!   `non-cacheable` (NC) bits, plus first-touch physical-frame
//!   allocation.

mod array;
mod level;
mod mshr;
mod page_table;
mod tlb;

pub use array::{CacheArray, Victim};
pub use level::{CacheLevel, CacheLevelConfig, CacheLevelStats};
pub use mshr::{MshrAlloc, MshrFile, MshrReject, MshrToken};
pub use page_table::{FrameKind, PageTable, Pte};
pub use tlb::{Tlb, TlbConfig, TlbEntry, TlbHierarchy, TlbLookup};
