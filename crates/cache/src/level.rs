//! A timed, non-blocking, write-back/write-allocate cache level.
//!
//! [`CacheLevel`] is the component instantiated three times per system
//! (private L1D and L2, shared L3). It models:
//!
//! * hit-latency pipelining (a request is looked up `hit_latency`
//!   cycles after arrival),
//! * bounded MSHRs with secondary-miss merging (non-blocking misses),
//! * write-back, write-allocate policy with dirty-victim writebacks,
//! * head-of-line stalling with backpressure when MSHRs or the
//!   incoming queue fill up.
//!
//! The level never talks to other components directly; the system
//! assembly shuttles [`MemReq`]s from [`CacheLevel::pop_to_lower`] into
//! the next level (when it [`can_accept`](CacheLevel::can_accept)) and
//! feeds fills back through [`CacheLevel::push_resp`].

use crate::array::CacheArray;
use crate::mshr::{MshrAlloc, MshrFile, MshrToken};
use nomad_obs::{Gauge, Histo, Registry, Span, SpanRing};
use nomad_types::stats::Counter;
use nomad_types::{
    AccessKind, Cycle, MemReq, MemResp, MemTarget, NextActivity, ReqId, TrafficClass,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Configuration of one cache level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Display name ("L1D", "L2", "L3").
    pub name: String,
    /// Capacity in bytes (64-byte lines).
    pub size_bytes: u64,
    /// Associativity.
    pub assoc: usize,
    /// Lookup latency in CPU cycles.
    pub hit_latency: u64,
    /// Number of MSHR entries.
    pub mshrs: usize,
    /// Maximum merged requests per MSHR.
    pub mshr_targets: usize,
    /// Incoming-queue capacity (upstream backpressure threshold).
    pub incoming_capacity: usize,
    /// Lookups processed per cycle.
    pub ports: usize,
}

impl CacheLevelConfig {
    /// 32 KiB / 8-way / 4-cycle private L1D with 8 MSHRs.
    pub fn l1d() -> Self {
        CacheLevelConfig {
            name: "L1D".into(),
            size_bytes: 32 * 1024,
            assoc: 8,
            hit_latency: 4,
            mshrs: 16,
            mshr_targets: 8,
            incoming_capacity: 16,
            ports: 2,
        }
    }

    /// 256 KiB / 8-way / 12-cycle private L2 with 16 MSHRs.
    pub fn l2() -> Self {
        CacheLevelConfig {
            name: "L2".into(),
            size_bytes: 256 * 1024,
            assoc: 8,
            hit_latency: 12,
            mshrs: 24,
            mshr_targets: 8,
            incoming_capacity: 24,
            ports: 2,
        }
    }

    /// Shared L3: `size_bytes` capacity, 16-way, 38-cycle, 32 MSHRs.
    pub fn l3(size_bytes: u64) -> Self {
        CacheLevelConfig {
            name: "L3".into(),
            size_bytes,
            assoc: 16,
            hit_latency: 38,
            mshrs: 64,
            mshr_targets: 16,
            incoming_capacity: 64,
            ports: 8,
        }
    }
}

/// Counters exported by a cache level.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheLevelStats {
    /// Requests looked up.
    pub accesses: Counter,
    /// Lookups that hit.
    pub hits: Counter,
    /// Primary misses (line fetches issued).
    pub primary_misses: Counter,
    /// Secondary misses merged into an in-flight MSHR.
    pub secondary_misses: Counter,
    /// Dirty victims written back.
    pub writebacks: Counter,
    /// Cycles the head of the incoming queue was stalled on MSHRs.
    pub mshr_stall_cycles: Counter,
}

impl CacheLevelStats {
    /// Miss ratio over all lookups.
    pub fn miss_rate(&self) -> f64 {
        nomad_types::stats::ratio(
            self.primary_misses.get() + self.secondary_misses.get(),
            self.accesses.get(),
        )
    }

    /// Reset all counters (end of warm-up).
    pub fn reset(&mut self) {
        *self = CacheLevelStats::default();
    }
}

/// Fold the address-space discriminator into a block key so one array
/// can cache both physical- and cache-space blocks without aliasing.
#[inline]
fn block_key(addr: nomad_types::BlockAddr, target: MemTarget) -> u64 {
    match target {
        MemTarget::OffPackage => addr.0 << 1,
        MemTarget::DramCache => (addr.0 << 1) | 1,
    }
}

/// Recover `(BlockAddr, MemTarget)` from a block key.
#[inline]
fn unkey(key: u64) -> (nomad_types::BlockAddr, MemTarget) {
    let target = if key & 1 == 1 {
        MemTarget::DramCache
    } else {
        MemTarget::OffPackage
    };
    (nomad_types::BlockAddr(key >> 1), target)
}

/// Observability handles for one cache level. The gauges are refreshed
/// from the existing counters at sample points; only the optional
/// miss-latency histogram and MSHR-stall spans touch the request path,
/// and both sit behind the `obs: Option<_>` gate so a run with obs
/// disabled executes the pre-instrumentation code byte-for-byte.
#[derive(Debug)]
struct LevelObs {
    mshr_occupancy: Gauge,
    hits: Gauge,
    misses: Gauge,
    stall_cycles: Gauge,
    /// Completed-miss latency (primary misses only); `None` unless
    /// attached with [`CacheLevel::attach_obs_full`].
    miss_latency: Option<Histo>,
    /// Issue cycle of each in-flight primary miss, keyed by MSHR slot.
    miss_start: HashMap<usize, Cycle>,
    /// Span sink + track id for head-of-line MSHR-stall spans.
    ring: Option<(SpanRing, u32)>,
    /// Start of the currently open stall span, if any.
    stall_open: Option<Cycle>,
}

impl LevelObs {
    /// Merge consecutive stalled cycles into one span: opened on the
    /// first stalled tick, closed (and pushed) on the first tick that
    /// makes progress again. A stalled level is ticked densely (its
    /// head is ready), so the span is exact.
    fn note_stall_state(&mut self, stalled: bool, now: Cycle) {
        if stalled {
            if self.stall_open.is_none() {
                self.stall_open = Some(now);
            }
        } else if let Some(start) = self.stall_open.take() {
            if let Some((ring, track)) = &self.ring {
                ring.push(Span::complete(
                    "mshr_stall",
                    "cache",
                    start,
                    now.saturating_sub(start),
                    *track,
                ));
            }
        }
    }
}

/// One timed cache level.
#[derive(Debug)]
pub struct CacheLevel {
    cfg: CacheLevelConfig,
    array: CacheArray,
    mshrs: MshrFile,
    incoming: VecDeque<(Cycle, MemReq)>,
    resp_in: VecDeque<MemResp>,
    to_lower: VecDeque<MemReq>,
    to_upper: VecDeque<(Cycle, MemResp)>,
    stats: CacheLevelStats,
    obs: Option<LevelObs>,
    /// Reused across fills so completing an MSHR allocates nothing.
    fill_scratch: Vec<MemReq>,
}

impl CacheLevel {
    /// Build a level from its configuration.
    pub fn new(cfg: CacheLevelConfig) -> Self {
        let array = CacheArray::with_geometry(cfg.size_bytes, cfg.assoc);
        let mshrs = MshrFile::new(cfg.mshrs, cfg.mshr_targets);
        CacheLevel {
            cfg,
            array,
            mshrs,
            incoming: VecDeque::new(),
            resp_in: VecDeque::new(),
            to_lower: VecDeque::new(),
            to_upper: VecDeque::new(),
            stats: CacheLevelStats::default(),
            obs: None,
            fill_scratch: Vec::new(),
        }
    }

    /// Configuration of this level.
    pub fn cfg(&self) -> &CacheLevelConfig {
        &self.cfg
    }

    /// Register this level's sampled metrics under `prefix` (e.g.
    /// `cache.l2.0`). Gauges only — the request path stays untouched.
    pub fn attach_obs(&mut self, reg: &Registry, prefix: &str) {
        self.obs = Some(Self::make_obs(reg, prefix, None));
    }

    /// [`attach_obs`](Self::attach_obs) plus the per-miss latency
    /// histogram and MSHR head-of-line stall spans pushed to `ring` on
    /// `track` — the full instrumentation the shared LLC gets.
    pub fn attach_obs_full(&mut self, reg: &Registry, prefix: &str, ring: SpanRing, track: u32) {
        let mut obs = Self::make_obs(reg, prefix, Some((reg, prefix)));
        obs.ring = Some((ring, track));
        self.obs = Some(obs);
    }

    fn make_obs(reg: &Registry, prefix: &str, histo: Option<(&Registry, &str)>) -> LevelObs {
        LevelObs {
            mshr_occupancy: reg.gauge(
                format!("{prefix}.mshr_occupancy"),
                "entries",
                "cache",
                "MSHR entries allocated at the sample point",
            ),
            hits: reg.gauge(
                format!("{prefix}.hits"),
                "requests",
                "cache",
                "Lookups that hit since the measurement reset",
            ),
            misses: reg.gauge(
                format!("{prefix}.misses"),
                "requests",
                "cache",
                "Primary + secondary misses since the measurement reset",
            ),
            stall_cycles: reg.gauge(
                format!("{prefix}.mshr_stall_cycles"),
                "cycles",
                "cache",
                "Cycles the incoming-queue head stalled on a full MSHR file",
            ),
            miss_latency: histo.map(|(reg, prefix)| {
                reg.histogram(
                    format!("{prefix}.miss_latency"),
                    "cycles",
                    "cache",
                    "Completion latency of primary misses (fetch issue to fill)",
                )
            }),
            miss_start: HashMap::new(),
            ring: None,
            stall_open: None,
        }
    }

    /// Refresh the attached gauges from the live counters; no-op when
    /// obs is not attached.
    pub fn obs_sample(&self) {
        let Some(obs) = &self.obs else { return };
        obs.mshr_occupancy.set(self.mshrs.in_use() as u64);
        obs.hits.set(self.stats.hits.get());
        obs.misses
            .set(self.stats.primary_misses.get() + self.stats.secondary_misses.get());
        obs.stall_cycles.set(self.stats.mshr_stall_cycles.get());
    }

    /// Whether the incoming queue has room for one more request.
    pub fn can_accept(&self) -> bool {
        self.incoming.len() < self.cfg.incoming_capacity
    }

    /// Submit a request from the upper level / core.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if called while
    /// [`can_accept`](CacheLevel::can_accept) is `false`.
    pub fn push_req(&mut self, req: MemReq, now: Cycle) {
        debug_assert!(
            self.can_accept(),
            "{}: push without can_accept",
            self.cfg.name
        );
        self.incoming.push_back((now + self.cfg.hit_latency, req));
    }

    /// Deliver a fill from the lower level; `resp.token` must be the
    /// MSHR token this level used for the fetch.
    pub fn push_resp(&mut self, resp: MemResp) {
        self.resp_in.push_back(resp);
    }

    /// Next request destined for the lower level, if any (peek).
    pub fn peek_to_lower(&self) -> Option<&MemReq> {
        self.to_lower.front()
    }

    /// Remove and return the request yielded by
    /// [`peek_to_lower`](CacheLevel::peek_to_lower).
    pub fn pop_to_lower(&mut self) -> Option<MemReq> {
        self.to_lower.pop_front()
    }

    /// Next response ready for the upper level at `now`, if any.
    pub fn pop_to_upper(&mut self, now: Cycle) -> Option<MemResp> {
        match self.to_upper.front() {
            Some(&(ready, _)) if ready <= now => self.to_upper.pop_front().map(|(_, r)| r),
            _ => None,
        }
    }

    /// Advance one cycle: apply fills, then look up ready incoming
    /// requests (up to `ports`).
    pub fn tick(&mut self, now: Cycle) {
        // 1. Fills from below.
        while let Some(resp) = self.resp_in.pop_front() {
            self.apply_fill(resp, now);
        }

        // 2. Lookups.
        let mut budget = self.cfg.ports;
        let mut stalled = false;
        while budget > 0 {
            let ready = matches!(self.incoming.front(), Some(&(ready, _)) if ready <= now);
            if !ready {
                break;
            }
            let (_, req) = *self.incoming.front().expect("checked non-empty");
            if self.lookup(req, now) {
                self.incoming.pop_front();
                budget -= 1;
            } else {
                // Structural hazard: head-of-line stall, retry next cycle.
                self.stats.mshr_stall_cycles.inc();
                stalled = true;
                break;
            }
        }
        if let Some(obs) = &mut self.obs {
            obs.note_stall_state(stalled, now);
        }
    }

    /// Look up one request; returns `false` if it must be retried.
    fn lookup(&mut self, req: MemReq, now: Cycle) -> bool {
        let key = block_key(req.addr, req.target);
        self.stats.accesses.inc();
        let hit = match req.kind {
            AccessKind::Read => self.array.touch(key),
            AccessKind::Write => self.array.mark_dirty(key),
        };
        if hit {
            self.stats.hits.inc();
            if req.wants_response {
                self.to_upper.push_back((now, req.response()));
            }
            return true;
        }
        // Miss: allocate or merge an MSHR. The fetch itself is always a
        // read (write-allocate); the merged write marks the fill dirty.
        match self.mshrs.allocate_or_merge(key, req) {
            Ok(MshrAlloc::Primary(token)) => {
                self.stats.primary_misses.inc();
                if let Some(obs) = &mut self.obs {
                    if obs.miss_latency.is_some() {
                        obs.miss_start.insert(token.0, now);
                    }
                }
                self.to_lower.push_back(MemReq {
                    token: token.into(),
                    addr: req.addr,
                    target: req.target,
                    kind: AccessKind::Read,
                    class: req.class,
                    core: req.core,
                    wants_response: true,
                });
                true
            }
            Ok(MshrAlloc::Secondary(_)) => {
                self.stats.secondary_misses.inc();
                true
            }
            Err(_) => {
                // Undo the accounting for the retried lookup.
                self.stats.accesses.0 -= 1;
                false
            }
        }
    }

    fn apply_fill(&mut self, resp: MemResp, now: Cycle) {
        let token = MshrToken(resp.token.0 as usize);
        let mut targets = std::mem::take(&mut self.fill_scratch);
        targets.clear();
        let (key, fills_dirty) = self.mshrs.complete_into(token, &mut targets);
        if let Some(obs) = &mut self.obs {
            if let Some(start) = obs.miss_start.remove(&token.0) {
                if let Some(h) = &obs.miss_latency {
                    h.record(now.saturating_sub(start));
                }
            }
        }
        if let Some(victim) = self.array.insert(key, fills_dirty) {
            if victim.dirty {
                self.stats.writebacks.inc();
                let (addr, target) = unkey(victim.key);
                self.to_lower.push_back(MemReq {
                    token: ReqId(u64::MAX),
                    addr,
                    target,
                    kind: AccessKind::Write,
                    class: TrafficClass::DemandWrite,
                    core: targets.first().map(|t| t.core).unwrap_or(0),
                    wants_response: false,
                });
            }
        }
        for t in targets.drain(..) {
            if t.wants_response {
                self.to_upper.push_back((now + 1, t.response()));
            }
        }
        self.fill_scratch = targets;
    }

    /// Flush every line of the 4 KiB page containing cache-space frame
    /// `cfn_base_block` (Algorithm 2's `flush_cache_range`); returns
    /// `(lines_removed, dirty_lines)`. Dirty data is folded into the
    /// page's dirty-in-cache state by the caller rather than written
    /// back line-by-line.
    pub fn invalidate_dc_page(&mut self, page: u64) -> (usize, usize) {
        self.array.invalidate_matching(|key| {
            let (addr, target) = unkey(key);
            target == MemTarget::DramCache && addr.page() == page
        })
    }

    /// Counters for this level.
    pub fn stats(&self) -> &CacheLevelStats {
        &self.stats
    }

    /// Reset counters (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Return the level to its just-constructed state — empty array,
    /// free MSHRs, empty queues, zeroed counters — while keeping every
    /// allocation. Attached observability handles are left in place;
    /// arena reuse refuses observed systems, so a reset level is never
    /// sampled against a stale registry.
    pub fn reset(&mut self) {
        self.array.reset();
        self.mshrs.reset();
        self.incoming.clear();
        self.resp_in.clear();
        self.to_lower.clear();
        self.to_upper.clear();
        self.stats.reset();
        self.fill_scratch.clear();
    }

    /// Whether the level holds no queued work (used by drain loops in
    /// tests).
    pub fn is_idle(&self) -> bool {
        self.incoming.is_empty()
            && self.resp_in.is_empty()
            && self.to_lower.is_empty()
            && self.to_upper.is_empty()
            && self.mshrs.in_use() == 0
    }
}

impl NextActivity for CacheLevel {
    /// Pending fills or lower-bound traffic need the very next cycle;
    /// queued lookups and responses wake the level at their ready
    /// times. A level whose only outstanding state is in-flight MSHRs
    /// is reactive: nothing happens until a response arrives from
    /// below.
    fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        if !self.resp_in.is_empty() || !self.to_lower.is_empty() {
            return Some(now + 1);
        }
        let mut next: Option<Cycle> = None;
        let mut consider = |ready: Cycle| {
            let t = ready.max(now + 1);
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        // Both queues are front-gated: only the head's ready time can
        // unlock work.
        if let Some(&(ready, _)) = self.incoming.front() {
            consider(ready);
        }
        if let Some(&(ready, _)) = self.to_upper.front() {
            consider(ready);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_types::BlockAddr;

    fn read(token: u64, block: u64) -> MemReq {
        MemReq::read(ReqId(token), BlockAddr(block), MemTarget::OffPackage, 0)
    }

    fn mini_cfg() -> CacheLevelConfig {
        CacheLevelConfig {
            name: "T".into(),
            size_bytes: 4 * 1024,
            assoc: 2,
            hit_latency: 2,
            mshrs: 2,
            mshr_targets: 2,
            incoming_capacity: 8,
            ports: 2,
        }
    }

    /// Run the level as if backed by a fixed-latency memory.
    fn run_until_idle(
        level: &mut CacheLevel,
        mem_latency: Cycle,
        max: Cycle,
    ) -> Vec<(Cycle, MemResp)> {
        let mut lower: VecDeque<(Cycle, MemReq)> = VecDeque::new();
        let mut out = Vec::new();
        for now in 0..max {
            level.tick(now);
            while let Some(req) = level.pop_to_lower() {
                if req.wants_response {
                    lower.push_back((now + mem_latency, req));
                }
            }
            while let Some(&(ready, _)) = lower.front() {
                if ready <= now {
                    let (_, req) = lower.pop_front().expect("checked");
                    level.push_resp(req.response());
                } else {
                    break;
                }
            }
            while let Some(resp) = level.pop_to_upper(now) {
                out.push((now, resp));
            }
            if level.is_idle() && lower.is_empty() {
                break;
            }
        }
        out
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = CacheLevel::new(mini_cfg());
        c.push_req(read(1, 100), 0);
        let out = run_until_idle(&mut c, 50, 1000);
        assert_eq!(out.len(), 1);
        assert!(out[0].0 >= 52, "miss latency should include memory");
        assert_eq!(c.stats().primary_misses.get(), 1);

        // Second access to the same block: pure hit at hit_latency.
        let start = out[0].0 + 1;
        c.push_req(read(2, 100), start);
        let mut got = None;
        for now in start..start + 20 {
            c.tick(now);
            if let Some(r) = c.pop_to_upper(now) {
                got = Some((now, r));
                break;
            }
        }
        let (at, resp) = got.expect("hit response");
        assert_eq!(resp.token, ReqId(2));
        assert_eq!(at, start + 2, "hit latency");
        assert_eq!(c.stats().hits.get(), 1);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut c = CacheLevel::new(mini_cfg());
        c.push_req(read(1, 100), 0);
        c.push_req(read(2, 100), 0);
        let out = run_until_idle(&mut c, 50, 1000);
        assert_eq!(out.len(), 2);
        assert_eq!(c.stats().primary_misses.get(), 1);
        assert_eq!(c.stats().secondary_misses.get(), 1);
    }

    #[test]
    fn write_allocate_marks_dirty_and_causes_writeback() {
        let mut c = CacheLevel::new(mini_cfg());
        let w = MemReq::write(ReqId(1), BlockAddr(100), MemTarget::OffPackage, 0);
        c.push_req(w, 0);
        run_until_idle(&mut c, 10, 500);
        assert_eq!(c.stats().primary_misses.get(), 1);

        // Fill the set until block 100's line is evicted; with 32 sets
        // (4 KiB / 2-way), conflicting keys are 100 + k*32 (key = addr<<1
        // so same set means same low 5 bits of key>>1... use stride of
        // num_sets on the *key* space: key = block<<1, sets index on key).
        // Simply touch many blocks mapping to the same set.
        let mut evicted = false;
        for k in 1..10u64 {
            let conflicting = 100 + k * 16; // key stride 32 = num_sets
            c.push_req(read(100 + k, conflicting), 1000);
            run_until_idle(&mut c, 10, 2000);
            if c.stats().writebacks.get() > 0 {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "dirty line should eventually be written back");
    }

    #[test]
    fn mshr_full_applies_backpressure() {
        let mut c = CacheLevel::new(mini_cfg());
        // 3 distinct misses with only 2 MSHRs: third must stall until a
        // fill frees an entry, but all must complete eventually.
        for (i, blk) in [10u64, 20, 30].iter().enumerate() {
            c.push_req(read(i as u64, *blk), 0);
        }
        let out = run_until_idle(&mut c, 50, 5000);
        assert_eq!(out.len(), 3);
        assert!(c.stats().mshr_stall_cycles.get() > 0);
    }

    #[test]
    fn dc_page_flush_removes_only_dc_lines() {
        let mut c = CacheLevel::new(mini_cfg());
        // One DC-space block of page 2 and one phys-space block of page 2.
        let dc = MemReq::read(ReqId(1), BlockAddr(2 * 64 + 5), MemTarget::DramCache, 0);
        c.push_req(dc, 0);
        c.push_req(read(2, 2 * 64 + 5), 0);
        run_until_idle(&mut c, 10, 500);
        let (removed, _) = c.invalidate_dc_page(2);
        assert_eq!(removed, 1);
        // The phys-space line survives.
        c.push_req(read(3, 2 * 64 + 5), 1000);
        let mut hit = false;
        for now in 1000..1020 {
            c.tick(now);
            if c.pop_to_upper(now).is_some() {
                hit = true;
                break;
            }
        }
        assert!(hit);
        assert_eq!(c.stats().hits.get(), 1);
    }

    /// [`run_until_idle`] with next-event skipping: advance straight to
    /// the earliest of the level's own activity, the backing memory's
    /// next fill, or `now + 1` while shuttling work. Responses and
    /// stats must match the dense run exactly.
    fn run_event_until_idle(
        level: &mut CacheLevel,
        mem_latency: Cycle,
        max: Cycle,
    ) -> Vec<(Cycle, MemResp)> {
        let mut lower: VecDeque<(Cycle, MemReq)> = VecDeque::new();
        let mut out = Vec::new();
        let mut now = 0;
        while now < max {
            level.tick(now);
            while let Some(req) = level.pop_to_lower() {
                if req.wants_response {
                    lower.push_back((now + mem_latency, req));
                }
            }
            while let Some(&(ready, _)) = lower.front() {
                if ready <= now {
                    let (_, req) = lower.pop_front().expect("checked");
                    level.push_resp(req.response());
                } else {
                    break;
                }
            }
            while let Some(resp) = level.pop_to_upper(now) {
                out.push((now, resp));
            }
            if level.is_idle() && lower.is_empty() {
                break;
            }
            let mut next = level.next_activity_at(now).unwrap_or(Cycle::MAX);
            if let Some(&(ready, _)) = lower.front() {
                next = next.min(ready);
            }
            assert!(next > now, "activity must be in the future");
            assert!(next < Cycle::MAX, "non-idle level cannot sleep forever");
            now = next;
        }
        out
    }

    #[test]
    fn event_skipping_matches_dense_ticking() {
        let drive = |level: &mut CacheLevel, event: bool| -> Vec<(Cycle, MemResp)> {
            // Misses, merges, a write (dirty fill), and MSHR pressure.
            for (i, blk) in [10u64, 20, 30, 10].iter().enumerate() {
                level.push_req(read(i as u64, *blk), 0);
            }
            level.push_req(
                MemReq::write(ReqId(9), BlockAddr(40), MemTarget::OffPackage, 0),
                0,
            );
            if event {
                run_event_until_idle(level, 53, 5000)
            } else {
                run_until_idle(level, 53, 5000)
            }
        };
        let mut dense = CacheLevel::new(mini_cfg());
        let mut event = CacheLevel::new(mini_cfg());
        let a = drive(&mut dense, false);
        let b = drive(&mut event, true);
        assert_eq!(a, b, "responses (and their cycles) must be identical");
        assert_eq!(
            serde_json::to_string(dense.stats()).unwrap(),
            serde_json::to_string(event.stats()).unwrap()
        );
    }

    #[test]
    fn next_activity_is_never_late() {
        let mut c = CacheLevel::new(mini_cfg());
        c.push_req(read(1, 100), 0);
        let mut lower: VecDeque<(Cycle, MemReq)> = VecDeque::new();
        let mut predicted: Option<Option<Cycle>> = None;
        for now in 0..500 {
            let before = (
                c.stats().accesses.get(),
                c.stats().mshr_stall_cycles.get(),
                c.to_lower.len(),
                c.to_upper.len(),
            );
            c.tick(now);
            let acted = before
                != (
                    c.stats().accesses.get(),
                    c.stats().mshr_stall_cycles.get(),
                    c.to_lower.len(),
                    c.to_upper.len(),
                );
            if let Some(p) = predicted {
                if acted {
                    let p = p.expect("activity after a None prediction without new input");
                    assert!(now >= p, "tick acted at {now} before predicted {p}");
                }
            }
            while let Some(req) = c.pop_to_lower() {
                if req.wants_response {
                    lower.push_back((now + 50, req));
                }
            }
            while let Some(&(ready, _)) = lower.front() {
                if ready <= now {
                    let (_, req) = lower.pop_front().expect("checked");
                    c.push_resp(req.response());
                } else {
                    break;
                }
            }
            while c.pop_to_upper(now).is_some() {}
            // Recompute after this cycle's inputs landed, so the
            // prediction always reflects current state.
            predicted = Some(c.next_activity_at(now));
        }
        assert!(c.is_idle());
        assert_eq!(c.next_activity_at(499), None, "idle level is reactive");
    }

    #[test]
    fn can_accept_limits_queue() {
        let mut c = CacheLevel::new(mini_cfg());
        for i in 0..8 {
            assert!(c.can_accept());
            // All same block so no MSHR pressure.
            c.push_req(read(i, 7), 0);
        }
        assert!(!c.can_accept());
    }
}
