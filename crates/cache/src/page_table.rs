//! Page tables with the NOMAD PTE extension.
//!
//! A [`Pte`] holds either a physical frame number (uncached page) or a
//! cache frame number (page resident in the DRAM cache) — the central
//! trick of OS-managed DRAM caches: the DC tag lives in the PTE and is
//! delivered to the core through the ordinary TLB path. The paper's
//! `cached` (C) and `non-cacheable` (NC) bits are modeled directly.
//!
//! The page table also keeps the reverse mapping (PFN → VPNs) that
//! Algorithm 2 uses to restore PTEs when evicting cache frames, and it
//! performs first-touch physical-frame allocation for the synthetic
//! workloads.

use nomad_types::{Cfn, Pfn, Vpn};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a PTE currently points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Off-package physical frame (page not in the DRAM cache).
    Phys(Pfn),
    /// On-package cache frame (page cached; the CFN is the DC tag).
    Cache(Cfn),
}

/// A page-table entry with the NOMAD extension bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pte {
    /// Current frame mapping.
    pub frame: FrameKind,
    /// NC bit: the page must never enter the DRAM cache.
    pub noncacheable: bool,
    /// Architectural dirty bit (set on write accesses).
    pub dirty: bool,
}

impl Pte {
    /// C bit: whether the page is currently in the DRAM cache.
    pub fn cached(&self) -> bool {
        matches!(self.frame, FrameKind::Cache(_))
    }

    /// A DC *tag miss* in the paper's sense: cacheable but not cached.
    pub fn tag_miss(&self) -> bool {
        !self.noncacheable && !self.cached()
    }
}

/// A process page table plus reverse mappings and a first-touch
/// physical-frame allocator.
#[derive(Debug, Default)]
pub struct PageTable {
    ptes: HashMap<u64, Pte>,
    /// PFN → VPNs mapping it (more than one for shared pages).
    rmap: HashMap<u64, Vec<u64>>,
    next_pfn: u64,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.ptes.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.ptes.is_empty()
    }

    /// The PTE for `vpn`, allocating a fresh physical frame on first
    /// touch (demand paging; the page-fault cost itself is outside the
    /// paper's model, which fast-forwards past warm-up).
    pub fn pte_mut(&mut self, vpn: Vpn) -> &mut Pte {
        let next_pfn = &mut self.next_pfn;
        let rmap = &mut self.rmap;
        self.ptes.entry(vpn.raw()).or_insert_with(|| {
            let pfn = Pfn(*next_pfn);
            *next_pfn += 1;
            rmap.entry(pfn.raw()).or_default().push(vpn.raw());
            Pte {
                frame: FrameKind::Phys(pfn),
                noncacheable: false,
                dirty: false,
            }
        })
    }

    /// Read-only PTE lookup (no allocation).
    pub fn get(&self, vpn: Vpn) -> Option<&Pte> {
        self.ptes.get(&vpn.raw())
    }

    /// Map `vpn` as an alias of the page already mapped at `pfn`
    /// (shared page). Returns `false` if `pfn` was never allocated.
    pub fn alias(&mut self, vpn: Vpn, pfn: Pfn) -> bool {
        if !self.rmap.contains_key(&pfn.raw()) {
            return false;
        }
        let vpns = self.rmap.get_mut(&pfn.raw()).expect("checked");
        if !vpns.contains(&vpn.raw()) {
            vpns.push(vpn.raw());
        }
        self.ptes.insert(
            vpn.raw(),
            Pte {
                frame: FrameKind::Phys(pfn),
                noncacheable: false,
                dirty: false,
            },
        );
        true
    }

    /// Mark `vpn` non-cacheable (NC bit). Allocates on first touch.
    pub fn set_noncacheable(&mut self, vpn: Vpn, nc: bool) {
        self.pte_mut(vpn).noncacheable = nc;
    }

    /// All VPNs mapping `pfn` (the reverse mapping of Algorithm 2,
    /// lines 12–15). Empty if the PFN was never allocated.
    pub fn reverse_map(&self, pfn: Pfn) -> &[u64] {
        self.rmap.get(&pfn.raw()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Point every PTE mapping `pfn` at cache frame `cfn` (cache-frame
    /// allocation for a — possibly shared — page). Returns the number
    /// of PTEs updated.
    pub fn cache_all(&mut self, pfn: Pfn, cfn: Cfn) -> usize {
        let vpns = self.rmap.get(&pfn.raw()).cloned().unwrap_or_default();
        for &v in &vpns {
            if let Some(pte) = self.ptes.get_mut(&v) {
                pte.frame = FrameKind::Cache(cfn);
            }
        }
        vpns.len()
    }

    /// Restore every PTE mapping `pfn` back to the physical frame
    /// (cache-frame eviction). Returns the number of PTEs updated.
    pub fn uncache_all(&mut self, pfn: Pfn) -> usize {
        let vpns = self.rmap.get(&pfn.raw()).cloned().unwrap_or_default();
        for &v in &vpns {
            if let Some(pte) = self.ptes.get_mut(&v) {
                pte.frame = FrameKind::Phys(pfn);
                pte.dirty = false;
            }
        }
        vpns.len()
    }

    /// Number of distinct physical frames allocated so far (the
    /// footprint in pages).
    pub fn allocated_frames(&self) -> u64 {
        self.next_pfn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_allocates_sequential_pfns() {
        let mut pt = PageTable::new();
        let a = *pt.pte_mut(Vpn(100));
        let b = *pt.pte_mut(Vpn(200));
        let a2 = *pt.pte_mut(Vpn(100));
        assert_eq!(a.frame, FrameKind::Phys(Pfn(0)));
        assert_eq!(b.frame, FrameKind::Phys(Pfn(1)));
        assert_eq!(a, a2, "second touch must not reallocate");
        assert_eq!(pt.allocated_frames(), 2);
    }

    #[test]
    fn tag_miss_semantics() {
        let pte = Pte {
            frame: FrameKind::Phys(Pfn(3)),
            noncacheable: false,
            dirty: false,
        };
        assert!(pte.tag_miss());
        let cached = Pte {
            frame: FrameKind::Cache(Cfn(9)),
            ..pte
        };
        assert!(!cached.tag_miss());
        assert!(cached.cached());
        let nc = Pte {
            noncacheable: true,
            ..pte
        };
        assert!(!nc.tag_miss(), "non-cacheable pages never tag-miss");
    }

    #[test]
    fn cache_and_uncache_round_trip() {
        let mut pt = PageTable::new();
        pt.pte_mut(Vpn(7));
        assert_eq!(pt.cache_all(Pfn(0), Cfn(42)), 1);
        assert_eq!(pt.get(Vpn(7)).unwrap().frame, FrameKind::Cache(Cfn(42)));
        assert_eq!(pt.uncache_all(Pfn(0)), 1);
        assert_eq!(pt.get(Vpn(7)).unwrap().frame, FrameKind::Phys(Pfn(0)));
    }

    #[test]
    fn shared_pages_update_all_ptes() {
        let mut pt = PageTable::new();
        pt.pte_mut(Vpn(1)); // pfn 0
        assert!(pt.alias(Vpn(2), Pfn(0)));
        assert_eq!(pt.reverse_map(Pfn(0)), &[1, 2]);
        assert_eq!(pt.cache_all(Pfn(0), Cfn(5)), 2);
        assert_eq!(pt.get(Vpn(1)).unwrap().frame, FrameKind::Cache(Cfn(5)));
        assert_eq!(pt.get(Vpn(2)).unwrap().frame, FrameKind::Cache(Cfn(5)));
        assert_eq!(pt.uncache_all(Pfn(0)), 2);
    }

    #[test]
    fn alias_to_unallocated_pfn_fails() {
        let mut pt = PageTable::new();
        assert!(!pt.alias(Vpn(9), Pfn(77)));
    }

    #[test]
    fn noncacheable_flag() {
        let mut pt = PageTable::new();
        pt.set_noncacheable(Vpn(4), true);
        assert!(pt.get(Vpn(4)).unwrap().noncacheable);
        assert!(!pt.get(Vpn(4)).unwrap().tag_miss());
    }
}
