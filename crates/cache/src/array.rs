//! Pure set-associative tag array with LRU replacement.
//!
//! Untimed: timing lives in [`crate::CacheLevel`]. Keys are opaque
//! `u64` block keys so that the same array can index physical-space
//! blocks, cache-space blocks (with an address-space discriminator bit
//! folded into the key) or the DC tag store of a HW-based scheme.
//!
//! Set/tag decomposition is precomputed as a [`Pow2`] at construction,
//! so the per-access index math is pure shift-and-mask.

use nomad_types::Pow2;

/// A victim line evicted by [`CacheArray::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Block key of the evicted line.
    pub key: u64,
    /// Whether the victim was dirty and needs a writeback.
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Set-associative array of cache lines with true-LRU replacement.
///
/// `sets × ways` lines; a line is identified by an opaque block key
/// whose low bits select the set.
#[derive(Debug, Clone)]
pub struct CacheArray {
    ways: Vec<Way>,
    /// Set count as shift-and-mask: `sets.rem(key)` is the set index,
    /// `sets.div(key)` the tag.
    sets: Pow2,
    assoc: usize,
    stamp: u64,
}

impl CacheArray {
    /// Create an array with `num_sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or `assoc == 0`.
    pub fn new(num_sets: usize, assoc: usize) -> Self {
        let sets = Pow2::new(num_sets as u64).expect("sets must be a power of two");
        assert!(assoc > 0, "associativity must be non-zero");
        CacheArray {
            ways: vec![Way::default(); num_sets * assoc],
            sets,
            assoc,
            stamp: 0,
        }
    }

    /// Array sized for `size_bytes` of 64-byte lines at `assoc` ways.
    pub fn with_geometry(size_bytes: u64, assoc: usize) -> Self {
        let lines = (size_bytes / 64).max(1) as usize;
        let sets = (lines / assoc).max(1).next_power_of_two();
        CacheArray::new(sets, assoc)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.value() as usize
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.num_sets() * self.assoc
    }

    /// Invalidate every line and rewind the LRU stamp — the state of a
    /// freshly built array, with the `ways` allocation retained (arena
    /// reuse between sweep cells).
    pub fn reset(&mut self) {
        self.ways.fill(Way::default());
        self.stamp = 0;
    }

    #[inline]
    fn set_range(&self, key: u64) -> std::ops::Range<usize> {
        let set = self.sets.rem(key) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    #[inline]
    fn tag(&self, key: u64) -> u64 {
        self.sets.div(key)
    }

    /// Look up `key`, updating LRU on hit. Returns whether the line is
    /// present. Use [`CacheArray::probe`] for a side-effect-free check.
    pub fn touch(&mut self, key: u64) -> bool {
        let tag = self.tag(key);
        let range = self.set_range(key);
        self.stamp += 1;
        let stamp = self.stamp;
        for w in &mut self.ways[range] {
            if w.valid && w.tag == tag {
                w.lru = stamp;
                return true;
            }
        }
        false
    }

    /// Look up `key` without disturbing LRU state.
    pub fn probe(&self, key: u64) -> bool {
        let tag = self.tag(key);
        self.ways[self.set_range(key)]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Mark `key` dirty (on a write hit). Returns `false` if absent.
    pub fn mark_dirty(&mut self, key: u64) -> bool {
        let tag = self.tag(key);
        let range = self.set_range(key);
        self.stamp += 1;
        let stamp = self.stamp;
        for w in &mut self.ways[range] {
            if w.valid && w.tag == tag {
                w.dirty = true;
                w.lru = stamp;
                return true;
            }
        }
        false
    }

    /// Insert `key` (e.g. on a fill), evicting the LRU way if the set is
    /// full. Re-inserting a present key updates its dirty bit (OR-ing).
    pub fn insert(&mut self, key: u64, dirty: bool) -> Option<Victim> {
        let tag = self.tag(key);
        let set_base = self.set_range(key).start;
        let set_idx = self.sets.rem(key);
        self.stamp += 1;
        let stamp = self.stamp;

        let set = &mut self.ways[set_base..set_base + self.assoc];
        // Already present?
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.dirty |= dirty;
            w.lru = stamp;
            return None;
        }
        // Free way?
        if let Some(w) = set.iter_mut().find(|w| !w.valid) {
            *w = Way {
                tag,
                valid: true,
                dirty,
                lru: stamp,
            };
            return None;
        }
        // Evict LRU.
        let victim_way = set.iter_mut().min_by_key(|w| w.lru).expect("assoc > 0");
        let victim = Victim {
            key: self.sets.mul(victim_way.tag) | set_idx,
            dirty: victim_way.dirty,
        };
        *victim_way = Way {
            tag,
            valid: true,
            dirty,
            lru: stamp,
        };
        Some(victim)
    }

    /// Remove `key`; returns its dirty bit if it was present.
    pub fn invalidate(&mut self, key: u64) -> Option<bool> {
        let tag = self.tag(key);
        let range = self.set_range(key);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == tag {
                w.valid = false;
                return Some(w.dirty);
            }
        }
        None
    }

    /// Remove every line whose key satisfies `pred`; returns the number
    /// of removed lines and how many of them were dirty. Used to flush
    /// SRAM lines of a DC frame being evicted (Algorithm 2, line 3).
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u64) -> bool) -> (usize, usize) {
        let sets = self.sets;
        let assoc = self.assoc;
        let mut removed = 0;
        let mut dirty = 0;
        for (i, w) in self.ways.iter_mut().enumerate() {
            if !w.valid {
                continue;
            }
            let set_idx = (i / assoc) as u64;
            let key = sets.mul(w.tag) | set_idx;
            if pred(key) {
                w.valid = false;
                removed += 1;
                if w.dirty {
                    dirty += 1;
                }
            }
        }
        (removed, dirty)
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_then_probe() {
        let mut a = CacheArray::new(4, 2);
        assert!(a.insert(0x10, false).is_none());
        assert!(a.probe(0x10));
        assert!(!a.probe(0x11));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut a = CacheArray::new(1, 2);
        a.insert(1, false);
        a.insert(2, false);
        a.touch(1); // 2 is now LRU
        let v = a.insert(3, false).expect("eviction");
        assert_eq!(v.key, 2);
        assert!(a.probe(1) && a.probe(3) && !a.probe(2));
    }

    #[test]
    fn victim_key_reconstruction() {
        let mut a = CacheArray::new(8, 1);
        let key = 8 * 5 + 3; // tag 5, set 3
        a.insert(key, true);
        let v = a.insert(8 * 9 + 3, false).expect("conflict eviction");
        assert_eq!(v.key, key);
        assert!(v.dirty);
    }

    #[test]
    fn dirty_propagates_through_reinsert() {
        let mut a = CacheArray::new(4, 2);
        a.insert(0x20, false);
        a.insert(0x20, true);
        let d = a.invalidate(0x20);
        assert_eq!(d, Some(true));
        assert_eq!(a.invalidate(0x20), None);
    }

    #[test]
    fn mark_dirty_only_on_present_lines() {
        let mut a = CacheArray::new(4, 2);
        assert!(!a.mark_dirty(7));
        a.insert(7, false);
        assert!(a.mark_dirty(7));
        assert_eq!(a.invalidate(7), Some(true));
    }

    #[test]
    fn invalidate_matching_flushes_page() {
        let mut a = CacheArray::with_geometry(16 * 1024, 4);
        // Insert blocks of two different pages (64 blocks each).
        for b in 0..64u64 {
            a.insert(b, b % 2 == 0); // page 0
            a.insert(64 + b, false); // page 1
        }
        let (removed, dirty) = a.invalidate_matching(|k| k < 64);
        assert_eq!(removed, 64);
        assert_eq!(dirty, 32);
        assert_eq!(a.occupancy(), 64);
    }

    #[test]
    fn geometry_helper() {
        let a = CacheArray::with_geometry(32 * 1024, 8);
        assert_eq!(a.capacity(), 512);
        assert_eq!(a.num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheArray::new(3, 2);
    }

    proptest! {
        /// The array never exceeds its capacity and eviction victims are
        /// always lines that were previously inserted.
        #[test]
        fn prop_capacity_respected(keys in proptest::collection::vec(0u64..4096, 1..500)) {
            let mut a = CacheArray::new(16, 4);
            let mut inserted = std::collections::HashSet::new();
            for &k in &keys {
                if let Some(v) = a.insert(k, false) {
                    prop_assert!(inserted.contains(&v.key), "victim {} never inserted", v.key);
                    inserted.remove(&v.key);
                }
                inserted.insert(k);
                prop_assert!(a.occupancy() <= a.capacity());
            }
            // Everything the array claims to hold must have been inserted.
            for &k in &keys {
                if a.probe(k) {
                    prop_assert!(inserted.contains(&k));
                }
            }
        }

        /// A probe immediately after insert always hits.
        #[test]
        fn prop_insert_then_hit(key in 0u64..1_000_000) {
            let mut a = CacheArray::new(64, 8);
            a.insert(key, false);
            prop_assert!(a.probe(key));
        }
    }
}
