//! Miss status/information holding registers (MSHRs).
//!
//! MSHRs are what make a cache *non-blocking* (Kroft '81): each primary
//! miss allocates an entry that traces the outstanding line fetch, and
//! subsequent (secondary) misses to the same line merge into the entry
//! instead of stalling the cache. The NOMAD paper's PCSHRs apply the
//! same principle at page granularity; this SRAM-level implementation
//! is the baseline the back-end is architected after.
//!
//! # Layout
//!
//! The file is a fixed arena of parallel arrays — per-slot keys, target
//! lists and a packed dirty-bit word — plus a `u64`-word occupancy
//! bit-vector (`live`). The hot [`MshrFile::find`] scan walks the set
//! bits of `live` with mask-and-trailing-zeros and compares packed
//! keys, never touching the target lists. Target `Vec`s are recycled in
//! place on reallocation, so a slot's list keeps its capacity across
//! uses and steady-state misses allocate nothing.
//!
//! Free-slot selection stays an explicit LIFO stack: the token an
//! allocation yields is architecturally visible (it becomes the
//! downstream fetch's `ReqId`), and the stack preserves the exact token
//! order of the original `Vec<Option<Entry>>` implementation — pinned
//! by the differential test in `tests/mshr_differential.rs`.

use nomad_types::{MemReq, ReqId};

/// Index of an allocated MSHR entry; used as the `token` of the
/// downstream fetch so the response can be routed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrToken(pub usize);

impl From<MshrToken> for ReqId {
    fn from(t: MshrToken) -> ReqId {
        ReqId(t.0 as u64)
    }
}

/// Why an allocation or merge attempt was refused; the cache must stall
/// the offending request and retry later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrReject {
    /// All entries are in use (primary-miss structural hazard).
    Full,
    /// The matching entry exists but its target list is full
    /// (secondary-miss structural hazard).
    TargetsFull,
}

impl core::fmt::Display for MshrReject {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MshrReject::Full => f.write_str("all MSHRs in use"),
            MshrReject::TargetsFull => f.write_str("MSHR target list full"),
        }
    }
}

impl std::error::Error for MshrReject {}

/// A bounded file of MSHR entries keyed by block key, stored as a flat
/// arena with a `u64` occupancy bit-vector (see the module docs).
#[derive(Debug)]
pub struct MshrFile {
    /// Per-slot block keys; meaningful only where the `live` bit is set.
    keys: Vec<u64>,
    /// Per-slot merged-target lists; cleared (not dropped) on free so
    /// capacity is retained across reuse.
    targets: Vec<Vec<MemReq>>,
    /// Packed per-slot "fills dirty" flags, one bit per slot.
    fills_dirty: Vec<u64>,
    /// Occupancy bit-vector: bit `i % 64` of word `i / 64` is set while
    /// slot `i` is allocated.
    live: Vec<u64>,
    /// LIFO free stack; preserves the original token allocation order.
    free: Vec<usize>,
    max_targets: usize,
    in_use: usize,
}

/// Outcome of [`MshrFile::allocate_or_merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// A new entry was allocated — the caller must issue the line fetch
    /// downstream using this token.
    Primary(MshrToken),
    /// Merged into an existing in-flight entry — no fetch needed.
    Secondary(MshrToken),
}

impl MshrFile {
    /// A file of `entries` MSHRs, each merging at most `max_targets`
    /// requests.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(entries: usize, max_targets: usize) -> Self {
        assert!(entries > 0 && max_targets > 0);
        MshrFile {
            keys: vec![0; entries],
            targets: (0..entries).map(|_| Vec::new()).collect(),
            fills_dirty: vec![0; entries.div_ceil(64)],
            live: vec![0; entries.div_ceil(64)],
            free: (0..entries).rev().collect(),
            max_targets,
            in_use: 0,
        }
    }

    /// Number of entries currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Free every entry and restore the fresh-file token order,
    /// keeping all allocations (the per-slot target lists retain their
    /// capacity) — the arena-reuse path between sweep cells.
    pub fn reset(&mut self) {
        self.keys.fill(0);
        for t in &mut self.targets {
            t.clear();
        }
        self.fills_dirty.fill(0);
        self.live.fill(0);
        self.free.clear();
        self.free.extend((0..self.keys.len()).rev());
        self.in_use = 0;
    }

    /// Total number of entries.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn is_live(&self, slot: usize) -> bool {
        self.live
            .get(slot / 64)
            .is_some_and(|w| w & (1u64 << (slot % 64)) != 0)
    }

    /// Find the entry tracking `key`, if any: a mask-and-trailing-zeros
    /// scan over the occupancy words against the packed key array.
    pub fn find(&self, key: u64) -> Option<MshrToken> {
        for (wi, &word) in self.live.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let slot = wi * 64 + w.trailing_zeros() as usize;
                if self.keys[slot] == key {
                    return Some(MshrToken(slot));
                }
                w &= w - 1;
            }
        }
        None
    }

    /// Allocate an entry for `req`'s block (primary miss) or merge it
    /// into an existing one (secondary miss).
    ///
    /// # Errors
    ///
    /// [`MshrReject::Full`] when no entry is free for a primary miss,
    /// [`MshrReject::TargetsFull`] when a secondary miss cannot merge.
    pub fn allocate_or_merge(&mut self, key: u64, req: MemReq) -> Result<MshrAlloc, MshrReject> {
        if let Some(tok) = self.find(key) {
            if self.targets[tok.0].len() >= self.max_targets {
                return Err(MshrReject::TargetsFull);
            }
            if req.kind.is_write() {
                self.fills_dirty[tok.0 / 64] |= 1u64 << (tok.0 % 64);
            }
            self.targets[tok.0].push(req);
            return Ok(MshrAlloc::Secondary(tok));
        }
        let idx = self.free.pop().ok_or(MshrReject::Full)?;
        self.in_use += 1;
        self.live[idx / 64] |= 1u64 << (idx % 64);
        if req.kind.is_write() {
            self.fills_dirty[idx / 64] |= 1u64 << (idx % 64);
        } else {
            self.fills_dirty[idx / 64] &= !(1u64 << (idx % 64));
        }
        self.keys[idx] = key;
        debug_assert!(self.targets[idx].is_empty());
        self.targets[idx].push(req);
        Ok(MshrAlloc::Primary(MshrToken(idx)))
    }

    /// Complete the fetch for `token`: frees the entry, appends the
    /// merged target requests to `out` and returns the block key plus
    /// whether the filled line is dirty. The slot's target list keeps
    /// its capacity for the next allocation.
    ///
    /// # Panics
    ///
    /// Panics if `token` does not name an allocated entry (a protocol
    /// bug in the caller).
    pub fn complete_into(&mut self, token: MshrToken, out: &mut Vec<MemReq>) -> (u64, bool) {
        assert!(self.is_live(token.0), "MSHR token must be live");
        self.live[token.0 / 64] &= !(1u64 << (token.0 % 64));
        self.free.push(token.0);
        self.in_use -= 1;
        out.append(&mut self.targets[token.0]);
        let dirty = self.fills_dirty[token.0 / 64] & (1u64 << (token.0 % 64)) != 0;
        (self.keys[token.0], dirty)
    }

    /// [`complete_into`](Self::complete_into) returning a fresh target
    /// list (convenience for callers without a scratch buffer).
    ///
    /// # Panics
    ///
    /// Panics if `token` does not name an allocated entry.
    pub fn complete(&mut self, token: MshrToken) -> (u64, Vec<MemReq>, bool) {
        let mut targets = Vec::new();
        let (key, dirty) = self.complete_into(token, &mut targets);
        (key, targets, dirty)
    }

    /// Key being fetched by `token`, if live.
    pub fn key_of(&self, token: MshrToken) -> Option<u64> {
        if self.is_live(token.0) {
            Some(self.keys[token.0])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_types::{AccessKind, BlockAddr, MemTarget};

    fn req(token: u64, kind: AccessKind) -> MemReq {
        MemReq {
            token: ReqId(token),
            addr: BlockAddr(token),
            target: MemTarget::OffPackage,
            kind,
            class: nomad_types::TrafficClass::DemandRead,
            core: 0,
            wants_response: true,
        }
    }

    #[test]
    fn primary_then_secondary() {
        let mut m = MshrFile::new(2, 4);
        let a = m.allocate_or_merge(10, req(1, AccessKind::Read)).unwrap();
        assert!(matches!(a, MshrAlloc::Primary(_)));
        let b = m.allocate_or_merge(10, req(2, AccessKind::Read)).unwrap();
        assert!(matches!(b, MshrAlloc::Secondary(_)));
        assert_eq!(m.in_use(), 1);
        let tok = match a {
            MshrAlloc::Primary(t) => t,
            _ => unreachable!(),
        };
        let (key, targets, dirty) = m.complete(tok);
        assert_eq!(key, 10);
        assert_eq!(targets.len(), 2);
        assert!(!dirty);
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn write_target_fills_dirty() {
        let mut m = MshrFile::new(1, 4);
        let a = m.allocate_or_merge(5, req(1, AccessKind::Read)).unwrap();
        m.allocate_or_merge(5, req(2, AccessKind::Write)).unwrap();
        let tok = match a {
            MshrAlloc::Primary(t) => t,
            _ => unreachable!(),
        };
        let (_, _, dirty) = m.complete(tok);
        assert!(dirty);
    }

    #[test]
    fn full_file_rejects() {
        let mut m = MshrFile::new(1, 4);
        m.allocate_or_merge(1, req(1, AccessKind::Read)).unwrap();
        assert_eq!(
            m.allocate_or_merge(2, req(2, AccessKind::Read)),
            Err(MshrReject::Full)
        );
    }

    #[test]
    fn full_targets_reject() {
        let mut m = MshrFile::new(2, 1);
        m.allocate_or_merge(1, req(1, AccessKind::Read)).unwrap();
        assert_eq!(
            m.allocate_or_merge(1, req(2, AccessKind::Read)),
            Err(MshrReject::TargetsFull)
        );
    }

    #[test]
    fn tokens_are_reusable_after_complete() {
        let mut m = MshrFile::new(1, 2);
        let a = m.allocate_or_merge(1, req(1, AccessKind::Read)).unwrap();
        let tok = match a {
            MshrAlloc::Primary(t) => t,
            _ => unreachable!(),
        };
        m.complete(tok);
        assert!(m.allocate_or_merge(2, req(2, AccessKind::Read)).is_ok());
    }

    #[test]
    #[should_panic(expected = "live")]
    fn completing_dead_token_panics() {
        let mut m = MshrFile::new(2, 2);
        m.complete(MshrToken(0));
    }

    /// A slot reused after completion must not leak the previous
    /// occupant's dirty flag or targets.
    #[test]
    fn recycled_slot_state_is_clean() {
        let mut m = MshrFile::new(1, 4);
        let a = m.allocate_or_merge(1, req(1, AccessKind::Write)).unwrap();
        let tok = match a {
            MshrAlloc::Primary(t) => t,
            _ => unreachable!(),
        };
        let (_, targets, dirty) = m.complete(tok);
        assert!(dirty);
        assert_eq!(targets.len(), 1);
        // Reuse the slot with a read-only miss.
        let b = m.allocate_or_merge(2, req(2, AccessKind::Read)).unwrap();
        let tok = match b {
            MshrAlloc::Primary(t) => t,
            _ => unreachable!(),
        };
        let (key, targets, dirty) = m.complete(tok);
        assert_eq!(key, 2);
        assert_eq!(targets.len(), 1);
        assert!(!dirty, "dirty bit must not leak across reuse");
    }

    /// A file wider than one occupancy word scans correctly.
    #[test]
    fn find_scans_past_first_word() {
        let mut m = MshrFile::new(130, 2);
        let mut last = None;
        for k in 0..130u64 {
            match m.allocate_or_merge(1000 + k, req(k, AccessKind::Read)) {
                Ok(MshrAlloc::Primary(t)) => last = Some((t, 1000 + k)),
                other => panic!("unexpected {other:?}"),
            }
        }
        let (tok, key) = last.unwrap();
        assert_eq!(tok.0, 129, "stack allocates slots in order");
        assert_eq!(m.find(key), Some(tok));
        assert_eq!(m.key_of(tok), Some(key));
        assert_eq!(m.find(99_999), None);
    }
}
