//! Miss status/information holding registers (MSHRs).
//!
//! MSHRs are what make a cache *non-blocking* (Kroft '81): each primary
//! miss allocates an entry that traces the outstanding line fetch, and
//! subsequent (secondary) misses to the same line merge into the entry
//! instead of stalling the cache. The NOMAD paper's PCSHRs apply the
//! same principle at page granularity; this SRAM-level implementation
//! is the baseline the back-end is architected after.

use nomad_types::{MemReq, ReqId};

/// Index of an allocated MSHR entry; used as the `token` of the
/// downstream fetch so the response can be routed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrToken(pub usize);

impl From<MshrToken> for ReqId {
    fn from(t: MshrToken) -> ReqId {
        ReqId(t.0 as u64)
    }
}

/// Why an allocation or merge attempt was refused; the cache must stall
/// the offending request and retry later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrReject {
    /// All entries are in use (primary-miss structural hazard).
    Full,
    /// The matching entry exists but its target list is full
    /// (secondary-miss structural hazard).
    TargetsFull,
}

impl core::fmt::Display for MshrReject {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MshrReject::Full => f.write_str("all MSHRs in use"),
            MshrReject::TargetsFull => f.write_str("MSHR target list full"),
        }
    }
}

impl std::error::Error for MshrReject {}

#[derive(Debug, Clone)]
struct Entry {
    /// Block key the fetch is for.
    key: u64,
    /// Merged requests waiting for the fill.
    targets: Vec<MemReq>,
    /// Whether any merged target is a write (line fills dirty).
    fills_dirty: bool,
}

/// A bounded file of MSHR entries keyed by block key.
#[derive(Debug)]
pub struct MshrFile {
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    max_targets: usize,
    in_use: usize,
}

/// Outcome of [`MshrFile::allocate_or_merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// A new entry was allocated — the caller must issue the line fetch
    /// downstream using this token.
    Primary(MshrToken),
    /// Merged into an existing in-flight entry — no fetch needed.
    Secondary(MshrToken),
}

impl MshrFile {
    /// A file of `entries` MSHRs, each merging at most `max_targets`
    /// requests.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(entries: usize, max_targets: usize) -> Self {
        assert!(entries > 0 && max_targets > 0);
        MshrFile {
            slots: vec![None; entries],
            free: (0..entries).rev().collect(),
            max_targets,
            in_use: 0,
        }
    }

    /// Number of entries currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total number of entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Find the entry tracking `key`, if any.
    pub fn find(&self, key: u64) -> Option<MshrToken> {
        self.slots
            .iter()
            .position(|s| s.as_ref().map(|e| e.key == key).unwrap_or(false))
            .map(MshrToken)
    }

    /// Allocate an entry for `req`'s block (primary miss) or merge it
    /// into an existing one (secondary miss).
    ///
    /// # Errors
    ///
    /// [`MshrReject::Full`] when no entry is free for a primary miss,
    /// [`MshrReject::TargetsFull`] when a secondary miss cannot merge.
    pub fn allocate_or_merge(&mut self, key: u64, req: MemReq) -> Result<MshrAlloc, MshrReject> {
        if let Some(tok) = self.find(key) {
            let entry = self.slots[tok.0].as_mut().expect("found entry");
            if entry.targets.len() >= self.max_targets {
                return Err(MshrReject::TargetsFull);
            }
            entry.fills_dirty |= req.kind.is_write();
            entry.targets.push(req);
            return Ok(MshrAlloc::Secondary(tok));
        }
        let idx = self.free.pop().ok_or(MshrReject::Full)?;
        self.in_use += 1;
        let fills_dirty = req.kind.is_write();
        self.slots[idx] = Some(Entry {
            key,
            targets: vec![req],
            fills_dirty,
        });
        Ok(MshrAlloc::Primary(MshrToken(idx)))
    }

    /// Complete the fetch for `token`: frees the entry and returns the
    /// merged target requests plus whether the filled line is dirty.
    ///
    /// # Panics
    ///
    /// Panics if `token` does not name an allocated entry (a protocol
    /// bug in the caller).
    pub fn complete(&mut self, token: MshrToken) -> (u64, Vec<MemReq>, bool) {
        let entry = self.slots[token.0].take().expect("MSHR token must be live");
        self.free.push(token.0);
        self.in_use -= 1;
        (entry.key, entry.targets, entry.fills_dirty)
    }

    /// Key being fetched by `token`, if live.
    pub fn key_of(&self, token: MshrToken) -> Option<u64> {
        self.slots
            .get(token.0)
            .and_then(|s| s.as_ref())
            .map(|e| e.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_types::{AccessKind, BlockAddr, MemTarget};

    fn req(token: u64, kind: AccessKind) -> MemReq {
        MemReq {
            token: ReqId(token),
            addr: BlockAddr(token),
            target: MemTarget::OffPackage,
            kind,
            class: nomad_types::TrafficClass::DemandRead,
            core: 0,
            wants_response: true,
        }
    }

    #[test]
    fn primary_then_secondary() {
        let mut m = MshrFile::new(2, 4);
        let a = m.allocate_or_merge(10, req(1, AccessKind::Read)).unwrap();
        assert!(matches!(a, MshrAlloc::Primary(_)));
        let b = m.allocate_or_merge(10, req(2, AccessKind::Read)).unwrap();
        assert!(matches!(b, MshrAlloc::Secondary(_)));
        assert_eq!(m.in_use(), 1);
        let tok = match a {
            MshrAlloc::Primary(t) => t,
            _ => unreachable!(),
        };
        let (key, targets, dirty) = m.complete(tok);
        assert_eq!(key, 10);
        assert_eq!(targets.len(), 2);
        assert!(!dirty);
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn write_target_fills_dirty() {
        let mut m = MshrFile::new(1, 4);
        let a = m.allocate_or_merge(5, req(1, AccessKind::Read)).unwrap();
        m.allocate_or_merge(5, req(2, AccessKind::Write)).unwrap();
        let tok = match a {
            MshrAlloc::Primary(t) => t,
            _ => unreachable!(),
        };
        let (_, _, dirty) = m.complete(tok);
        assert!(dirty);
    }

    #[test]
    fn full_file_rejects() {
        let mut m = MshrFile::new(1, 4);
        m.allocate_or_merge(1, req(1, AccessKind::Read)).unwrap();
        assert_eq!(
            m.allocate_or_merge(2, req(2, AccessKind::Read)),
            Err(MshrReject::Full)
        );
    }

    #[test]
    fn full_targets_reject() {
        let mut m = MshrFile::new(2, 1);
        m.allocate_or_merge(1, req(1, AccessKind::Read)).unwrap();
        assert_eq!(
            m.allocate_or_merge(1, req(2, AccessKind::Read)),
            Err(MshrReject::TargetsFull)
        );
    }

    #[test]
    fn tokens_are_reusable_after_complete() {
        let mut m = MshrFile::new(1, 2);
        let a = m.allocate_or_merge(1, req(1, AccessKind::Read)).unwrap();
        let tok = match a {
            MshrAlloc::Primary(t) => t,
            _ => unreachable!(),
        };
        m.complete(tok);
        assert!(m.allocate_or_merge(2, req(2, AccessKind::Read)).is_ok());
    }

    #[test]
    #[should_panic(expected = "live")]
    fn completing_dead_token_panics() {
        let mut m = MshrFile::new(2, 2);
        m.complete(MshrToken(0));
    }
}
