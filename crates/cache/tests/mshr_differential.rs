//! Differential test: the bit-vector [`MshrFile`] against the original
//! `Vec<Option<Entry>>` + free-list implementation it replaced.
//!
//! MSHR tokens are architecturally visible — a primary allocation's
//! token becomes the `ReqId` of the downstream line fetch — so the
//! flattened arena must reproduce the *exact* token allocation and
//! retire order of the old code, not just equivalent occupancy. A
//! seeded random op stream (allocate / merge / complete / overflow
//! pressure) is driven through both implementations in lockstep and
//! every externally observable result is compared.

use nomad_cache::{MshrAlloc, MshrFile, MshrReject, MshrToken};
use nomad_types::{AccessKind, BlockAddr, MemReq, MemTarget, ReqId, TrafficClass};

/// Verbatim port of the pre-refactor `MshrFile` (Vec-of-struct slots
/// with a LIFO free list) — the oracle.
mod oracle {
    use super::*;

    #[derive(Debug, Clone)]
    struct Entry {
        key: u64,
        targets: Vec<MemReq>,
        fills_dirty: bool,
    }

    #[derive(Debug)]
    pub struct OldMshrFile {
        slots: Vec<Option<Entry>>,
        free: Vec<usize>,
        max_targets: usize,
        in_use: usize,
    }

    impl OldMshrFile {
        pub fn new(entries: usize, max_targets: usize) -> Self {
            assert!(entries > 0 && max_targets > 0);
            OldMshrFile {
                slots: vec![None; entries],
                free: (0..entries).rev().collect(),
                max_targets,
                in_use: 0,
            }
        }

        pub fn in_use(&self) -> usize {
            self.in_use
        }

        pub fn find(&self, key: u64) -> Option<usize> {
            self.slots
                .iter()
                .position(|s| s.as_ref().map(|e| e.key == key).unwrap_or(false))
        }

        pub fn allocate_or_merge(
            &mut self,
            key: u64,
            req: MemReq,
        ) -> Result<(bool, usize), MshrReject> {
            if let Some(tok) = self.find(key) {
                let entry = self.slots[tok].as_mut().expect("found entry");
                if entry.targets.len() >= self.max_targets {
                    return Err(MshrReject::TargetsFull);
                }
                entry.fills_dirty |= req.kind.is_write();
                entry.targets.push(req);
                return Ok((false, tok));
            }
            let idx = self.free.pop().ok_or(MshrReject::Full)?;
            self.in_use += 1;
            let fills_dirty = req.kind.is_write();
            self.slots[idx] = Some(Entry {
                key,
                targets: vec![req],
                fills_dirty,
            });
            Ok((true, idx))
        }

        pub fn complete(&mut self, token: usize) -> (u64, Vec<MemReq>, bool) {
            let entry = self.slots[token].take().expect("MSHR token must be live");
            self.free.push(token);
            self.in_use -= 1;
            (entry.key, entry.targets, entry.fills_dirty)
        }

        pub fn key_of(&self, token: usize) -> Option<u64> {
            self.slots
                .get(token)
                .and_then(|s| s.as_ref())
                .map(|e| e.key)
        }
    }
}

/// splitmix64: tiny deterministic PRNG, no external dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn req(token: u64, rng: &mut Rng) -> MemReq {
    MemReq {
        token: ReqId(token),
        addr: BlockAddr(token),
        target: MemTarget::OffPackage,
        kind: if rng.below(4) == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        class: TrafficClass::DemandRead,
        core: 0,
        wants_response: true,
    }
}

/// Drive `ops` random operations through both implementations with one
/// RNG stream, asserting identical externally visible behaviour at
/// every step.
fn differential_run(seed: u64, entries: usize, max_targets: usize, ops: usize) {
    let mut rng = Rng(seed);
    let mut new = MshrFile::new(entries, max_targets);
    let mut old = oracle::OldMshrFile::new(entries, max_targets);
    // Tokens of live primary allocations, in allocation order.
    let mut live: Vec<MshrToken> = Vec::new();
    let mut seq = 0u64;
    // A key space ~1.5x the entry count forces frequent merges and,
    // once the file fills, Full rejections.
    let key_space = (entries as u64 * 3) / 2 + 1;

    for _ in 0..ops {
        match rng.below(3) {
            // Allocate or merge a random key.
            0 | 1 => {
                seq += 1;
                let key = rng.below(key_space);
                let r = req(seq, &mut rng);
                let got = new.allocate_or_merge(key, r);
                let want = old.allocate_or_merge(key, r);
                match (got, want) {
                    (Ok(MshrAlloc::Primary(t)), Ok((true, idx))) => {
                        assert_eq!(t.0, idx, "primary token order diverged");
                        live.push(t);
                    }
                    (Ok(MshrAlloc::Secondary(t)), Ok((false, idx))) => {
                        assert_eq!(t.0, idx, "secondary token diverged");
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "reject reason diverged"),
                    (a, b) => panic!("outcome diverged: new={a:?} old={b:?}"),
                }
            }
            // Complete a random live token.
            _ => {
                if live.is_empty() {
                    continue;
                }
                let pick = rng.below(live.len() as u64) as usize;
                let tok = live.swap_remove(pick);
                let (k_new, targets_new, dirty_new) = new.complete(tok);
                let (k_old, targets_old, dirty_old) = old.complete(tok.0);
                assert_eq!(k_new, k_old, "completed key diverged");
                assert_eq!(dirty_new, dirty_old, "dirty flag diverged");
                assert_eq!(
                    targets_new.iter().map(|t| t.token).collect::<Vec<_>>(),
                    targets_old.iter().map(|t| t.token).collect::<Vec<_>>(),
                    "retire order diverged"
                );
            }
        }
        assert_eq!(new.in_use(), old.in_use(), "occupancy diverged");
        // Spot-check lookups across the whole key space.
        let probe = rng.below(key_space);
        assert_eq!(
            new.find(probe).map(|t| t.0),
            old.find(probe),
            "find({probe}) diverged"
        );
        let probe_tok = rng.below(entries as u64) as usize;
        assert_eq!(
            new.key_of(MshrToken(probe_tok)),
            old.key_of(probe_tok),
            "key_of({probe_tok}) diverged"
        );
    }
}

#[test]
fn bitvector_mshr_matches_old_implementation() {
    for seed in 1..=8u64 {
        differential_run(seed, 16, 4, 4000);
    }
}

#[test]
fn differential_holds_for_small_and_multiword_files() {
    // One entry: constant Full pressure.
    differential_run(99, 1, 2, 2000);
    // Two entries, single-target: TargetsFull pressure.
    differential_run(100, 2, 1, 2000);
    // 130 entries: the occupancy bit-vector spans three words.
    differential_run(101, 130, 3, 6000);
}
