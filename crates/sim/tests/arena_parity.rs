//! Fresh-vs-recycled system parity: the arena-reuse invariant.
//!
//! `System::reset_for_cell` promises that a recycled system is
//! behaviourally indistinguishable from a freshly built one. This suite
//! drives one reuse slot through a chain of cells that switch scheme
//! AND workload at every step — so each reset must scrub the previous
//! cell's caches, TLBs, DRAM bank/refresh state, core pipelines and
//! kernel calendar — and holds every pooled report byte-identical to
//! the same cell run on a fresh `System`.

use nomad_sim::runner;
use nomad_sim::{SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;
use nomad_types::CancelToken;

const INSTR: u64 = 4_000;
const WARMUP: u64 = 1_000;
const SEED: u64 = 42;

fn report_json(r: &nomad_sim::RunReport) -> String {
    serde_json::to_string(r).expect("reports serialize")
}

#[test]
fn recycled_system_matches_fresh_across_schemes_and_workloads() {
    let cfg = SystemConfig::scaled(2);
    let token = CancelToken::new();
    // Every scheme family, alternating workloads, so consecutive cells
    // never share scheme state or access patterns.
    let cells: Vec<(SchemeSpec, WorkloadProfile)> = vec![
        (SchemeSpec::Baseline, WorkloadProfile::tc()),
        (SchemeSpec::Nomad, WorkloadProfile::mcf()),
        (SchemeSpec::Tid, WorkloadProfile::tc()),
        (SchemeSpec::Tdram, WorkloadProfile::mcf()),
        (SchemeSpec::Banshee, WorkloadProfile::tc()),
        (SchemeSpec::Tdc, WorkloadProfile::mcf()),
        (SchemeSpec::Ideal, WorkloadProfile::tc()),
        // Revisit a scheme with the other workload: the second NOMAD
        // cell must not remember the first one's DC contents.
        (SchemeSpec::Nomad, WorkloadProfile::tc()),
        (SchemeSpec::Tdram, WorkloadProfile::tc()),
        (SchemeSpec::Banshee, WorkloadProfile::mcf()),
        (SchemeSpec::Baseline, WorkloadProfile::mcf()),
    ];
    let mut slot = None;
    for (i, (spec, profile)) in cells.iter().enumerate() {
        let fresh = runner::run_one(&cfg, spec, profile, INSTR, WARMUP, SEED);
        let pooled =
            runner::run_one_pooled(&mut slot, &cfg, spec, profile, INSTR, WARMUP, SEED, &token)
                .expect("uncancelled run completes");
        assert_eq!(
            report_json(&fresh),
            report_json(&pooled),
            "cell {i} ({spec:?} × {}): recycled system diverged from fresh",
            profile.name
        );
        assert!(
            slot.is_some(),
            "the system must be parked back after a cell"
        );
    }
}

#[test]
fn config_mismatch_falls_back_to_fresh_build() {
    let small = SystemConfig::scaled(1);
    let big = SystemConfig::scaled(2);
    let token = CancelToken::new();
    let mut slot = None;
    let a = runner::run_one_pooled(
        &mut slot,
        &small,
        &SchemeSpec::Baseline,
        &WorkloadProfile::tc(),
        INSTR,
        WARMUP,
        SEED,
        &token,
    )
    .expect("completes");
    // Same slot, different geometry: must rebuild, not recycle.
    let b = runner::run_one_pooled(
        &mut slot,
        &big,
        &SchemeSpec::Baseline,
        &WorkloadProfile::tc(),
        INSTR,
        WARMUP,
        SEED,
        &token,
    )
    .expect("completes");
    let fresh_b = runner::run_one(
        &big,
        &SchemeSpec::Baseline,
        &WorkloadProfile::tc(),
        INSTR,
        WARMUP,
        SEED,
    );
    assert_eq!(report_json(&b), report_json(&fresh_b));
    assert_ne!(
        a.cores.len(),
        b.cores.len(),
        "the two configs really differ"
    );
}

#[test]
fn cancelled_cell_leaves_a_recyclable_system() {
    let cfg = SystemConfig::scaled(1);
    let mut slot = None;
    // Pre-cancelled token: the cell aborts mid-flight.
    let cancelled = CancelToken::new();
    cancelled.cancel();
    let none = runner::run_one_pooled(
        &mut slot,
        &cfg,
        &SchemeSpec::Nomad,
        &WorkloadProfile::mcf(),
        INSTR,
        WARMUP,
        SEED,
        &cancelled,
    );
    assert!(none.is_none(), "pre-cancelled run yields no report");
    assert!(slot.is_some(), "the dirty system is still parked for reuse");
    // The next cell recycles the aborted system and must still match a
    // fresh run exactly.
    let token = CancelToken::new();
    let pooled = runner::run_one_pooled(
        &mut slot,
        &cfg,
        &SchemeSpec::Tdc,
        &WorkloadProfile::tc(),
        INSTR,
        WARMUP,
        SEED,
        &token,
    )
    .expect("completes");
    let fresh = runner::run_one(
        &cfg,
        &SchemeSpec::Tdc,
        &WorkloadProfile::tc(),
        INSTR,
        WARMUP,
        SEED,
    );
    assert_eq!(report_json(&pooled), report_json(&fresh));
}
