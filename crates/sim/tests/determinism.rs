//! Determinism guarantees the result-caching service relies on: a
//! fixed seed reproduces a byte-identical report, and `run_grid`
//! returns results in input order regardless of scheduling.

use nomad_sim::runner::{self, Cell};
use nomad_sim::{SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;

fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::scaled(2);
    cfg.dc_capacity = 8 * 1024 * 1024;
    cfg
}

#[test]
fn run_one_with_fixed_seed_is_byte_identical() {
    for spec in [SchemeSpec::Baseline, SchemeSpec::Nomad, SchemeSpec::Tdc] {
        let a = runner::run_one(&cfg(), &spec, &WorkloadProfile::mcf(), 8_000, 1_000, 99);
        let b = runner::run_one(&cfg(), &spec, &WorkloadProfile::mcf(), 8_000, 1_000, 99);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{}: same inputs must serialize identically",
            spec.label()
        );
    }
}

#[test]
fn run_grid_returns_results_in_input_order() {
    // An order-sensitive grid: distinct (scheme × workload × seed)
    // cells whose runtimes differ, so out-of-order completion would be
    // visible if the runner failed to re-sort.
    let workloads = [
        WorkloadProfile::tc(),
        WorkloadProfile::mcf(),
        WorkloadProfile::libq(),
    ];
    let cells: Vec<Cell> = [SchemeSpec::Nomad, SchemeSpec::Baseline, SchemeSpec::Tid]
        .into_iter()
        .enumerate()
        .flat_map(|(i, spec)| {
            workloads.iter().map(move |w| Cell {
                cfg: cfg(),
                spec: spec.clone(),
                // Vary run length so threads finish out of order.
                instructions: 4_000 + 4_000 * (i as u64 % 3),
                warmup: 500,
                seed: 17 + i as u64,
                profile: w.clone(),
            })
        })
        .collect();

    let expected: Vec<(String, String)> = cells
        .iter()
        .map(|c| (c.profile.name.clone(), c.spec.label().to_string()))
        .collect();
    let reports = runner::run_grid(cells);
    let got: Vec<(String, String)> = reports
        .iter()
        .map(|r| (r.workload.clone(), r.scheme.clone()))
        .collect();
    assert_eq!(got, expected, "grid output must follow input order");
}

#[test]
fn grid_cells_match_individual_runs() {
    let cell = Cell {
        cfg: cfg(),
        spec: SchemeSpec::Nomad,
        profile: WorkloadProfile::tc(),
        instructions: 6_000,
        warmup: 500,
        seed: 5,
    };
    let direct = runner::run_one(
        &cell.cfg,
        &cell.spec,
        &cell.profile,
        cell.instructions,
        cell.warmup,
        cell.seed,
    );
    let via_grid = runner::run_grid(vec![cell]).remove(0);
    assert_eq!(direct.to_json(), via_grid.to_json());
}
