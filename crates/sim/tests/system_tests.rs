//! System-assembly behaviour tests: checkpoint pre-warming, per-core
//! address-space isolation, warm-up stat hygiene, and run-loop
//! determinism at the `System` API level.

use nomad_sim::{runner, SchemeSpec, System, SystemConfig};
use nomad_trace::{TraceRecord, TraceSource, WorkloadProfile};
use nomad_types::{AccessKind, VirtAddr, Vpn};

/// A trace visiting a fixed page list round-robin.
struct PageLoop {
    pages: Vec<u64>,
    i: usize,
}

impl TraceSource for PageLoop {
    fn next_record(&mut self) -> TraceRecord {
        let page = self.pages[self.i % self.pages.len()];
        let block = (self.i / self.pages.len()) as u64 % 64;
        self.i += 1;
        TraceRecord {
            gap: 8,
            kind: AccessKind::Read,
            vaddr: VirtAddr((page << 12) | (block << 6)),
        }
    }

    fn name(&self) -> &str {
        "pageloop"
    }

    fn resident_pages(&self) -> Vec<Vpn> {
        self.pages.iter().map(|&p| Vpn(p)).collect()
    }
}

fn system_with_pages(scheme: SchemeSpec, per_core_pages: Vec<Vec<u64>>) -> System {
    let cfg = SystemConfig::scaled(per_core_pages.len());
    let scheme = scheme.build(&cfg);
    let traces: Vec<Box<dyn TraceSource>> = per_core_pages
        .into_iter()
        .map(|pages| Box::new(PageLoop { pages, i: 0 }) as Box<dyn TraceSource>)
        .collect();
    System::new(cfg, scheme, traces)
}

#[test]
fn prewarm_eliminates_tag_misses_for_resident_pages() {
    let pages: Vec<u64> = (100..140).collect();
    let mut sys = system_with_pages(SchemeSpec::Nomad, vec![pages.clone(), pages]);
    sys.prewarm();
    sys.run(5_000);
    assert_eq!(
        sys.scheme().stats().tag_misses.get(),
        0,
        "prewarmed pages must not fault"
    );
}

#[test]
fn without_prewarm_the_same_pages_fault_once_each() {
    let pages: Vec<u64> = (100..140).collect();
    let mut sys = system_with_pages(SchemeSpec::Nomad, vec![pages]);
    sys.run(30_000);
    assert_eq!(
        sys.scheme().stats().tag_misses.get(),
        40,
        "one tag miss per distinct page"
    );
}

#[test]
fn cores_have_disjoint_address_spaces() {
    // Two cores using the *same* virtual pages: the scheme must see
    // 2× the distinct pages (per-core namespacing), not share them.
    let pages: Vec<u64> = (200..220).collect();
    let mut sys = system_with_pages(SchemeSpec::Nomad, vec![pages.clone(), pages]);
    sys.run(40_000);
    assert_eq!(sys.scheme().stats().tag_misses.get(), 40);
}

#[test]
fn warm_up_resets_measurements_but_keeps_state() {
    let pages: Vec<u64> = (300..340).collect();
    let mut sys = system_with_pages(SchemeSpec::Nomad, vec![pages]);
    sys.warm_up(20_000);
    assert_eq!(sys.measured_cycles(), 0, "stats window restarts");
    assert_eq!(sys.scheme().stats().tag_misses.get(), 0);
    sys.run(5_000);
    // All pages were cached during warm-up: the ROI has no faults.
    assert_eq!(sys.scheme().stats().tag_misses.get(), 0);
    assert!(sys.measured_cycles() > 0);
    assert!(sys.total_instructions() >= 5_000);
}

#[test]
fn report_reflects_run_identity() {
    let cfg = SystemConfig::scaled(2);
    let r = runner::run_one(
        &cfg,
        &SchemeSpec::Baseline,
        &WorkloadProfile::tc(),
        10_000,
        1_000,
        5,
    );
    assert_eq!(r.scheme, "Baseline");
    assert_eq!(r.workload, "tc");
    assert_eq!(r.cores.len(), 2);
    assert_eq!(r.clock_ghz, cfg.clock_ghz);
    let json = r.to_json();
    assert!(json.contains("\"workload\": \"tc\""));
}
