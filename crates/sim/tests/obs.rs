//! Observed-run integration: a system built with observability enabled
//! attaches a rendered [`nomad_sim::ObsSeries`] to its report, and the
//! artifacts have the documented shapes.
//!
//! Lives in its own integration-test binary because it flips the
//! process-wide [`nomad_obs::set_enabled`] switch.

use nomad_sim::{runner, SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;

#[test]
fn observed_run_attaches_series() {
    if std::env::var("NOMAD_OBS").is_ok() {
        // An explicit environment setting overrides set_enabled in
        // either direction; the assertions below would test the wrong
        // thing.
        return;
    }
    nomad_obs::set_enabled(true);
    let cfg = SystemConfig::scaled(2);
    let report = runner::run_one(
        &cfg,
        &SchemeSpec::Nomad,
        &WorkloadProfile::mcf(),
        30_000,
        5_000,
        42,
    );
    let obs = report.obs.as_ref().expect("observed run attaches obs");

    // Snapshot-JSON document: interval header, metric metadata for the
    // scheme-independent dcache gauges, and at least one sampled row
    // (a 30k-instruction run spans many sampling intervals).
    assert!(obs.snapshots.starts_with("{\"interval\":"));
    assert!(obs
        .snapshots
        .contains("\"name\":\"dcache.pcshr_occupancy\""));
    assert!(obs.snapshots.contains("\"name\":\"cpu.0.instructions\""));
    assert!(obs.snapshots.contains("\"name\":\"sim.kernel.skip_span\""));
    assert!(
        obs.snapshots.contains("{\"cycle\":"),
        "expected at least one snapshot row"
    );

    // Chrome trace: valid Trace Event Format envelope with the track
    // metadata rows.
    assert!(obs.trace.starts_with("{\"traceEvents\":["));
    assert!(obs.trace.contains("\"ph\":\"M\""));
    assert!(obs.trace.contains("\"DC fills\""));
    assert!(obs.trace.ends_with("}}"));

    // The serialized report carries the artifacts through serde.
    let json = report.to_json();
    assert!(json.contains("\"obs\""));
    let back: nomad_sim::RunReport = serde_json::from_str(&json).expect("round trip");
    assert_eq!(back.obs.expect("obs survives").interval, obs.interval);
}
