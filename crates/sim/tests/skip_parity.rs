//! Dense/event parity: the next-event kernel must be an invisible
//! optimization. For every scheme, a fixed-seed run through
//! [`System::run`] (event skipping) must produce a [`RunReport`] that
//! is **byte-identical** (as serialized JSON) to the retained
//! [`System::run_dense`] reference loop — same cycles, same stall
//! breakdowns, same DRAM stats, same utilization denominators.

use nomad_sim::spec::SchemeSpec;
use nomad_sim::{System, SystemConfig};
use nomad_trace::{SyntheticTrace, TraceSource, WorkloadProfile};
use nomad_types::CancelToken;

const WARMUP: u64 = 2_000;
const INSTRUCTIONS: u64 = 20_000;

fn parity_cfg(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(cores);
    cfg.dc_capacity = 4 * 1024 * 1024;
    cfg
}

fn build_system(
    cfg: &SystemConfig,
    spec: &SchemeSpec,
    profile: &WorkloadProfile,
    seed: u64,
) -> System {
    let traces: Vec<Box<dyn TraceSource>> = (0..cfg.cores)
        .map(|i| {
            Box::new(SyntheticTrace::with_scale(
                profile,
                seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
                cfg.pages_per_gb,
                cfg.l3_reach_pages(),
            )) as Box<dyn TraceSource>
        })
        .collect();
    let mut sys = System::new(cfg.clone(), spec.build(cfg), traces);
    sys.prewarm();
    sys
}

fn assert_parity(cores: usize, spec: SchemeSpec, profile: WorkloadProfile, seed: u64) {
    let cfg = parity_cfg(cores);

    let mut dense = build_system(&cfg, &spec, &profile, seed);
    dense.run_dense(WARMUP);
    dense.reset_stats();
    dense.run_dense(INSTRUCTIONS);
    let dense_json = serde_json::to_string(&dense.report(&profile.name)).expect("serialize");

    let mut event = build_system(&cfg, &spec, &profile, seed);
    event.run(WARMUP);
    event.reset_stats();
    event.run(INSTRUCTIONS);
    let event_json = serde_json::to_string(&event.report(&profile.name)).expect("serialize");

    assert_eq!(
        dense_json,
        event_json,
        "event kernel diverged from dense loop ({} / {})",
        spec.label(),
        profile.name
    );
    assert_eq!(dense.cycle(), event.cycle(), "final cycle diverged");
}

#[test]
fn baseline_event_run_is_byte_identical() {
    assert_parity(1, SchemeSpec::Baseline, WorkloadProfile::tc(), 11);
}

#[test]
fn tid_event_run_is_byte_identical() {
    assert_parity(1, SchemeSpec::Tid, WorkloadProfile::tc(), 12);
}

#[test]
fn tdram_event_run_is_byte_identical() {
    assert_parity(1, SchemeSpec::Tdram, WorkloadProfile::tc(), 21);
}

#[test]
fn banshee_event_run_is_byte_identical() {
    assert_parity(1, SchemeSpec::Banshee, WorkloadProfile::tc(), 22);
}

#[test]
fn tdc_event_run_is_byte_identical() {
    assert_parity(1, SchemeSpec::Tdc, WorkloadProfile::tc(), 13);
}

#[test]
fn nomad_event_run_is_byte_identical() {
    assert_parity(1, SchemeSpec::Nomad, WorkloadProfile::tc(), 14);
}

#[test]
fn nomad_high_rmhb_parity() {
    // mcf: high miss traffic keeps the OS handlers, backends and both
    // DRAM devices busy — exercises the dense end of the spectrum.
    assert_parity(1, SchemeSpec::Nomad, WorkloadProfile::mcf(), 15);
}

#[test]
fn nomad_two_core_parity() {
    let cfg = parity_cfg(2);
    let spec = SchemeSpec::Nomad;
    let profile = WorkloadProfile::tc();

    let mut dense = build_system(&cfg, &spec, &profile, 16);
    dense.run_dense(1_000);
    dense.reset_stats();
    dense.run_dense(8_000);
    let dense_json = serde_json::to_string(&dense.report(&profile.name)).expect("serialize");

    let mut event = build_system(&cfg, &spec, &profile, 16);
    event.run(1_000);
    event.reset_stats();
    event.run(8_000);
    let event_json = serde_json::to_string(&event.report(&profile.name)).expect("serialize");

    assert_eq!(dense_json, event_json, "two-core event run diverged");
}

#[test]
fn cancelled_run_stops_without_report() {
    let cfg = parity_cfg(1);
    let mut sys = build_system(&cfg, &SchemeSpec::Baseline, &WorkloadProfile::tc(), 9);
    let token = CancelToken::new();
    token.cancel();
    assert!(
        !sys.run_with_cancel(10_000_000, &token),
        "pre-cancelled token must stop the run"
    );
    // The system is still usable: a fresh token lets it finish.
    let fresh = CancelToken::new();
    assert!(sys.run_with_cancel(1_000, &fresh));
}
