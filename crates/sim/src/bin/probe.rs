//! Scratch calibration probe (not part of the published experiments).
use nomad_sim::{runner, SchemeSpec, SystemConfig};
use nomad_trace::WorkloadProfile;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instr: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let cores: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let cfg = SystemConfig::scaled(cores);
    let workloads: Vec<String> = args
        .get(3)
        .map(|s| s.split(',').map(String::from).collect())
        .unwrap_or_else(|| vec!["cact".into(), "libq".into(), "mcf".into(), "pr".into()]);
    println!(
        "{:<6} {:>9} {:>7} {:>8} {:>8} {:>7} {:>8} {:>8} {:>8} {:>7} {:>8} {:>8} {:>6} {:>7}",
        "wl",
        "scheme",
        "ipc",
        "dcacc",
        "taglat",
        "osstall",
        "rmhb",
        "mpms",
        "hbmGBs",
        "ddrGBs",
        "hbmlat",
        "ddrlat",
        "l3miss",
        "secs"
    );
    for w in &workloads {
        let p = WorkloadProfile::by_name(w).unwrap();
        for spec in SchemeSpec::fig9_set() {
            let t0 = Instant::now();
            let r = runner::run_one(&cfg, &spec, &p, instr, instr / 5, 42);
            println!("{:<6} {:>9} {:>7.3} {:>8.1} {:>8.0} {:>7.1}% {:>8.2} {:>8.1} {:>8.1} {:>7.1} {:>8.1} {:>8.1} {:>6.1}% {:>7.2}",
                w, r.scheme, r.ipc(), r.dc_access_time(), r.tag_mgmt_latency(),
                100.0*r.os_stall_ratio(), r.rmhb_gbps(), r.llc_mpms(),
                r.hbm.total_gbps(), r.ddr.total_gbps(),
                r.hbm.read_latency.mean(), r.ddr.read_latency.mean(),
                100.0 * r.l3_misses as f64 / r.l3_accesses.max(1) as f64,
                t0.elapsed().as_secs_f64());
        }
    }
}
