//! System-level configuration (the simulator's Table II).

use nomad_cache::{CacheLevelConfig, TlbConfig};
use nomad_cpu::CoreConfig;
use nomad_dram::DramConfig;
use serde::{Deserialize, Serialize};

/// Configuration of a whole simulated chip-multiprocessor system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of CPU cores (the paper uses 8, sweeping 2–8 in Fig. 13).
    pub cores: usize,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// Private L1D per core.
    pub l1: CacheLevelConfig,
    /// Private L2 per core.
    pub l2: CacheLevelConfig,
    /// Shared L3.
    pub l3: CacheLevelConfig,
    /// Two-level TLBs + walker latency per core.
    pub tlb: TlbConfig,
    /// On-package DRAM device.
    pub hbm: DramConfig,
    /// Off-package DRAM device.
    pub ddr: DramConfig,
    /// DRAM-cache capacity in bytes.
    pub dc_capacity: u64,
    /// CPU clock in GHz.
    pub clock_ghz: f64,
    /// Workload-footprint scaling: pages generated per paper-reported
    /// GB of footprint (4096 = 16 MiB per GB).
    pub pages_per_gb: u64,
    /// Concurrent page-table walks per core.
    pub max_walks_per_core: usize,
}

impl SystemConfig {
    /// The default experiment configuration: the paper's organization
    /// scaled so a (scheme × workload) run completes in seconds.
    ///
    /// Scaling preserves the ratios the evaluation depends on: the
    /// footprint-to-DC-capacity ratio (multi-GB footprints vs a 1 GB
    /// cache become tens-to-hundreds of MB vs a 64 MiB cache), the
    /// DC-to-LLC ratio, and the 5× on-/off-package bandwidth ratio.
    pub fn scaled(cores: usize) -> Self {
        SystemConfig {
            cores,
            core: CoreConfig::default(),
            l1: CacheLevelConfig::l1d(),
            l2: CacheLevelConfig::l2(),
            l3: CacheLevelConfig::l3(1024 * 1024),
            tlb: TlbConfig::default(),
            hbm: DramConfig::hbm(),
            ddr: DramConfig::ddr4_2ch(),
            dc_capacity: 48 * 1024 * 1024,
            clock_ghz: 3.2,
            pages_per_gb: 4096,
            max_walks_per_core: 8,
        }
    }

    /// The paper's full-scale organization (Table II): 8 MiB L3, 1 GiB
    /// DRAM cache, unscaled multi-GB footprints. Runs are long; use for
    /// spot validation rather than the full sweep.
    pub fn paper(cores: usize) -> Self {
        SystemConfig {
            l3: CacheLevelConfig::l3(8 * 1024 * 1024),
            dc_capacity: 1024 * 1024 * 1024,
            pages_per_gb: 262_144, // true 4 KiB pages per GB
            ..Self::scaled(cores)
        }
    }

    /// LLC reach in 4 KiB pages (sizes the workloads' revisit window).
    pub fn l3_reach_pages(&self) -> u64 {
        self.l3.size_bytes / nomad_types::PAGE_SIZE
    }

    /// DRAM-cache capacity in 4 KiB frames.
    pub fn dc_frames(&self) -> u64 {
        self.dc_capacity / nomad_types::PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_preserves_key_ratios() {
        let c = SystemConfig::scaled(8);
        assert_eq!(c.cores, 8);
        // DC is 32× the LLC (paper: 1 GiB vs 8 MiB = 128×; both ≫ 1).
        assert!(c.dc_capacity / c.l3.size_bytes >= 16);
        // On/off-package bandwidth ratio 5×.
        let ratio = c.hbm.peak_gbps() / c.ddr.peak_gbps();
        assert!((ratio - 5.0).abs() < 0.01);
        // A scaled cact footprint exceeds the DC capacity, preserving
        // the streaming-pressure property.
        let cact_pages = (11.9 * c.pages_per_gb as f64) as u64;
        assert!(cact_pages > c.dc_frames());
    }

    #[test]
    fn paper_config_uses_true_page_scaling() {
        let c = SystemConfig::paper(8);
        assert_eq!(c.pages_per_gb, 262_144);
        assert_eq!(c.dc_capacity, 1 << 30);
    }
}
