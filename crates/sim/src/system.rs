//! The [`System`]: cores, TLBs, SRAM caches, DRAM-cache scheme and
//! DRAM devices wired into one cycle-level simulation.

use crate::config::SystemConfig;
use crate::report::{ObsSeries, RunReport};
use nomad_cache::{CacheLevel, TlbHierarchy, TlbLookup};
use nomad_cpu::{Core, PendingMemOp};
use nomad_dcache::{CacheFlush, DcAccessReq, DcScheme, SchemeEvents, SchemeStatsObs};
use nomad_dram::Dram;
use nomad_obs::{Histo, Registry, SnapshotLog, SpanRing, SIM_TRACKS, TRACK_LLC_MSHR};
use nomad_trace::TraceSource;
use nomad_types::{
    AccessKind, BlockAddr, CancelToken, CoreId, Cycle, MemReq, MemTarget, NextActivity, ReqId,
    TimingWheel, TrafficClass, VirtAddr,
};

/// Per-core address-space namespacing: each core runs its own copy of
/// the benchmark in a disjoint virtual range (the paper's rate-mode
/// setup).
fn namespaced(vaddr: VirtAddr, core: CoreId) -> VirtAddr {
    VirtAddr(vaddr.raw() | ((core as u64) << 44))
}

#[derive(Debug, Clone, Copy)]
struct Walk {
    op: PendingMemOp,
    ready_at: Cycle,
}

#[derive(Debug, Clone, Copy)]
struct IssueEntry {
    at: Cycle,
    op: PendingMemOp,
    addr: BlockAddr,
    target: MemTarget,
}

/// Hierarchy-wide flush view handed to the scheme (Algorithm 2's
/// `flush_cache_range`).
struct HierFlush<'a> {
    l1s: &'a mut [CacheLevel],
    l2s: &'a mut [CacheLevel],
    l3: &'a mut CacheLevel,
}

impl CacheFlush for HierFlush<'_> {
    fn flush_dc_page(&mut self, page: u64) -> (usize, usize) {
        let mut lines = 0;
        let mut dirty = 0;
        for c in self.l1s.iter_mut().chain(self.l2s.iter_mut()) {
            let (l, d) = c.invalidate_dc_page(page);
            lines += l;
            dirty += d;
        }
        let (l, d) = self.l3.invalidate_dc_page(page);
        (lines + l, dirty + d)
    }
}

/// Metric names exported as `ph:"C"` counter series in the Chrome
/// trace — the occupancy signals that make TDC's blocking vs NOMAD's
/// non-blocking behaviour visible above the span rows.
const TRACE_COUNTERS: &[&str] = &[
    "dcache.pcshr_occupancy",
    "dcache.free_frames",
    "cache.l3.mshr_occupancy",
];

/// Wall-clock split of the dense-tick hot path, armed by the
/// `NOMAD_HOT_PROFILE` environment variable (or
/// [`System::enable_hot_profile`]). Purely observational: the counters
/// never feed back into simulated state, so profiled and unprofiled
/// runs produce byte-identical [`RunReport`]s. Off (the default), the
/// only residue on the tick path is a handful of `Option::is_some`
/// branches. Armed, the laps read [`nomad_types::fastclock`] (RDTSC
/// on x86-64, a few ns per read) instead of `Instant`, keeping the
/// profiled run within a few percent of unprofiled speed; raw units
/// are converted to nanoseconds only when a report is snapshotted.
#[derive(Debug, Default, Clone, Copy)]
struct HotProfile {
    /// Phases 1–3: core commit/dispatch, translation, L1 injection.
    cpu_raw: u64,
    /// Phase 4: the SRAM hierarchy ([`System::tick_caches`]).
    cache_raw: u64,
    /// Phase 5: scheme tick (which ticks both DRAM devices internally)
    /// plus response/shootdown/wake delivery. The DRAM share is carved
    /// out afterwards from the devices' own profiled time.
    scheme_raw: u64,
    /// Dense [`System::tick`] calls in the profiled window.
    dense_ticks: u64,
    /// Event-kernel bulk advances ([`System::skip`]) in the window.
    skips: u64,
    /// Cycles covered by those skips.
    skipped_cycles: u64,
    /// Phase-5-only burst cycles (cpu-quiet regions) in the window.
    burst_ticks: u64,
}

/// Snapshot of the hot-path profile ([`System::hot_profile`]),
/// suitable for JSON artifacts. The dcache/dram split divides phase 5:
/// `dram_nanos` is wall time inside `Dram::tick` for both devices,
/// `dcache_nanos` is the rest of the scheme tick.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct HotProfileReport {
    /// Wall nanos in the core/translation/issue phases.
    pub cpu_nanos: u64,
    /// Wall nanos in the SRAM hierarchy phase.
    pub cache_nanos: u64,
    /// Wall nanos in the scheme tick outside the DRAM devices.
    pub dcache_nanos: u64,
    /// Wall nanos inside `Dram::tick` (HBM + DDR4).
    pub dram_nanos: u64,
    /// Dense ticks in the profiled window.
    pub dense_ticks: u64,
    /// Event-kernel skips in the window.
    pub skips: u64,
    /// Cycles covered by those skips.
    pub skipped_cycles: u64,
    /// Phase-5-only burst cycles (cpu-quiet dense regions executed
    /// without touching cores, translation or the SRAM hierarchy).
    pub burst_ticks: u64,
}

/// Observability state of one system: the per-system [`Registry`] every
/// component registered into, the shared span ring, and the snapshot
/// schedule. Per-system (never global) so `NOMAD_JOBS=4` sweeps stay
/// deterministic — parallel cells never share a metric cell.
struct SysObs {
    registry: Registry,
    ring: SpanRing,
    log: SnapshotLog,
    /// Snapshot cadence in cycles ([`nomad_obs::sample_interval`]).
    interval: u64,
    /// Next cycle at (or after) which a snapshot is due.
    next_sample: Cycle,
    /// Cycles jumped per event-kernel skip.
    skip_span: Histo,
    /// Sampled mirrors of the generic [`nomad_dcache::SchemeStats`].
    scheme_gauges: SchemeStatsObs,
}

/// A complete simulated system.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    tlbs: Vec<TlbHierarchy>,
    l1s: Vec<CacheLevel>,
    l2s: Vec<CacheLevel>,
    l3: CacheLevel,
    scheme: Box<dyn DcScheme>,
    hbm: Dram,
    ddr: Dram,
    cycle: Cycle,
    /// Page-table walks in flight, per core.
    walking: Vec<Vec<Walk>>,
    /// Memory ops whose walk blocked on an OS routine, per core.
    blocked: Vec<Vec<PendingMemOp>>,
    /// Translated ops awaiting L1 injection, per core.
    issue_q: Vec<Vec<IssueEntry>>,
    ev: SchemeEvents,
    /// Cycles measured since the last stats reset.
    measured_cycles: Cycle,
    /// Observability state; `None` (the common case) is the exact
    /// pre-instrumentation code path.
    obs: Option<SysObs>,
    /// Hot-path wall-time profile; `None` (the common case) keeps the
    /// tick loop free of any clock reads.
    hot: Option<HotProfile>,
    /// The event calendar: one deadline slot per source (see
    /// [`Self::refresh_wheel`] for the layout), refreshed at kernel
    /// decision points and read in O(1) by the run loop.
    wheel: TimingWheel,
}

/// Wheel sources past the three per-core clusters: L3, scheme, HBM,
/// DDR; see [`System::refresh_wheel`].
const WHEEL_EXTRA: usize = 4;

/// Shortest cpu-quiet window worth running as a burst instead of dense
/// backoff ticks: a burst ends with a full wheel refresh (including the
/// DRAM command-queue bound scans), so it must save at least this many
/// phase-1–4 executions to pay for itself.
const MIN_BURST: Cycle = 8;

impl core::fmt::Debug for System {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("System")
            .field("scheme", &self.scheme.name())
            .field("cores", &self.cores.len())
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Assemble a system running `scheme` with one trace per core.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != cfg.cores`.
    pub fn new(
        cfg: SystemConfig,
        scheme: Box<dyn DcScheme>,
        traces: Vec<Box<dyn TraceSource>>,
    ) -> Self {
        assert_eq!(traces.len(), cfg.cores, "one trace per core");
        assert!(
            3 * cfg.cores + WHEEL_EXTRA <= nomad_types::wheel::MAX_SOURCES,
            "the timing wheel tracks at most {} sources (3 per core + {WHEEL_EXTRA})",
            nomad_types::wheel::MAX_SOURCES
        );
        let cores: Vec<Core> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| Core::new(i, cfg.core, t))
            .collect();
        let mut sys = System {
            tlbs: (0..cfg.cores).map(|_| TlbHierarchy::new(cfg.tlb)).collect(),
            l1s: (0..cfg.cores)
                .map(|_| CacheLevel::new(cfg.l1.clone()))
                .collect(),
            l2s: (0..cfg.cores)
                .map(|_| CacheLevel::new(cfg.l2.clone()))
                .collect(),
            l3: CacheLevel::new(cfg.l3.clone()),
            scheme,
            hbm: Dram::new(cfg.hbm.clone()),
            ddr: Dram::new(cfg.ddr.clone()),
            cycle: 0,
            walking: (0..cfg.cores).map(|_| Vec::new()).collect(),
            blocked: (0..cfg.cores).map(|_| Vec::new()).collect(),
            issue_q: (0..cfg.cores).map(|_| Vec::new()).collect(),
            ev: SchemeEvents::default(),
            measured_cycles: 0,
            obs: None,
            hot: None,
            wheel: TimingWheel::new(3 * cfg.cores + WHEEL_EXTRA),
            cores,
            cfg,
        };
        if nomad_obs::enabled() {
            sys.install_obs();
        }
        if std::env::var_os("NOMAD_HOT_PROFILE").is_some() {
            sys.enable_hot_profile();
        }
        sys
    }

    /// Whether this system can be recycled for a cell running under
    /// `cfg`: the configuration must be identical (component geometry
    /// is baked into every allocation), the system must be un-observed,
    /// and observability must currently be off — [`System::new`] would
    /// install a fresh registry for an observed cell, so recycling an
    /// obs-less system while [`nomad_obs::enabled`] would silently
    /// produce an unobserved run. Observed cells always build from
    /// scratch.
    pub fn can_reuse_for(&self, cfg: &SystemConfig) -> bool {
        self.obs.is_none() && !nomad_obs::enabled() && self.cfg == *cfg
    }

    /// Recycle this system for a new cell: every component returns to
    /// its just-constructed state while keeping its allocations, the
    /// new scheme and traces are installed, and the clock rewinds to
    /// cycle 0. The result is behaviourally indistinguishable from
    /// `System::new(cfg, scheme, traces)` — the `arena_parity` suite
    /// holds reused-vs-fresh runs to byte-identical [`RunReport`]s.
    ///
    /// Callers must check [`can_reuse_for`](Self::can_reuse_for) first.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the configured core count.
    pub fn reset_for_cell(&mut self, scheme: Box<dyn DcScheme>, traces: Vec<Box<dyn TraceSource>>) {
        assert_eq!(traces.len(), self.cfg.cores, "one trace per core");
        debug_assert!(self.obs.is_none(), "observed systems are not reusable");
        for (core, trace) in self.cores.iter_mut().zip(traces) {
            core.reset_with_trace(trace);
        }
        for tlb in &mut self.tlbs {
            tlb.reset();
        }
        for l1 in &mut self.l1s {
            l1.reset();
        }
        for l2 in &mut self.l2s {
            l2.reset();
        }
        self.l3.reset();
        self.scheme = scheme;
        self.hbm.reset();
        self.ddr.reset();
        self.cycle = 0;
        for q in &mut self.walking {
            q.clear();
        }
        for q in &mut self.blocked {
            q.clear();
        }
        for q in &mut self.issue_q {
            q.clear();
        }
        self.ev.clear();
        self.measured_cycles = 0;
        if self.hot.is_some() {
            // Dram::reset cleared the devices' profiled time; restart
            // the system-side laps to match a freshly armed profile.
            self.hot = Some(HotProfile::default());
        }
        self.wheel.clear();
    }

    /// Arm the hot-path wall-time profile (see [`HotProfileReport`]).
    /// Also armed by the `NOMAD_HOT_PROFILE` environment variable.
    /// Counters restart from zero at every [`reset_stats`](Self::reset_stats),
    /// so a warm-up phase never pollutes the measured window.
    pub fn enable_hot_profile(&mut self) {
        nomad_types::fastclock::init();
        self.hot = Some(HotProfile::default());
        self.hbm.set_profile(true);
        self.ddr.set_profile(true);
    }

    /// Snapshot the hot-path profile, or `None` when it is not armed.
    pub fn hot_profile(&self) -> Option<HotProfileReport> {
        let h = self.hot.as_ref()?;
        let to_nanos = nomad_types::fastclock::span_to_nanos;
        let dram_raw = self.hbm.profiled_raw() + self.ddr.profiled_raw();
        Some(HotProfileReport {
            cpu_nanos: to_nanos(h.cpu_raw),
            cache_nanos: to_nanos(h.cache_raw),
            dcache_nanos: to_nanos(h.scheme_raw.saturating_sub(dram_raw)),
            dram_nanos: to_nanos(dram_raw),
            dense_ticks: h.dense_ticks,
            burst_ticks: h.burst_ticks,
            skips: h.skips,
            skipped_cycles: h.skipped_cycles,
        })
    }

    /// Build the per-system [`Registry`], attach every component's
    /// metrics to it, and start the snapshot schedule. Called once from
    /// [`System::new`] when [`nomad_obs::enabled`] — an un-observed
    /// system never holds any obs state at all.
    fn install_obs(&mut self) {
        let registry = Registry::new();
        let ring = SpanRing::default();
        for core in &mut self.cores {
            core.attach_obs(&registry);
        }
        for (i, l1) in self.l1s.iter_mut().enumerate() {
            l1.attach_obs(&registry, &format!("cache.l1.{i}"));
        }
        for (i, l2) in self.l2s.iter_mut().enumerate() {
            l2.attach_obs(&registry, &format!("cache.l2.{i}"));
        }
        self.l3
            .attach_obs_full(&registry, "cache.l3", ring.clone(), TRACK_LLC_MSHR);
        self.hbm.attach_obs(&registry, "dram.hbm");
        self.ddr.attach_obs(&registry, "dram.ddr");
        self.scheme.attach_obs(&registry, &ring);
        let skip_span = registry.histogram(
            "sim.kernel.skip_span",
            "cycles",
            "sim",
            "Cycles jumped per event-kernel skip",
        );
        let scheme_gauges = SchemeStatsObs::register(&registry);
        let interval = nomad_obs::sample_interval();
        self.obs = Some(SysObs {
            registry,
            ring,
            log: SnapshotLog::new(),
            interval,
            next_sample: self.cycle - self.cycle % interval + interval,
            skip_span,
            scheme_gauges,
        });
    }

    /// Refresh every registered gauge from live component state and
    /// append one snapshot keyed by `now`; reschedules the next sample
    /// at the following `interval` boundary.
    fn obs_sample(&mut self, now: Cycle) {
        let Some(obs) = self.obs.as_mut() else {
            return;
        };
        for core in &self.cores {
            core.obs_sample();
        }
        for lvl in self.l1s.iter().chain(self.l2s.iter()) {
            lvl.obs_sample();
        }
        self.l3.obs_sample();
        self.hbm.obs_sample();
        self.ddr.obs_sample();
        self.scheme.obs_sample();
        obs.scheme_gauges.sample(self.scheme.stats());
        obs.log.push(obs.registry.snapshot(now));
        obs.next_sample = now - now % obs.interval + obs.interval;
    }

    /// Render the observed run into serialized artifacts, or `None`
    /// when the system is un-observed. `label` names the trace process
    /// (e.g. `"mcf NOMAD"`).
    pub fn obs_series(&self, label: &str) -> Option<ObsSeries> {
        let obs = self.obs.as_ref()?;
        Some(ObsSeries {
            interval: obs.interval,
            snapshots: nomad_obs::export::snapshot_json(
                obs.interval,
                &obs.registry.descs(),
                &obs.log,
            ),
            trace: nomad_obs::trace::chrome_trace(
                label,
                SIM_TRACKS,
                &obs.ring,
                Some(&obs.log),
                TRACE_COUNTERS,
            ),
        })
    }

    /// Sorted base names of every metric this system's registry
    /// exports, or `None` when un-observed. The `metrics_doc` test in
    /// `nomad-bench` diffs this list against `METRICS.md`.
    pub fn obs_metric_names(&self) -> Option<Vec<String>> {
        self.obs.as_ref().map(|o| o.registry.names())
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Cycles since the last stats reset.
    pub fn measured_cycles(&self) -> Cycle {
        self.measured_cycles
    }

    /// The system configuration.
    pub fn cfg(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The active scheme (for stats).
    pub fn scheme(&self) -> &dyn DcScheme {
        self.scheme.as_ref()
    }

    /// Total instructions committed across all cores.
    pub fn total_instructions(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.stats().instructions.get())
            .sum()
    }

    /// Minimum per-core committed instructions (run-completion metric).
    pub fn min_core_instructions(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.stats().instructions.get())
            .min()
            .unwrap_or(0)
    }

    /// Checkpoint warming: start the DRAM cache the way a long-running
    /// system would have left it. First, *aged* pages (old streamed
    /// history, partially dirty) fill the frames the live sets will
    /// not use — they sit at the FIFO tail and are reclaimed first, so
    /// eviction and writeback behaviour is in steady state from the
    /// first measured cycle. Then every trace's resident set installs
    /// on top, round-robin across cores. Mirrors the paper's
    /// atomic-CPU fast-forward. Call once, before [`System::run`].
    pub fn prewarm(&mut self) {
        let per_core: Vec<Vec<nomad_types::Vpn>> = self
            .cores
            .iter()
            .map(|c| c.trace().resident_pages())
            .collect();
        let resident_total: usize = per_core.iter().map(Vec::len).sum();
        if let Some(free) = self.scheme.free_frames() {
            // A steady-state system's eviction daemon keeps a
            // threshold's worth of frames free; leave that slack.
            let slack = (free as usize) / 16;
            let spare = (free as usize)
                .saturating_sub(resident_total)
                .saturating_sub(slack);
            if spare > 0 && !self.cores.is_empty() {
                let per = spare.div_ceil(self.cores.len());
                let aged: Vec<Vec<(nomad_types::Vpn, bool)>> = self
                    .cores
                    .iter()
                    .map(|c| c.trace().aged_pages(per))
                    .collect();
                let longest = aged.iter().map(Vec::len).max().unwrap_or(0);
                let mut budget = spare;
                'outer: for i in 0..longest {
                    for (c, pages) in aged.iter().enumerate() {
                        if let Some(&(vpn, dirty)) = pages.get(i) {
                            if budget == 0 {
                                break 'outer;
                            }
                            budget -= 1;
                            let va = namespaced(vpn.base(), c);
                            self.scheme.prewarm(c, va.frame(), dirty);
                        }
                    }
                }
            }
        }
        let longest = per_core.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..longest {
            for (c, pages) in per_core.iter().enumerate() {
                if let Some(vpn) = pages.get(i) {
                    let va = namespaced(vpn.base(), c);
                    self.scheme.prewarm(c, va.frame(), false);
                }
            }
        }
    }

    /// Accumulate the wall time since `*mark` into the profile counter
    /// `sel` picks, and restart the lap; no-op when the profile is off.
    fn lap(&mut self, mark: &mut Option<u64>, sel: fn(&mut HotProfile) -> &mut u64) {
        if let (Some(t), Some(h)) = (mark.as_mut(), self.hot.as_mut()) {
            let now = nomad_types::fastclock::now();
            *sel(h) += now.wrapping_sub(*t);
            *t = now;
        }
    }

    /// Advance the whole system by one CPU cycle.
    pub fn tick(&mut self) {
        let now = self.cycle;
        let mut mark = self.hot.as_ref().map(|_| nomad_types::fastclock::now());

        // 1. Cores: commit + fetch/dispatch.
        for core in &mut self.cores {
            core.tick(now);
        }

        // 2. Translation: finish ready walks, start new ones.
        self.process_walks(now);
        self.drain_dispatch(now);

        // 3. Inject translated ops into L1s.
        self.inject_issues(now);
        self.lap(&mut mark, |h| &mut h.cpu_raw);

        // 4. SRAM hierarchy.
        self.tick_caches(now);
        self.lap(&mut mark, |h| &mut h.cache_raw);

        // 5. Scheme + DRAM devices.
        self.ev.clear();
        {
            let mut flush = HierFlush {
                l1s: &mut self.l1s,
                l2s: &mut self.l2s,
                l3: &mut self.l3,
            };
            self.scheme
                .tick(now, &mut self.hbm, &mut self.ddr, &mut flush, &mut self.ev);
        }
        for resp in self.ev.responses.drain(..) {
            self.l3.push_resp(resp);
        }
        // Forced TLB shootdowns (tiny-cache fallback path).
        let shootdowns: Vec<_> = self.ev.shootdowns.drain(..).collect();
        for vpn in shootdowns {
            for c in 0..self.cores.len() {
                if self.tlbs[c].invalidate(vpn) {
                    for d in self.tlbs[c].take_departures() {
                        self.scheme.tlb_departed(c, d.vpn);
                    }
                }
            }
        }
        let mut rewalk: Vec<CoreId> = Vec::new();
        for core_id in self.ev.wakes.drain(..) {
            self.cores[core_id].wake_os();
            rewalk.push(core_id);
        }
        for core_id in rewalk {
            // Blocked translations retry the walk next cycle.
            let ops = std::mem::take(&mut self.blocked[core_id]);
            for op in ops {
                self.walking[core_id].push(Walk {
                    op,
                    ready_at: now + 1,
                });
            }
        }
        self.lap(&mut mark, |h| &mut h.scheme_raw);
        if let Some(h) = self.hot.as_mut() {
            h.dense_ticks += 1;
        }

        if self.obs.as_ref().is_some_and(|o| now >= o.next_sample) {
            self.obs_sample(now);
        }
        self.cycle += 1;
        self.measured_cycles += 1;
    }

    fn process_walks(&mut self, now: Cycle) {
        for c in 0..self.cores.len() {
            let mut i = 0;
            while i < self.walking[c].len() {
                if self.walking[c][i].ready_at > now {
                    i += 1;
                    continue;
                }
                let walk = self.walking[c].swap_remove(i);
                let vaddr = namespaced(walk.op.vaddr, c);
                let vpn = vaddr.frame();
                match self
                    .scheme
                    .walk(c, vpn, vaddr.sub_block(), walk.op.kind, now)
                {
                    nomad_dcache::WalkOutcome::Ready { entry } => {
                        self.tlbs[c].insert(entry);
                        self.scheme.tlb_inserted(c, vpn);
                        for d in self.tlbs[c].take_departures() {
                            self.scheme.tlb_departed(c, d.vpn);
                        }
                        let (addr, target) = resolve(entry.frame, vaddr);
                        self.issue_q[c].push(IssueEntry {
                            at: now,
                            op: walk.op,
                            addr,
                            target,
                        });
                    }
                    nomad_dcache::WalkOutcome::Blocked { reason } => {
                        self.cores[c].stall_os(Cycle::MAX, reason);
                        self.blocked[c].push(walk.op);
                    }
                }
            }
        }
    }

    fn drain_dispatch(&mut self, now: Cycle) {
        for c in 0..self.cores.len() {
            loop {
                let in_flight =
                    self.walking[c].len() + self.blocked[c].len() + self.issue_q[c].len();
                if in_flight >= self.cfg.max_walks_per_core + 8 {
                    break;
                }
                let Some(op) = self.cores[c].pop_dispatch() else {
                    break;
                };
                let vaddr = namespaced(op.vaddr, c);
                let vpn = vaddr.frame();
                match self.tlbs[c].lookup(vpn) {
                    TlbLookup::Hit { entry, latency } => {
                        let (addr, target) = resolve(entry.frame, vaddr);
                        self.issue_q[c].push(IssueEntry {
                            at: now + latency.saturating_sub(1),
                            op,
                            addr,
                            target,
                        });
                    }
                    TlbLookup::Miss { latency } => {
                        if self.walking[c].len() >= self.cfg.max_walks_per_core {
                            self.cores[c].push_back_dispatch(op);
                            break;
                        }
                        self.walking[c].push(Walk {
                            op,
                            ready_at: now + latency + self.tlbs[c].walk_latency(),
                        });
                    }
                }
            }
        }
    }

    fn inject_issues(&mut self, now: Cycle) {
        for c in 0..self.cores.len() {
            let mut i = 0;
            while i < self.issue_q[c].len() {
                let e = self.issue_q[c][i];
                if e.at > now || !self.l1s[c].can_accept() {
                    i += 1;
                    continue;
                }
                self.issue_q[c].swap_remove(i);
                let is_read = e.op.kind == AccessKind::Read;
                self.l1s[c].push_req(
                    MemReq {
                        token: ReqId(e.op.slot),
                        addr: e.addr,
                        target: e.target,
                        kind: e.op.kind,
                        class: if is_read {
                            TrafficClass::DemandRead
                        } else {
                            TrafficClass::DemandWrite
                        },
                        core: c,
                        wants_response: is_read,
                    },
                    now,
                );
            }
        }
    }

    fn tick_caches(&mut self, now: Cycle) {
        for c in 0..self.cores.len() {
            self.l1s[c].tick(now);
            // L1 → L2.
            while self.l2s[c].can_accept() {
                match self.l1s[c].pop_to_lower() {
                    Some(req) => self.l2s[c].push_req(req, now),
                    None => break,
                }
            }
            self.l2s[c].tick(now);
            // L2 → L3.
            while self.l3.can_accept() {
                if self.l2s[c].peek_to_lower().is_none() {
                    break;
                }
                let req = self.l2s[c].pop_to_lower().expect("peeked");
                self.l3.push_req(req, now);
            }
        }
        self.l3.tick(now);
        // L3 → scheme.
        while self.scheme.can_accept() {
            let Some(req) = self.l3.pop_to_lower() else {
                break;
            };
            self.scheme.access(
                DcAccessReq {
                    token: req.token,
                    addr: req.addr,
                    target: req.target,
                    kind: req.kind,
                    core: req.core,
                    wants_response: req.wants_response,
                },
                now,
            );
        }
        // Responses upward: L3 → L2 (by core) → L1 → core.
        while let Some(resp) = self.l3.pop_to_upper(now) {
            self.l2s[resp.core].push_resp(resp);
        }
        for c in 0..self.cores.len() {
            while let Some(resp) = self.l2s[c].pop_to_upper(now) {
                self.l1s[c].push_resp(resp);
            }
            while let Some(resp) = self.l1s[c].pop_to_upper(now) {
                if resp.kind == AccessKind::Read {
                    self.cores[c].mem_done(resp.token.0);
                }
            }
        }
    }

    /// Refresh every wheel source from post-tick component state
    /// (`now = self.cycle - 1`, the cycle the just-finished tick ran
    /// as, matching the [`NextActivity`] contract), then slide the
    /// near window. Called at kernel decision points — the moment the
    /// kernel knows any component's deadline may have changed. The
    /// wheel's idempotent `set` makes unchanged sources free to
    /// re-push.
    ///
    /// Source layout for `n` cores: `0..n` are per-core cpu clusters
    /// (core state plus pending dispatch, in-flight walks and
    /// translated issues), `n..2n` the L1s, `2n..3n` the L2s, then
    /// L3, the scheme, HBM and DDR. Everything before the scheme is
    /// "cpu-side": the burst loop requires all of it inactive.
    fn refresh_wheel(&mut self) {
        let now = self.cycle - 1;
        let floor = now + 1;
        let n = self.cores.len();
        self.wheel.advance_to(now);
        for c in 0..n {
            let mut t = self.cores[c].next_activity_at(now).unwrap_or(Cycle::MAX);
            if self.cores[c].dispatch_pending() {
                t = floor;
            }
            for w in &self.walking[c] {
                t = t.min(w.ready_at);
            }
            for e in &self.issue_q[c] {
                t = t.min(e.at);
            }
            // `blocked` ops are reactive: their cores sleep until a
            // scheme wake, which the scheme's own activity covers.
            self.wheel.set(c, (t != Cycle::MAX).then(|| t.max(floor)));
            let l1 = self.l1s[c].next_activity_at(now).map(|t| t.max(floor));
            self.wheel.set(n + c, l1);
            let l2 = self.l2s[c].next_activity_at(now).map(|t| t.max(floor));
            self.wheel.set(2 * n + c, l2);
        }
        self.wheel
            .set(3 * n, self.l3.next_activity_at(now).map(|t| t.max(floor)));
        self.wheel.set(
            3 * n + 1,
            self.scheme.next_activity_at(now).map(|t| t.max(floor)),
        );
        // Devices count tick invocations: post-tick their `cpu_cycle`
        // is `self.cycle`, and a predicted edge at count `k` fires
        // during the tick of system cycle `k - 1`.
        self.wheel.set(
            3 * n + 2,
            self.hbm
                .next_activity_at(self.cycle)
                .map(|t| (t - 1).max(floor)),
        );
        self.wheel.set(
            3 * n + 3,
            self.ddr
                .next_activity_at(self.cycle)
                .map(|t| (t - 1).max(floor)),
        );
    }

    /// Earliest live deadline among the cpu-side wheel sources
    /// (everything except the scheme and the DRAM devices), or `None`
    /// when the whole cpu side is inert. Until this cycle, tick phases
    /// 1–4 are pure stall accounting — the burst-eligibility bound.
    #[inline]
    fn cpu_side_next(&self) -> Option<Cycle> {
        let mut live = self.wheel.live_mask() & ((1u64 << (3 * self.cores.len() + 1)) - 1);
        let mut next: Option<Cycle> = None;
        while live != 0 {
            let src = live.trailing_zeros() as usize;
            let t = self.wheel.deadline(src).expect("live source has deadline");
            next = Some(next.map_or(t, |n| n.min(t)));
            live &= live - 1;
        }
        next
    }

    /// Earliest cycle at which ticking the system again could do more
    /// than constant-rate stat accounting, given the post-tick state,
    /// or `None` when every component is quiescent (only the deadlock
    /// horizon bounds the skip then). All results are `> self.cycle - 1`,
    /// i.e. candidate cycles for the *next* tick.
    ///
    /// This is the pre-wheel pull-based min-scan, kept as the
    /// differential oracle for the timing wheel: test and debug builds
    /// assert at every kernel decision point that the wheel's chosen
    /// next event equals this scan's.
    #[cfg(any(test, debug_assertions))]
    fn next_event_at_scan(&self) -> Option<Cycle> {
        // `self.cycle` was already incremented by the tick we are
        // summarizing; components speak the NextActivity contract
        // relative to the cycle that just ran.
        let now = self.cycle - 1;
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            let t = t.max(now + 1);
            next = Some(next.map_or(t, |n: Cycle| n.min(t)));
        };
        for (c, core) in self.cores.iter().enumerate() {
            if let Some(t) = core.next_activity_at(now) {
                consider(t);
            }
            if core.dispatch_pending() {
                consider(now + 1);
            }
            for w in &self.walking[c] {
                consider(w.ready_at);
            }
            for e in &self.issue_q[c] {
                consider(e.at);
            }
            // `blocked` ops are reactive: their cores sleep until a
            // scheme wake, which the scheme's own activity covers.
        }
        for lvl in self.l1s.iter().chain(self.l2s.iter()) {
            if let Some(t) = lvl.next_activity_at(now) {
                consider(t);
            }
        }
        if let Some(t) = self.l3.next_activity_at(now) {
            consider(t);
        }
        if let Some(t) = self.scheme.next_activity_at(now) {
            consider(t);
        }
        // Devices count tick invocations: post-tick their `cpu_cycle`
        // is `self.cycle`, and a predicted edge at count `k` fires
        // during the tick of system cycle `k - 1`.
        for dev in [&self.hbm, &self.ddr] {
            if let Some(t) = dev.next_activity_at(self.cycle) {
                consider(t - 1);
            }
        }
        next
    }

    /// Jump over `delta` cycles in which [`next_event_at`](Self::next_event_at)
    /// guarantees dense ticking would only have done constant-rate stat
    /// accounting, applying that accounting in bulk.
    fn skip(&mut self, delta: Cycle) {
        for core in &mut self.cores {
            core.idle_advance(delta);
        }
        self.hbm.advance(delta);
        self.ddr.advance(delta);
        self.cycle += delta;
        self.measured_cycles += delta;
        if let Some(h) = self.hot.as_mut() {
            h.skips += 1;
            h.skipped_cycles += delta;
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.skip_span.record(delta);
        }
        // A skip can jump over one or more sample points; take one
        // catch-up snapshot at the landing cycle (series timestamps are
        // real cycles, so an off-boundary row is fine).
        if self
            .obs
            .as_ref()
            .is_some_and(|o| self.cycle >= o.next_sample)
        {
            self.obs_sample(self.cycle);
        }
    }

    /// Run until every core has committed `instructions_per_core` more
    /// instructions, using next-event skipping between dense ticks.
    ///
    /// # Panics
    ///
    /// Panics if no core commits anything for 3 million cycles (a
    /// deadlock in the modeled system).
    pub fn run(&mut self, instructions_per_core: u64) {
        self.run_inner(instructions_per_core, None);
    }

    /// [`run`](Self::run) with cooperative cancellation: `cancel` is
    /// polled at event boundaries (roughly every thousand dense ticks)
    /// and a cancelled token makes the run return `false` promptly,
    /// leaving the system in a consistent (if unfinished) state.
    ///
    /// # Panics
    ///
    /// Panics on the same deadlock condition as [`run`](Self::run).
    pub fn run_with_cancel(&mut self, instructions_per_core: u64, cancel: &CancelToken) -> bool {
        self.run_inner(instructions_per_core, Some(cancel))
    }

    fn run_inner(&mut self, instructions_per_core: u64, cancel: Option<&CancelToken>) -> bool {
        let targets: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.stats().instructions.get() + instructions_per_core)
            .collect();
        let mut last_progress = self.cycle;
        let mut last_total = self.total_instructions();
        let mut iters: u64 = 0;
        // Query pacing: when next-event queries keep answering "no
        // skip" (e.g. a busy DRAM device pins activity to every device
        // edge), back off exponentially and tick densely in between —
        // dense ticks are the reference semantics, so pacing can only
        // trade away skip opportunities, never correctness.
        let mut requery_in: u64 = 0;
        let mut noskip_streak: u32 = 0;
        loop {
            let done = self
                .cores
                .iter()
                .zip(&targets)
                .all(|(c, t)| c.stats().instructions.get() >= *t);
            if done {
                return true;
            }
            if let Some(token) = cancel {
                iters = iters.wrapping_add(1);
                if iters & 1023 == 0 && token.is_cancelled() {
                    return false;
                }
            }
            self.tick();
            let total = self.total_instructions();
            if total != last_total {
                last_total = total;
                last_progress = self.cycle;
                // Hot path: a committing system is almost always busy
                // again next cycle, so skip the (read-only, but not
                // free) next-event query and just tick. Ticking a
                // skippable cycle densely is always parity-safe — the
                // dense loop *is* the reference semantics. The pacing
                // streak deliberately survives commits: it only grows
                // while queries keep failing, and a committing dense
                // region is exactly where the next query will fail
                // again. Successful skips/bursts reset it below.
                continue;
            } else if self.cycle - last_progress > 3_000_000 {
                panic!(
                    "system deadlock: no commit for 3M cycles (scheme {}, cycle {})",
                    self.scheme.name(),
                    self.cycle
                );
            }
            // Next-event skip. The deadlock horizon is the last cycle a
            // dense loop would still tick before its no-progress check
            // fires, so a genuinely dead system panics at the identical
            // cycle. Never skip past a completed run: re-check the
            // targets first (the loop head would break without ticking).
            let done = self
                .cores
                .iter()
                .zip(&targets)
                .all(|(c, t)| c.stats().instructions.get() >= *t);
            if done {
                continue;
            }
            if requery_in > 0 {
                requery_in -= 1;
                continue;
            }
            let horizon = last_progress + 3_000_000;
            self.refresh_wheel();
            let next = self.wheel.peek_next();
            #[cfg(any(test, debug_assertions))]
            assert_eq!(
                next,
                self.next_event_at_scan(),
                "timing wheel diverged from the min-scan oracle at cycle {}",
                self.cycle
            );
            let target = match next {
                Some(t) => t.min(horizon),
                None => horizon,
            };
            // A skip replaces `delta` dense ticks with one query plus
            // one bulk advance; for tiny deltas (a busy DRAM device
            // bounds skips to its next edge, 2-3 cycles away) the
            // machinery costs more than the ticks it saves. Tick those
            // densely instead — dense ticking is always parity-safe.
            let cpu_next = self.cpu_side_next().unwrap_or(Cycle::MAX);
            if target > self.cycle {
                let delta = target - self.cycle;
                self.skip(delta);
                if delta >= MIN_BURST {
                    noskip_streak = 0;
                } else {
                    // A tiny skip (a busy DRAM device grinding from
                    // edge to edge) saves fewer ticks than the query
                    // cost it took to find; pace those like no-skip
                    // outcomes so dense ticks amortize the next query.
                    noskip_streak = noskip_streak.saturating_add(1);
                    requery_in = 1u64 << (noskip_streak.min(6) - 1);
                }
            } else if cpu_next >= self.cycle + MIN_BURST {
                // Dense region, but the whole cpu side is inert until
                // `cpu_next`: run it as a scheme/DRAM-only burst
                // instead of full ticks. Short quiet windows are not
                // worth it — the burst ends with another full wheel
                // refresh, which must be amortized over the cycles the
                // burst wins, so tiny ones fall through to the dense
                // backoff below, and a burst cut short by scheme
                // events (a migration spraying responses) paces the
                // next query like a no-skip outcome.
                let start = self.cycle;
                if !self.burst(cpu_next, horizon, cancel, &mut iters) {
                    return false;
                }
                if self.cycle - start >= MIN_BURST {
                    noskip_streak = 0;
                } else {
                    noskip_streak = noskip_streak.saturating_add(1);
                    requery_in = 1u64 << (noskip_streak.min(6) - 1);
                }
            } else {
                // Nothing to skip right now; wait 1, 2, 4, … 32 dense
                // ticks (any commit resets the pacing immediately)
                // before paying for the next query.
                noskip_streak = noskip_streak.saturating_add(1);
                requery_in = 1u64 << (noskip_streak.min(6) - 1);
            }
        }
    }

    /// Execute a cpu-quiet dense region as a scheme/DRAM-only burst.
    ///
    /// Entered only when every cpu-side wheel source is inert until
    /// `until` (exclusive): the cores are stalled with nothing
    /// dispatchable before then, no walk or translated issue matures
    /// before then, and the whole SRAM hierarchy reports no earlier
    /// self-driven work. Under the NextActivity contract that makes
    /// tick phases 1–4 pure stall accounting for every cycle before
    /// `until` — and cpu-side deadlines cannot move *earlier* during
    /// the burst, because the only thing that changes cpu-side state
    /// is a phase-5 delivery, which ends the burst. So each burst
    /// cycle runs phase 5 alone, accumulates the cores' stall
    /// accounting, and stops at `until` or the moment the scheme emits
    /// anything cpu-visible (responses, shootdowns, wakes): the first
    /// cycle whose phases 1–4 could stop being no-ops is then ticked
    /// densely by the caller. Stall accounting is flushed *before*
    /// wakes are applied, matching dense ordering (phase 1 of the
    /// final cycle ran, still stalled, before phase 5 produced the
    /// wake).
    ///
    /// Returns `false` when `cancel` fired; the deadlock `horizon`
    /// bounds the burst exactly like it bounds skips.
    fn burst(
        &mut self,
        until: Cycle,
        horizon: Cycle,
        cancel: Option<&CancelToken>,
        iters: &mut u64,
    ) -> bool {
        let mut mark = self.hot.as_ref().map(|_| nomad_types::fastclock::now());
        let mut pending_idle: Cycle = 0;
        let mut burst_len: u64 = 0;
        let mut cancelled = false;
        loop {
            if self.cycle >= until || self.cycle > horizon {
                // Cpu side about to matter (or the no-progress panic is
                // due): hand back to the full-tick loop.
                break;
            }
            if let Some(token) = cancel {
                *iters = iters.wrapping_add(1);
                if *iters & 1023 == 0 && token.is_cancelled() {
                    cancelled = true;
                    break;
                }
            }
            let now = self.cycle;
            pending_idle += 1;
            burst_len += 1;

            self.ev.clear();
            {
                let mut flush = HierFlush {
                    l1s: &mut self.l1s,
                    l2s: &mut self.l2s,
                    l3: &mut self.l3,
                };
                self.scheme
                    .tick(now, &mut self.hbm, &mut self.ddr, &mut flush, &mut self.ev);
            }
            let cpu_visible = !self.ev.responses.is_empty()
                || !self.ev.shootdowns.is_empty()
                || !self.ev.wakes.is_empty();
            if cpu_visible {
                for core in &mut self.cores {
                    core.idle_advance(pending_idle);
                }
                pending_idle = 0;
            }
            for resp in self.ev.responses.drain(..) {
                self.l3.push_resp(resp);
            }
            let shootdowns: Vec<_> = self.ev.shootdowns.drain(..).collect();
            for vpn in shootdowns {
                for c in 0..self.cores.len() {
                    if self.tlbs[c].invalidate(vpn) {
                        for d in self.tlbs[c].take_departures() {
                            self.scheme.tlb_departed(c, d.vpn);
                        }
                    }
                }
            }
            let mut rewalk: Vec<CoreId> = Vec::new();
            for core_id in self.ev.wakes.drain(..) {
                self.cores[core_id].wake_os();
                rewalk.push(core_id);
            }
            for core_id in rewalk {
                let ops = std::mem::take(&mut self.blocked[core_id]);
                for op in ops {
                    self.walking[core_id].push(Walk {
                        op,
                        ready_at: now + 1,
                    });
                }
            }

            if self.obs.as_ref().is_some_and(|o| now >= o.next_sample) {
                // Gauges read live core state; bring the bulk stall
                // accounting current before snapshotting.
                if pending_idle > 0 {
                    for core in &mut self.cores {
                        core.idle_advance(pending_idle);
                    }
                    pending_idle = 0;
                }
                self.obs_sample(now);
            }
            self.cycle += 1;
            self.measured_cycles += 1;
            if cpu_visible {
                break;
            }
        }
        if pending_idle > 0 {
            for core in &mut self.cores {
                core.idle_advance(pending_idle);
            }
        }
        self.lap(&mut mark, |h| &mut h.scheme_raw);
        if let Some(h) = self.hot.as_mut() {
            h.burst_ticks += burst_len;
        }
        !cancelled
    }

    /// The pre-event-kernel reference loop: tick every cycle with no
    /// skipping. Kept as the parity oracle — event-kernel runs must
    /// produce byte-identical [`RunReport`]s to this path.
    ///
    /// # Panics
    ///
    /// Panics on the same deadlock condition as [`run`](Self::run).
    pub fn run_dense(&mut self, instructions_per_core: u64) {
        let targets: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.stats().instructions.get() + instructions_per_core)
            .collect();
        let mut last_progress = self.cycle;
        let mut last_total = self.total_instructions();
        loop {
            let done = self
                .cores
                .iter()
                .zip(&targets)
                .all(|(c, t)| c.stats().instructions.get() >= *t);
            if done {
                break;
            }
            self.tick();
            let total = self.total_instructions();
            if total != last_total {
                last_total = total;
                last_progress = self.cycle;
            } else if self.cycle - last_progress > 3_000_000 {
                panic!(
                    "system deadlock: no commit for 3M cycles (scheme {}, cycle {})",
                    self.scheme.name(),
                    self.cycle
                );
            }
        }
    }

    /// Run a warm-up phase then reset all statistics, mirroring the
    /// paper's fast-forward-to-ROI protocol.
    pub fn warm_up(&mut self, instructions_per_core: u64) {
        self.run(instructions_per_core);
        self.reset_stats();
    }

    /// Reset every statistic in the system (cores, caches, devices,
    /// scheme); simulation state is preserved.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.reset_stats();
        }
        for c in self.l1s.iter_mut().chain(self.l2s.iter_mut()) {
            c.reset_stats();
        }
        self.l3.reset_stats();
        self.hbm.reset_stats();
        self.ddr.reset_stats();
        self.scheme.reset_stats();
        self.measured_cycles = 0;
        if let Some(h) = self.hot.as_mut() {
            *h = HotProfile::default();
            self.hbm.reset_profile();
            self.ddr.reset_profile();
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.registry.reset_values();
            obs.ring.clear();
            obs.log.clear();
            obs.next_sample = self.cycle - self.cycle % obs.interval + obs.interval;
        }
    }

    /// Snapshot a report of the measured window. Observed systems get
    /// their rendered [`ObsSeries`] attached; un-observed reports are
    /// byte-identical to pre-instrumentation ones.
    pub fn report(&self, workload: &str) -> RunReport {
        let mut report = RunReport::collect(
            workload,
            self.scheme.name(),
            self.cfg.clock_ghz,
            self.measured_cycles,
            &self.cores,
            &self.l3,
            self.scheme.stats(),
            self.hbm.stats(),
            self.ddr.stats(),
        );
        report.obs = self.obs_series(&format!("{workload} {}", self.scheme.name()));
        report
    }
}

/// Resolve a TLB frame mapping plus page offset into a device block
/// address.
fn resolve(frame: nomad_cache::FrameKind, vaddr: VirtAddr) -> (BlockAddr, MemTarget) {
    match frame {
        nomad_cache::FrameKind::Phys(pfn) => (
            BlockAddr::containing(pfn.with_offset(vaddr.page_offset()).raw()),
            MemTarget::OffPackage,
        ),
        nomad_cache::FrameKind::Cache(cfn) => (
            BlockAddr::containing(cfn.with_offset(vaddr.page_offset()).raw()),
            MemTarget::DramCache,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SchemeSpec;
    use nomad_trace::{SyntheticTrace, WorkloadProfile};

    fn build(spec: &SchemeSpec, profile: &WorkloadProfile, seed: u64) -> System {
        let mut cfg = SystemConfig::scaled(1);
        cfg.dc_capacity = 4 * 1024 * 1024;
        let traces: Vec<Box<dyn TraceSource>> = (0..cfg.cores)
            .map(|i| {
                Box::new(SyntheticTrace::with_scale(
                    profile,
                    seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
                    cfg.pages_per_gb,
                    cfg.l3_reach_pages(),
                )) as Box<dyn TraceSource>
            })
            .collect();
        let mut sys = System::new(cfg.clone(), spec.build(&cfg), traces);
        sys.prewarm();
        sys
    }

    /// The wheel's chosen next event must equal the legacy pull-based
    /// min-scan after *every* tick, on every scheme — not just at the
    /// kernel's own (paced) decision points, which the inline
    /// `run_inner` assert already covers. Dense ticking visits states
    /// the paced kernel never queries, so this is the stronger
    /// differential: wheel refresh is sound at arbitrary cycles, busy
    /// or quiet, mid-fault or mid-migration.
    #[test]
    fn wheel_matches_min_scan_after_every_tick_on_all_schemes() {
        for spec in [
            SchemeSpec::Baseline,
            SchemeSpec::Tid,
            SchemeSpec::Tdram,
            SchemeSpec::Banshee,
            SchemeSpec::Tdc,
            SchemeSpec::Nomad,
        ] {
            for profile in [WorkloadProfile::tc(), WorkloadProfile::mcf()] {
                let mut sys = build(&spec, &profile, 42);
                for _ in 0..6_000 {
                    sys.tick();
                    sys.refresh_wheel();
                    assert_eq!(
                        sys.wheel.peek_next(),
                        sys.next_event_at_scan(),
                        "wheel vs min-scan divergence: scheme {} workload {} cycle {}",
                        sys.scheme.name(),
                        profile.name,
                        sys.cycle
                    );
                }
            }
        }
    }

    /// Same differential through the event kernel's *skips*: after a
    /// bulk advance lands the system on an event cycle, the wheel must
    /// still agree with the scan (the skip must not have destroyed or
    /// invented activity).
    #[test]
    fn wheel_matches_min_scan_across_skips() {
        for spec in [SchemeSpec::Baseline, SchemeSpec::Nomad] {
            let mut sys = build(&spec, &WorkloadProfile::mcf(), 7);
            for _ in 0..2_000 {
                sys.tick();
                sys.refresh_wheel();
                let next = sys.wheel.peek_next();
                assert_eq!(next, sys.next_event_at_scan());
                if let Some(t) = next {
                    if t > sys.cycle {
                        sys.skip(t - sys.cycle);
                        sys.refresh_wheel();
                        assert_eq!(
                            sys.wheel.peek_next(),
                            sys.next_event_at_scan(),
                            "post-skip divergence: scheme {} cycle {}",
                            sys.scheme.name(),
                            sys.cycle
                        );
                    }
                }
            }
        }
    }
}
