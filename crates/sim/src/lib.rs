//! Full-system assembly and experiment runner for the NOMAD
//! reproduction.
//!
//! [`System`] wires together everything the other crates provide —
//! trace-driven cores, two-level TLBs with a page-table walker, private
//! L1D/L2 + shared L3 SRAM caches, a [`nomad_dcache::DcScheme`] below
//! the LLC, and the HBM/DDR4 timing models — into one cycle-accurate
//! simulation matching the paper's Table II organization (scaled for
//! simulability; see `DESIGN.md`).
//!
//! [`runner`] executes the paper's experiments: a
//! (scheme × workload) run produces a [`RunReport`] with every metric
//! the evaluation section plots — IPC, DC access time, stall-cycle
//! breakdown, tag-management latency, on-package bandwidth breakdown,
//! row-buffer hit rates, RMHB and LLC MPMS.
//!
//! # Example
//!
//! ```no_run
//! use nomad_sim::{runner, SchemeSpec, SystemConfig};
//! use nomad_trace::WorkloadProfile;
//!
//! let cfg = SystemConfig::scaled(4);
//! let report = runner::run_one(
//!     &cfg,
//!     &SchemeSpec::Nomad,
//!     &WorkloadProfile::mcf(),
//!     100_000, // instructions per core
//!     20_000,  // warm-up instructions per core
//!     42,
//! );
//! println!("IPC {:.3}", report.ipc());
//! ```

mod config;
mod report;
pub mod runner;
pub mod spec;
mod system;

pub use config::SystemConfig;
pub use report::{ObsSeries, RunReport};
pub use spec::{BansheeSpec, NomadSpec, SchemeSpec, TdramSpec, TidSpec};
pub use system::{HotProfileReport, System};
