//! Scheme selection for experiments.

use crate::config::SystemConfig;
use nomad_core::{CachingPolicy, NomadConfig, NomadScheme};
use nomad_dcache::{
    Banshee, BansheeConfig, Baseline, DcScheme, Ideal, Tdram, TdramConfig, Tid, TidConfig,
};
use serde::{Deserialize, Serialize};

/// Which DRAM-cache scheme a run uses — the five bars of Fig. 9, the
/// Banshee/TDRAM head-to-head contenders, plus parameterized variants
/// for the sensitivity studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchemeSpec {
    /// Off-package memory only (lower bound).
    Baseline,
    /// HW-based tags-in-DRAM (Unison-style).
    Tid,
    /// TiD with an explicit configuration.
    TidWith(TidSpec),
    /// HW-based cache with per-row on-die tags (tag-enhanced DRAM).
    Tdram,
    /// TDRAM with an explicit configuration.
    TdramWith(TdramSpec),
    /// Page-granular TLB-tracked tags with frequency-gated admission.
    Banshee,
    /// Banshee with an explicit configuration.
    BansheeWith(BansheeSpec),
    /// Blocking OS-managed scheme (state of the art before NOMAD).
    Tdc,
    /// The paper's contribution, default configuration.
    Nomad,
    /// NOMAD with explicit PCSHR/buffer/back-end parameters.
    NomadWith(NomadSpec),
    /// Zero-cost OS-managed cache (upper bound; Table I measurement).
    Ideal,
}

/// Parameterization of a NOMAD/TDC variant (capacity comes from the
/// [`SystemConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NomadSpec {
    /// PCSHRs per back-end.
    pub pcshrs: usize,
    /// Page copy buffers per back-end (`None` = coupled).
    pub buffers: Option<usize>,
    /// Back-end count (1 = centralized).
    pub backends: usize,
    /// Critical-data-first enabled.
    pub critical_data_first: bool,
    /// Admit pages only on their second touch (selective caching).
    pub second_touch_policy: bool,
}

impl Default for NomadSpec {
    fn default() -> Self {
        NomadSpec {
            pcshrs: 16,
            buffers: None,
            backends: 1,
            critical_data_first: true,
            second_touch_policy: false,
        }
    }
}

/// Parameterization of a TiD variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TidSpec {
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub assoc: usize,
    /// MSHR count.
    pub mshrs: usize,
}

impl Default for TidSpec {
    fn default() -> Self {
        TidSpec {
            line_bytes: 1024,
            assoc: 4,
            mshrs: 16,
        }
    }
}

/// Parameterization of a TDRAM variant (capacity comes from the
/// [`SystemConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TdramSpec {
    /// MSHR count.
    pub mshrs: usize,
    /// Fill-buffer service latency in cycles.
    pub buffer_latency: u64,
}

impl Default for TdramSpec {
    fn default() -> Self {
        TdramSpec {
            mshrs: 32,
            buffer_latency: 10,
        }
    }
}

/// Parameterization of a Banshee variant (capacity comes from the
/// [`SystemConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BansheeSpec {
    /// Set associativity of the page cache.
    pub ways: usize,
    /// Sample one in `sample_rate` accesses for frequency tracking.
    pub sample_rate: u64,
    /// Admission margin over the victim's frequency.
    pub admit_threshold: u32,
    /// Buffered tag-table updates flushed together.
    pub tag_buffer_entries: usize,
}

impl Default for BansheeSpec {
    fn default() -> Self {
        BansheeSpec {
            ways: 4,
            sample_rate: 4,
            admit_threshold: 1,
            tag_buffer_entries: 32,
        }
    }
}

impl SchemeSpec {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeSpec::Baseline => "Baseline",
            SchemeSpec::Tid | SchemeSpec::TidWith(_) => "TiD",
            SchemeSpec::Tdram | SchemeSpec::TdramWith(_) => "TDRAM",
            SchemeSpec::Banshee | SchemeSpec::BansheeWith(_) => "Banshee",
            SchemeSpec::Tdc => "TDC",
            SchemeSpec::Nomad | SchemeSpec::NomadWith(_) => "NOMAD",
            SchemeSpec::Ideal => "Ideal",
        }
    }

    /// Instantiate the scheme for `cfg`.
    pub fn build(&self, cfg: &SystemConfig) -> Box<dyn DcScheme> {
        match self {
            SchemeSpec::Baseline => Box::new(Baseline::new()),
            SchemeSpec::Ideal => Box::new(Ideal::new(cfg.dc_capacity)),
            SchemeSpec::Tid => Box::new(Tid::new(TidConfig::paper(cfg.dc_capacity))),
            SchemeSpec::TidWith(t) => Box::new(Tid::new(TidConfig {
                line_bytes: t.line_bytes,
                assoc: t.assoc,
                mshrs: t.mshrs,
                ..TidConfig::paper(cfg.dc_capacity)
            })),
            SchemeSpec::Tdram => Box::new(Tdram::new(TdramConfig::paper(cfg.dc_capacity))),
            SchemeSpec::TdramWith(t) => Box::new(Tdram::new(TdramConfig {
                mshrs: t.mshrs,
                buffer_latency: t.buffer_latency,
                ..TdramConfig::paper(cfg.dc_capacity)
            })),
            SchemeSpec::Banshee => Box::new(Banshee::new(BansheeConfig::paper(cfg.dc_capacity))),
            SchemeSpec::BansheeWith(b) => Box::new(Banshee::new(BansheeConfig {
                ways: b.ways,
                sample_rate: b.sample_rate,
                admit_threshold: b.admit_threshold,
                tag_buffer_entries: b.tag_buffer_entries,
                ..BansheeConfig::paper(cfg.dc_capacity)
            })),
            SchemeSpec::Tdc => Box::new(NomadScheme::tdc(cfg.dc_capacity, cfg.cores)),
            SchemeSpec::Nomad => Box::new(NomadScheme::nomad(cfg.dc_capacity)),
            SchemeSpec::NomadWith(n) => {
                let mut c = NomadConfig::nomad(cfg.dc_capacity);
                c.pcshrs = n.pcshrs;
                c.buffers = n.buffers;
                c.backends = n.backends;
                c.critical_data_first = n.critical_data_first;
                if n.second_touch_policy {
                    c.policy = CachingPolicy::SecondTouch;
                }
                Box::new(NomadScheme::new(c))
            }
        }
    }

    /// The five Fig. 9 schemes, in plot order.
    pub fn fig9_set() -> Vec<SchemeSpec> {
        vec![
            SchemeSpec::Baseline,
            SchemeSpec::Tid,
            SchemeSpec::Tdc,
            SchemeSpec::Nomad,
            SchemeSpec::Ideal,
        ]
    }

    /// All seven first-class schemes for the head-to-head comparison,
    /// in plot order: bounds outermost, HW-based designs, then the
    /// OS-managed designs.
    pub fn headtohead_set() -> Vec<SchemeSpec> {
        vec![
            SchemeSpec::Baseline,
            SchemeSpec::Tid,
            SchemeSpec::Tdram,
            SchemeSpec::Banshee,
            SchemeSpec::Tdc,
            SchemeSpec::Nomad,
            SchemeSpec::Ideal,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_builds() {
        let cfg = SystemConfig::scaled(2);
        for spec in SchemeSpec::fig9_set() {
            let scheme = spec.build(&cfg);
            assert_eq!(scheme.name(), spec.label());
        }
    }

    #[test]
    fn headtohead_has_all_seven_schemes() {
        let cfg = SystemConfig::scaled(2);
        let set = SchemeSpec::headtohead_set();
        assert_eq!(set.len(), 7);
        for spec in &set {
            assert_eq!(spec.build(&cfg).name(), spec.label());
        }
        let labels: Vec<_> = set.iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"Banshee") && labels.contains(&"TDRAM"));
    }

    #[test]
    fn parameterized_contenders_build() {
        let cfg = SystemConfig::scaled(2);
        let t = SchemeSpec::TdramWith(TdramSpec {
            mshrs: 8,
            ..TdramSpec::default()
        });
        assert_eq!(t.build(&cfg).name(), "TDRAM");
        let b = SchemeSpec::BansheeWith(BansheeSpec {
            ways: 8,
            ..BansheeSpec::default()
        });
        assert_eq!(b.build(&cfg).name(), "Banshee");
    }

    #[test]
    fn parameterized_nomad_builds() {
        let cfg = SystemConfig::scaled(2);
        let spec = SchemeSpec::NomadWith(NomadSpec {
            pcshrs: 4,
            buffers: Some(2),
            backends: 4,
            critical_data_first: false,
            ..NomadSpec::default()
        });
        assert_eq!(spec.build(&cfg).name(), "NOMAD");
        assert_eq!(spec.label(), "NOMAD");
    }
}
