//! [`RunReport`]: every metric the paper's evaluation section reports,
//! snapshotted from one simulation run.

use nomad_cache::CacheLevel;
use nomad_cpu::{Core, CoreStats};
use nomad_dcache::SchemeStats;
use nomad_dram::DramStats;
use nomad_types::stats::ratio;
use nomad_types::TrafficClass;
use serde::{de_field, Deserialize, Serialize, Value};

/// Pre-rendered observability artifacts attached to a [`RunReport`]
/// when the run was observed (`NOMAD_OBS=1` or a harness `--obs` flag).
///
/// Both members are fully serialized JSON documents — the snapshot
/// time series ([`nomad_obs::export::snapshot_json`]) and the Chrome
/// Trace Event stream ([`nomad_obs::trace::chrome_trace`]) — kept as
/// strings so the report itself stays a plain-data struct and the
/// artifacts can be written straight to disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsSeries {
    /// Snapshot cadence in cycles ([`nomad_obs::sample_interval`]).
    pub interval: u64,
    /// Snapshot-JSON document: metric metadata plus one row per
    /// sampling point.
    pub snapshots: String,
    /// Trace Event Format JSON (page copies, evictions, MSHR stalls),
    /// viewable in Perfetto.
    pub trace: String,
}

/// Snapshot of one (scheme × workload) run.
///
/// Serialization note: `Serialize`/`Deserialize` are implemented by
/// hand rather than derived so that `obs` is *omitted* (not emitted as
/// `null`) when absent — un-observed runs must serialize byte-for-byte
/// identically to reports produced before observability existed (the
/// `obs_parity` suite in `nomad-bench` holds this).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name (Table I abbreviation).
    pub workload: String,
    /// Scheme name.
    pub scheme: String,
    /// CPU clock in GHz.
    pub clock_ghz: f64,
    /// Measured cycles (after warm-up).
    pub cycles: u64,
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// LLC accesses in the measured window.
    pub l3_accesses: u64,
    /// LLC misses (primary + secondary) in the measured window.
    pub l3_misses: u64,
    /// DRAM-cache scheme counters.
    pub scheme_stats: SchemeStats,
    /// On-package DRAM statistics.
    pub hbm: DramStats,
    /// Off-package DRAM statistics.
    pub ddr: DramStats,
    /// Observability artifacts (`None` unless the run was observed).
    pub obs: Option<ObsSeries>,
}

impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("workload".to_string(), self.workload.to_value()),
            ("scheme".to_string(), self.scheme.to_value()),
            ("clock_ghz".to_string(), self.clock_ghz.to_value()),
            ("cycles".to_string(), self.cycles.to_value()),
            ("cores".to_string(), self.cores.to_value()),
            ("l3_accesses".to_string(), self.l3_accesses.to_value()),
            ("l3_misses".to_string(), self.l3_misses.to_value()),
            ("scheme_stats".to_string(), self.scheme_stats.to_value()),
            ("hbm".to_string(), self.hbm.to_value()),
            ("ddr".to_string(), self.ddr.to_value()),
        ];
        if let Some(obs) = &self.obs {
            fields.push(("obs".to_string(), obs.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for RunReport {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(RunReport {
            workload: de_field(v, "workload")?,
            scheme: de_field(v, "scheme")?,
            clock_ghz: de_field(v, "clock_ghz")?,
            cycles: de_field(v, "cycles")?,
            cores: de_field(v, "cores")?,
            l3_accesses: de_field(v, "l3_accesses")?,
            l3_misses: de_field(v, "l3_misses")?,
            scheme_stats: de_field(v, "scheme_stats")?,
            hbm: de_field(v, "hbm")?,
            ddr: de_field(v, "ddr")?,
            obs: de_field(v, "obs")?,
        })
    }
}

impl RunReport {
    /// Collect a report from live components.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect(
        workload: &str,
        scheme: &str,
        clock_ghz: f64,
        cycles: u64,
        cores: &[Core],
        l3: &CacheLevel,
        scheme_stats: &SchemeStats,
        hbm: &DramStats,
        ddr: &DramStats,
    ) -> Self {
        RunReport {
            workload: workload.to_string(),
            scheme: scheme.to_string(),
            clock_ghz,
            cycles,
            cores: cores.iter().map(|c| c.stats().clone()).collect(),
            l3_accesses: l3.stats().accesses.get(),
            l3_misses: l3.stats().primary_misses.get() + l3.stats().secondary_misses.get(),
            scheme_stats: scheme_stats.clone(),
            hbm: hbm.clone(),
            ddr: ddr.clone(),
            obs: None,
        }
    }

    /// Total committed instructions.
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions.get()).sum()
    }

    /// Aggregate IPC: total instructions over cycles, normalized per
    /// core (matches the paper's per-core IPC averaging under
    /// rate-mode workloads).
    pub fn ipc(&self) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        let per_core: f64 = self.cores.iter().map(CoreStats::ipc).sum();
        per_core / self.cores.len() as f64
    }

    /// Mean DC access time at the controller in CPU cycles (Fig. 9's
    /// secondary axis).
    pub fn dc_access_time(&self) -> f64 {
        self.scheme_stats.dc_access_time.mean()
    }

    /// Mean tag-management latency in cycles (Fig. 11/14/15/16).
    pub fn tag_mgmt_latency(&self) -> f64 {
        self.scheme_stats.tag_mgmt_latency.mean()
    }

    /// Fraction of cycles stalled in OS routines, averaged over cores
    /// (Fig. 11/14's "application stall cycle ratio").
    pub fn os_stall_ratio(&self) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores
            .iter()
            .map(CoreStats::os_stall_ratio)
            .sum::<f64>()
            / self.cores.len() as f64
    }

    /// Fraction of cycles stalled on memory (non-OS), averaged over
    /// cores.
    pub fn mem_stall_ratio(&self) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores
            .iter()
            .map(|c| ratio(c.stall_mem.get(), c.cycles.get()))
            .sum::<f64>()
            / self.cores.len() as f64
    }

    /// LLC misses per microsecond (Table I's MPMS).
    pub fn llc_mpms(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let us = self.cycles as f64 / (self.clock_ghz * 1000.0);
        self.l3_misses as f64 / us
    }

    /// Required miss-handling bandwidth in GB/s (Table I's RMHB):
    /// page-fetch bytes implied by DC tag misses over the measured
    /// window.
    pub fn rmhb_gbps(&self) -> f64 {
        self.scheme_stats.rmhb_gbps(self.cycles, self.clock_ghz)
    }

    /// On-package bandwidth attributed to `class`, in GB/s (Fig. 10).
    pub fn hbm_class_gbps(&self, class: TrafficClass) -> f64 {
        self.hbm.class_gbps(class)
    }

    /// Total off-package bandwidth in GB/s (Fig. 12's secondary axis).
    pub fn ddr_total_gbps(&self) -> f64 {
        self.ddr.total_gbps()
    }

    /// On-package row-buffer hit rate (Fig. 10's markers).
    pub fn hbm_row_hit_rate(&self) -> f64 {
        self.hbm.row_hit_rate()
    }

    /// Fraction of data misses served from page copy buffers (the
    /// paper reports 91.6% for NOMAD).
    pub fn buffer_hit_rate(&self) -> f64 {
        self.scheme_stats.buffer_hit_rate()
    }

    /// Serialize to a JSON string (for EXPERIMENTS.md artifacts).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (all fields are plain data, so it
    /// cannot).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plain data serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_report() -> RunReport {
        let mut core = CoreStats::default();
        core.cycles.add(1000);
        core.instructions.add(800);
        core.stall_os_tag.add(100);
        core.stall_mem.add(50);
        let mut scheme_stats = SchemeStats::default();
        scheme_stats.tag_misses.add(10);
        RunReport {
            workload: "test".into(),
            scheme: "NOMAD".into(),
            clock_ghz: 3.2,
            cycles: 1000,
            cores: vec![core.clone(), core],
            l3_accesses: 500,
            l3_misses: 320,
            scheme_stats,
            hbm: DramStats::new(&nomad_dram::DramConfig::hbm()),
            ddr: DramStats::new(&nomad_dram::DramConfig::ddr4_2ch()),
            obs: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = synthetic_report();
        assert!((r.ipc() - 0.8).abs() < 1e-12);
        assert!((r.os_stall_ratio() - 0.1).abs() < 1e-12);
        assert!((r.mem_stall_ratio() - 0.05).abs() < 1e-12);
        assert_eq!(r.instructions(), 1600);
        // 1000 cycles at 3.2 GHz = 0.3125 µs → 320 misses = 1024 MPMS.
        assert!((r.llc_mpms() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn obs_field_omitted_when_absent_and_round_trips_when_present() {
        let r = synthetic_report();
        assert!(
            !r.to_json().contains("\"obs\""),
            "un-observed reports must not mention obs at all"
        );
        let mut observed = r.clone();
        observed.obs = Some(ObsSeries {
            interval: 5000,
            snapshots: "{\"interval\":5000}".into(),
            trace: "{\"traceEvents\":[]}".into(),
        });
        let s = observed.to_json();
        assert!(s.contains("\"obs\""));
        let back: RunReport = serde_json::from_str(&s).expect("round trip");
        let obs = back.obs.expect("obs survives the round trip");
        assert_eq!(obs.interval, 5000);
        assert!(obs.trace.contains("traceEvents"));
    }

    #[test]
    fn json_round_trip() {
        let r = synthetic_report();
        let s = r.to_json();
        let back: RunReport = serde_json::from_str(&s).expect("round trip");
        assert_eq!(back.workload, "test");
        assert_eq!(back.cycles, 1000);
        assert_eq!(back.cores.len(), 2);
    }
}
