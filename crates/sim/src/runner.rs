//! Experiment runner: build, warm up, measure, report — with parallel
//! sweeps for the figure/table harnesses.

use crate::config::SystemConfig;
use crate::report::RunReport;
use crate::spec::SchemeSpec;
use crate::system::System;
use nomad_trace::{SyntheticTrace, TraceSource, WorkloadProfile};
use nomad_types::CancelToken;

/// Shared experiment body: build, prewarm, warm up, measure. With a
/// cancel token, both phases poll it and a cancelled run yields `None`.
fn run_session(
    cfg: &SystemConfig,
    scheme: Box<dyn nomad_dcache::DcScheme>,
    profile: &WorkloadProfile,
    instructions_per_core: u64,
    warmup_instructions: u64,
    seed: u64,
    cancel: Option<&CancelToken>,
) -> Option<RunReport> {
    run_session_in(
        &mut None,
        cfg,
        scheme,
        profile,
        instructions_per_core,
        warmup_instructions,
        seed,
        cancel,
    )
}

/// [`run_session`] against a reuse slot: when `slot` parks a [`System`]
/// whose configuration matches, the cell recycles it via
/// [`System::reset_for_cell`] instead of building afresh, and the
/// system is parked back afterwards (even on cancellation — the next
/// reset cleans any mid-run state). A slot miss (empty, config
/// mismatch, or an observed run) falls back to `System::new`, so the
/// pooled path is always behaviourally identical to the fresh one.
#[allow(clippy::too_many_arguments)]
fn run_session_in(
    slot: &mut Option<System>,
    cfg: &SystemConfig,
    scheme: Box<dyn nomad_dcache::DcScheme>,
    profile: &WorkloadProfile,
    instructions_per_core: u64,
    warmup_instructions: u64,
    seed: u64,
    cancel: Option<&CancelToken>,
) -> Option<RunReport> {
    let traces: Vec<Box<dyn TraceSource>> = (0..cfg.cores)
        .map(|i| {
            Box::new(SyntheticTrace::with_scale(
                profile,
                seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
                cfg.pages_per_gb,
                cfg.l3_reach_pages(),
            )) as Box<dyn TraceSource>
        })
        .collect();
    let mut sys = match slot.take() {
        Some(mut parked) if parked.can_reuse_for(cfg) => {
            parked.reset_for_cell(scheme, traces);
            parked
        }
        _ => System::new(cfg.clone(), scheme, traces),
    };
    sys.prewarm();
    let mut body = || -> Option<RunReport> {
        if warmup_instructions > 0 {
            match cancel {
                Some(token) => {
                    if !sys.run_with_cancel(warmup_instructions, token) {
                        return None;
                    }
                    sys.reset_stats();
                }
                None => sys.warm_up(warmup_instructions),
            }
        }
        match cancel {
            Some(token) => {
                if !sys.run_with_cancel(instructions_per_core, token) {
                    return None;
                }
            }
            None => sys.run(instructions_per_core),
        }
        Some(sys.report(&profile.name))
    };
    let report = body();
    *slot = Some(sys);
    report
}

/// [`run_one_cancellable`] against a caller-held reuse slot — the
/// arena-pooled per-cell body (`nomad_bench::SystemArena`). Each worker
/// thread keeps one parked [`System`] and every grid cell it claims
/// recycles that system's allocations.
#[allow(clippy::too_many_arguments)]
pub fn run_one_pooled(
    slot: &mut Option<System>,
    cfg: &SystemConfig,
    spec: &SchemeSpec,
    profile: &WorkloadProfile,
    instructions_per_core: u64,
    warmup_instructions: u64,
    seed: u64,
    cancel: &CancelToken,
) -> Option<RunReport> {
    run_session_in(
        slot,
        cfg,
        spec.build(cfg),
        profile,
        instructions_per_core,
        warmup_instructions,
        seed,
        Some(cancel),
    )
}

/// Run one (scheme × workload) experiment: warm up for
/// `warmup_instructions` per core, then measure
/// `instructions_per_core`.
pub fn run_one(
    cfg: &SystemConfig,
    spec: &SchemeSpec,
    profile: &WorkloadProfile,
    instructions_per_core: u64,
    warmup_instructions: u64,
    seed: u64,
) -> RunReport {
    run_session(
        cfg,
        spec.build(cfg),
        profile,
        instructions_per_core,
        warmup_instructions,
        seed,
        None,
    )
    .expect("uncancellable run always completes")
}

/// [`run_one`] with cooperative cancellation: returns `None` promptly
/// (without a report) once `cancel` is cancelled.
pub fn run_one_cancellable(
    cfg: &SystemConfig,
    spec: &SchemeSpec,
    profile: &WorkloadProfile,
    instructions_per_core: u64,
    warmup_instructions: u64,
    seed: u64,
    cancel: &CancelToken,
) -> Option<RunReport> {
    run_session(
        cfg,
        spec.build(cfg),
        profile,
        instructions_per_core,
        warmup_instructions,
        seed,
        Some(cancel),
    )
}

/// Run one experiment with an explicitly constructed scheme (for
/// ablations that need configuration knobs [`crate::SchemeSpec`] does
/// not expose).
pub fn run_custom(
    cfg: &SystemConfig,
    scheme: Box<dyn nomad_dcache::DcScheme>,
    profile: &WorkloadProfile,
    instructions_per_core: u64,
    warmup_instructions: u64,
    seed: u64,
) -> RunReport {
    run_session(
        cfg,
        scheme,
        profile,
        instructions_per_core,
        warmup_instructions,
        seed,
        None,
    )
    .expect("uncancellable run always completes")
}

/// [`run_custom`] with cooperative cancellation.
pub fn run_custom_cancellable(
    cfg: &SystemConfig,
    scheme: Box<dyn nomad_dcache::DcScheme>,
    profile: &WorkloadProfile,
    instructions_per_core: u64,
    warmup_instructions: u64,
    seed: u64,
    cancel: &CancelToken,
) -> Option<RunReport> {
    run_session(
        cfg,
        scheme,
        profile,
        instructions_per_core,
        warmup_instructions,
        seed,
        Some(cancel),
    )
}

/// One experiment cell for [`run_grid`].
#[derive(Debug, Clone)]
pub struct Cell {
    /// System configuration.
    pub cfg: SystemConfig,
    /// Scheme to run.
    pub spec: SchemeSpec,
    /// Workload to run.
    pub profile: WorkloadProfile,
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warm-up instructions per core.
    pub warmup: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Run a grid of experiment cells across OS threads, preserving input
/// order in the output.
pub fn run_grid(cells: Vec<Cell>) -> Vec<RunReport> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cells.len().max(1));
    let cells: Vec<(usize, Cell)> = cells.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(cells);
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = queue.lock().expect("queue lock").pop();
                let Some((idx, cell)) = item else { break };
                let report = run_one(
                    &cell.cfg,
                    &cell.spec,
                    &cell.profile,
                    cell.instructions,
                    cell.warmup,
                    cell.seed,
                );
                results.lock().expect("results lock").push((idx, report));
            });
        }
    });
    let mut out = results.into_inner().expect("threads joined");
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal smoke configuration: small caches, tiny run.
    fn smoke_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::scaled(1);
        cfg.dc_capacity = 4 * 1024 * 1024;
        cfg
    }

    #[test]
    fn baseline_smoke_run_commits_instructions() {
        let r = run_one(
            &smoke_cfg(),
            &SchemeSpec::Baseline,
            &WorkloadProfile::tc(),
            20_000,
            2_000,
            1,
        );
        assert!(r.instructions() >= 20_000);
        assert!(r.ipc() > 0.0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn grid_preserves_order() {
        let cfg = smoke_cfg();
        let cells: Vec<Cell> = [SchemeSpec::Baseline, SchemeSpec::Ideal]
            .into_iter()
            .map(|spec| Cell {
                cfg: cfg.clone(),
                spec,
                profile: WorkloadProfile::tc(),
                instructions: 5_000,
                warmup: 500,
                seed: 3,
            })
            .collect();
        let reports = run_grid(cells);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].scheme, "Baseline");
        assert_eq!(reports[1].scheme, "Ideal");
    }
}
